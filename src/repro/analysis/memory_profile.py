"""Per-arrival memory traces.

The paper's central quantitative claim is about *worst-case* memory: the new
algorithms use a deterministic number of words at every instant, whereas the
prior art is bounded only in expectation.  :class:`MemoryTrace` records a
sampler's ``memory_words()`` after every arrival and summarises the trace
(peak, mean, quantiles, variance across runs), which is what experiments
E1–E4 and E6 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from .statistics import mean, quantile, variance

__all__ = ["MemoryTrace", "MemorySummary", "profile_sampler", "summarize_traces"]


@dataclass
class MemoryTrace:
    """The sequence of memory-word readings of one run."""

    readings: List[int] = field(default_factory=list)

    def record(self, words: int) -> None:
        self.readings.append(int(words))

    @property
    def peak(self) -> int:
        if not self.readings:
            raise ValueError("empty memory trace")
        return max(self.readings)

    @property
    def final(self) -> int:
        if not self.readings:
            raise ValueError("empty memory trace")
        return self.readings[-1]

    @property
    def average(self) -> float:
        return mean([float(reading) for reading in self.readings])

    def quantile(self, q: float) -> float:
        return quantile([float(reading) for reading in self.readings], q)

    def __len__(self) -> int:
        return len(self.readings)


@dataclass(frozen=True)
class MemorySummary:
    """Aggregate view over one or several runs of the same configuration."""

    runs: int
    arrivals: int
    peak: int
    mean_words: float
    p50: float
    p99: float
    peak_variance_across_runs: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "arrivals": self.arrivals,
            "peak": self.peak,
            "mean": round(self.mean_words, 2),
            "p50": round(self.p50, 2),
            "p99": round(self.p99, 2),
            "peak_var": round(self.peak_variance_across_runs, 2),
        }


def profile_sampler(sampler, elements: Iterable, advance_time: bool = False) -> MemoryTrace:
    """Feed ``elements`` into ``sampler`` and record memory after each arrival.

    ``elements`` may be raw values or :class:`~repro.streams.element.StreamElement`
    records; in the latter case timestamps are honoured and, when
    ``advance_time`` is set, the sampler's clock is advanced before each append
    (matching how a timestamp sampler is used in production).
    """
    from ..streams.element import StreamElement

    trace = MemoryTrace()
    for element in elements:
        if isinstance(element, StreamElement):
            if advance_time and hasattr(sampler, "advance_time"):
                sampler.advance_time(element.timestamp)
            sampler.append(element.value, element.timestamp)
        else:
            sampler.append(element)
        trace.record(sampler.memory_words())
    return trace


def summarize_traces(traces: Sequence[MemoryTrace]) -> MemorySummary:
    """Aggregate several runs into one summary row."""
    if not traces:
        raise ValueError("no traces to summarise")
    all_readings = [float(reading) for trace in traces for reading in trace.readings]
    peaks = [float(trace.peak) for trace in traces]
    return MemorySummary(
        runs=len(traces),
        arrivals=len(traces[0]),
        peak=int(max(peaks)),
        mean_words=mean(all_readings),
        p50=quantile(all_readings, 0.50),
        p99=quantile(all_readings, 0.99),
        peak_variance_across_runs=variance(peaks) if len(peaks) > 1 else 0.0,
    )
