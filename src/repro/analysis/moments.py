"""Exact window statistics used as ground truth by the application experiments.

The Section-5 corollaries estimate frequency moments, entropy and triangle
counts over the window from samples; these helpers compute the exact values
from the full window contents (supplied by the exact window trackers) so that
estimation error can be measured.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable

__all__ = [
    "frequency_vector",
    "frequency_moment",
    "empirical_entropy",
    "entropy_norm",
    "distinct_count",
    "relative_error",
]


def frequency_vector(values: Iterable[Hashable]) -> Dict[Hashable, int]:
    """The frequency of every value in the window."""
    return dict(Counter(values))


def frequency_moment(values: Iterable[Hashable], order: float) -> float:
    """The frequency moment ``F_order = sum_i x_i^order`` of the window.

    ``order == 0`` gives the number of distinct values, ``order == 1`` the
    window size, ``order == 2`` the self-join size used by experiment E8.
    """
    if order < 0:
        raise ValueError("order must be non-negative")
    frequencies = Counter(values)
    if order == 0:
        return float(len(frequencies))
    return float(sum(count**order for count in frequencies.values()))


def empirical_entropy(values: Iterable[Hashable]) -> float:
    """The empirical (Shannon) entropy of the window, in bits:
    ``H = -sum_i (x_i / N) log2(x_i / N)``."""
    frequencies = Counter(values)
    total = sum(frequencies.values())
    if total == 0:
        raise ValueError("entropy of an empty window")
    entropy = 0.0
    for count in frequencies.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def entropy_norm(values: Iterable[Hashable]) -> float:
    """The entropy norm ``F_H = sum_i x_i log2(x_i)`` of the window."""
    frequencies = Counter(values)
    return float(sum(count * math.log2(count) for count in frequencies.values() if count > 0))


def distinct_count(values: Iterable[Hashable]) -> int:
    """Number of distinct values in the window (``F_0``)."""
    return len(set(values))


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` with the convention 0/0 = 0."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)
