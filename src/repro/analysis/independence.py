"""Empirical independence diagnostics.

Section 1.3.4 of the paper argues that the algorithms produce *independent*
samples for non-overlapping windows (a property inherited from the reservoir
primitive).  These helpers test that claim empirically: given paired
observations — e.g. the window position sampled in window A and the position
sampled in a later, disjoint window B, over many independent runs — they
measure association via a χ² contingency test and the sample correlation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence, Tuple

from .statistics import chi_square_sf, mean

__all__ = ["IndependenceReport", "chi_square_independence", "pearson_correlation", "assess_independence"]


@dataclass(frozen=True)
class IndependenceReport:
    """Summary of an independence assessment over paired trials."""

    trials: int
    chi_square: float
    degrees_of_freedom: int
    p_value: float
    correlation: float

    @property
    def passes(self) -> bool:
        """Accept independence unless the χ² test rejects at the 0.1% level."""
        return self.p_value >= 0.001


def chi_square_independence(
    pairs: Sequence[Tuple[Hashable, Hashable]],
    left_categories: Sequence[Hashable],
    right_categories: Sequence[Hashable],
) -> Tuple[float, int, float]:
    """Pearson χ² test of independence on a contingency table.

    Returns ``(statistic, degrees_of_freedom, p_value)``.
    """
    if not pairs:
        raise ValueError("pairs must be non-empty")
    if not left_categories or not right_categories:
        raise ValueError("category sets must be non-empty")
    total = len(pairs)
    joint: Counter = Counter(pairs)
    left_marginal: Counter = Counter(pair[0] for pair in pairs)
    right_marginal: Counter = Counter(pair[1] for pair in pairs)
    statistic = 0.0
    for left in left_categories:
        for right in right_categories:
            expected = left_marginal.get(left, 0) * right_marginal.get(right, 0) / total
            if expected == 0:
                continue
            observed = joint.get((left, right), 0)
            statistic += (observed - expected) ** 2 / expected
    degrees_of_freedom = (len(left_categories) - 1) * (len(right_categories) - 1)
    if degrees_of_freedom <= 0:
        raise ValueError("need at least two categories on each side")
    return statistic, degrees_of_freedom, chi_square_sf(statistic, degrees_of_freedom)


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Sample Pearson correlation coefficient (0 when either side is constant)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two observations")
    mean_x, mean_y = mean(list(xs)), mean(list(ys))
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def assess_independence(
    pairs: Sequence[Tuple[Hashable, Hashable]],
    left_categories: Sequence[Hashable],
    right_categories: Sequence[Hashable],
) -> IndependenceReport:
    """Run the contingency χ² test plus a correlation check on numeric codes."""
    statistic, dof, p_value = chi_square_independence(pairs, left_categories, right_categories)
    left_codes = {category: position for position, category in enumerate(left_categories)}
    right_codes = {category: position for position, category in enumerate(right_categories)}
    xs = [float(left_codes[pair[0]]) for pair in pairs]
    ys = [float(right_codes[pair[1]]) for pair in pairs]
    correlation = pearson_correlation(xs, ys)
    return IndependenceReport(
        trials=len(pairs),
        chi_square=statistic,
        degrees_of_freedom=dof,
        p_value=p_value,
        correlation=correlation,
    )
