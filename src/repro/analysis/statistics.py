"""Small, dependency-free statistical primitives.

The analysis layer avoids a hard dependency on scipy so that the library's
runtime requirements stay empty; the few special functions needed by the
uniformity and independence tests (the regularized incomplete gamma function,
hence the chi-square survival function) are implemented here with standard
series / continued-fraction expansions, accurate to ~1e-10 over the ranges the
tests use.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "regularized_gamma_p",
    "regularized_gamma_q",
    "chi_square_sf",
    "mean",
    "variance",
    "quantile",
]

_MAX_ITERATIONS = 500
_EPSILON = 1e-14


def _lower_gamma_series(s: float, x: float) -> float:
    """P(s, x) via the power series, valid for x < s + 1."""
    term = 1.0 / s
    total = term
    for n in range(1, _MAX_ITERATIONS):
        term *= x / (s + n)
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _upper_gamma_continued_fraction(s: float, x: float) -> float:
    """Q(s, x) via Lentz's continued fraction, valid for x >= s + 1."""
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def regularized_gamma_p(s: float, x: float) -> float:
    """The regularized lower incomplete gamma function P(s, x)."""
    if s <= 0:
        raise ValueError("shape parameter must be positive")
    if x < 0:
        raise ValueError("x must be non-negative")
    if x == 0:
        return 0.0
    if x < s + 1.0:
        return min(1.0, max(0.0, _lower_gamma_series(s, x)))
    return min(1.0, max(0.0, 1.0 - _upper_gamma_continued_fraction(s, x)))


def regularized_gamma_q(s: float, x: float) -> float:
    """The regularized upper incomplete gamma function Q(s, x) = 1 - P(s, x)."""
    if s <= 0:
        raise ValueError("shape parameter must be positive")
    if x < 0:
        raise ValueError("x must be non-negative")
    if x == 0:
        return 1.0
    if x < s + 1.0:
        return min(1.0, max(0.0, 1.0 - _lower_gamma_series(s, x)))
    return min(1.0, max(0.0, _upper_gamma_continued_fraction(s, x)))


def chi_square_sf(statistic: float, degrees_of_freedom: int) -> float:
    """Survival function (p-value) of the chi-square distribution."""
    if degrees_of_freedom <= 0:
        raise ValueError("degrees of freedom must be positive")
    if statistic < 0:
        raise ValueError("the chi-square statistic is non-negative")
    return regularized_gamma_q(degrees_of_freedom / 2.0, statistic / 2.0)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Population variance (raises on empty input)."""
    if not values:
        raise ValueError("variance of an empty sequence")
    centre = mean(values)
    return sum((value - centre) ** 2 for value in values) / len(values)


def quantile(values: Sequence[float], q: float) -> float:
    """Empirical quantile with linear interpolation, ``q`` in [0, 1]."""
    if not values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    weight = position - low
    interpolated = ordered[low] * (1.0 - weight) + ordered[high] * weight
    # The two rounded products can sum to one ulp outside the bracket (e.g.
    # interpolating between equal tiny values); clamp to keep the result
    # within [ordered[low], ordered[high]].
    return float(min(max(interpolated, ordered[low]), ordered[high]))
