"""Verification and measurement substrate: uniformity tests, exact window
statistics, memory profiling and independence diagnostics."""

from .independence import IndependenceReport, assess_independence, chi_square_independence, pearson_correlation
from .memory_profile import MemorySummary, MemoryTrace, profile_sampler, summarize_traces
from .moments import (
    distinct_count,
    empirical_entropy,
    entropy_norm,
    frequency_moment,
    frequency_vector,
    relative_error,
)
from .statistics import chi_square_sf, mean, quantile, regularized_gamma_p, regularized_gamma_q, variance
from .uniformity import (
    UniformityReport,
    assess_uniformity,
    chi_square_uniformity,
    ks_uniformity,
    total_variation_from_uniform,
)

__all__ = [
    "UniformityReport",
    "assess_uniformity",
    "chi_square_uniformity",
    "ks_uniformity",
    "total_variation_from_uniform",
    "IndependenceReport",
    "assess_independence",
    "chi_square_independence",
    "pearson_correlation",
    "MemoryTrace",
    "MemorySummary",
    "profile_sampler",
    "summarize_traces",
    "frequency_vector",
    "frequency_moment",
    "empirical_entropy",
    "entropy_norm",
    "distinct_count",
    "relative_error",
    "chi_square_sf",
    "regularized_gamma_p",
    "regularized_gamma_q",
    "mean",
    "variance",
    "quantile",
]
