"""Uniformity diagnostics for window samples.

The correctness statement of every theorem in the paper is distributional:
at any time, the sample is uniform over the active elements.  These helpers
turn repeated independent trials into test statistics:

* :func:`chi_square_uniformity` — Pearson χ² goodness-of-fit against the
  uniform law over a known category set (window positions or values), with a
  p-value from the dependency-free chi-square survival function.
* :func:`total_variation_from_uniform` — the TV distance between the empirical
  distribution and uniform (a scale-free effect size, more robust than a bare
  p-value for benchmark tables).
* :func:`ks_uniformity` — Kolmogorov–Smirnov statistic for samples mapped to
  [0, 1) window fractions.
* :class:`UniformityReport` — the bundle produced by :func:`assess_uniformity`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

from .statistics import chi_square_sf

__all__ = [
    "chi_square_uniformity",
    "total_variation_from_uniform",
    "ks_uniformity",
    "UniformityReport",
    "assess_uniformity",
]


@dataclass(frozen=True)
class UniformityReport:
    """Summary of a uniformity assessment over repeated trials."""

    trials: int
    categories: int
    chi_square: float
    p_value: float
    total_variation: float
    max_abs_deviation: float

    @property
    def passes(self) -> bool:
        """Conventional acceptance at the 0.1% significance level."""
        return self.p_value >= 0.001


def chi_square_uniformity(
    observations: Sequence[Hashable],
    categories: Sequence[Hashable],
) -> tuple[float, float]:
    """Pearson χ² statistic and p-value against the uniform distribution.

    ``categories`` must enumerate the full support (e.g. every position of the
    window); observations outside it raise ``ValueError``.
    """
    if not categories:
        raise ValueError("categories must be non-empty")
    if not observations:
        raise ValueError("observations must be non-empty")
    category_set = set(categories)
    if len(category_set) != len(categories):
        raise ValueError("categories must be distinct")
    counts: Counter = Counter(observations)
    unknown = set(counts) - category_set
    if unknown:
        raise ValueError(f"observations outside the category set: {sorted(unknown)[:5]}")
    expected = len(observations) / len(categories)
    statistic = sum(
        (counts.get(category, 0) - expected) ** 2 / expected for category in categories
    )
    p_value = chi_square_sf(statistic, len(categories) - 1)
    return statistic, p_value


def total_variation_from_uniform(
    observations: Sequence[Hashable],
    categories: Sequence[Hashable],
) -> float:
    """Total-variation distance between the empirical law and the uniform law."""
    if not categories:
        raise ValueError("categories must be non-empty")
    if not observations:
        raise ValueError("observations must be non-empty")
    counts: Counter = Counter(observations)
    uniform_mass = 1.0 / len(categories)
    total = len(observations)
    distance = 0.0
    for category in categories:
        distance += abs(counts.get(category, 0) / total - uniform_mass)
    # Mass observed outside the category set (should be zero for valid samplers)
    # also contributes to the distance.
    outside = sum(count for category, count in counts.items() if category not in set(categories))
    distance += outside / total
    return distance / 2.0


def ks_uniformity(fractions: Sequence[float]) -> float:
    """Kolmogorov–Smirnov statistic of values that should be U[0, 1)."""
    if not fractions:
        raise ValueError("fractions must be non-empty")
    ordered = sorted(fractions)
    n = len(ordered)
    statistic = 0.0
    for rank, value in enumerate(ordered, start=1):
        if not 0.0 <= value <= 1.0:
            raise ValueError("fractions must lie in [0, 1]")
        statistic = max(statistic, abs(rank / n - value), abs(value - (rank - 1) / n))
    return statistic


def assess_uniformity(
    observations: Sequence[Hashable],
    categories: Sequence[Hashable],
) -> UniformityReport:
    """Run the χ² and TV diagnostics and bundle the results."""
    statistic, p_value = chi_square_uniformity(observations, categories)
    tv_distance = total_variation_from_uniform(observations, categories)
    counts: Counter = Counter(observations)
    expected = len(observations) / len(categories)
    max_deviation = max(
        abs(counts.get(category, 0) - expected) / len(observations) for category in categories
    )
    return UniformityReport(
        trials=len(observations),
        categories=len(categories),
        chi_square=statistic,
        p_value=p_value,
        total_variation=tv_distance,
        max_abs_deviation=max_deviation,
    )
