"""Step-biased sampling via nested sliding windows (§5, last paragraph).

Biased sampling (Aggarwal 2006) favours recent elements.  The paper observes
that *step* bias functions — piecewise-constant weights over recency — can be
implemented by "maintaining samples over each window with different lengths and
combining the samples with corresponding probabilities".
:class:`StepBiasedSampler` does precisely that: it keeps one optimal window
sampler per step length and, at query time, draws from step ``i`` with the
probability implied by the requested step weights.

With steps ``n_1 < n_2 < ... < n_m`` and weights ``w_1 >= w_2 >= ... >= w_m``,
an element whose age is in ``(n_{i-1}, n_i]`` is returned with probability
proportional to ``w_i`` — the canonical step-biased distribution.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..core.facade import sliding_window_sampler
from ..exceptions import ConfigurationError, EmptyWindowError
from ..rng import RngLike, ensure_rng, spawn
from ..streams.element import StreamElement

__all__ = ["StepBiasedSampler"]


class StepBiasedSampler:
    """Step-biased sampling over nested sequence windows."""

    def __init__(
        self,
        steps: Sequence[int],
        weights: Sequence[float],
        *,
        algorithm: str = "optimal",
        rng: RngLike = None,
    ) -> None:
        if not steps:
            raise ConfigurationError("at least one window step is required")
        if list(steps) != sorted(set(steps)):
            raise ConfigurationError("steps must be strictly increasing")
        if len(weights) != len(steps):
            raise ConfigurationError("weights must match steps")
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ConfigurationError("weights must be non-negative and not all zero")
        if list(weights) != sorted(weights, reverse=True):
            raise ConfigurationError("weights must be non-increasing (recent steps weigh more)")
        root = ensure_rng(rng)
        self._steps = [int(step) for step in steps]
        self._weights = [float(weight) for weight in weights]
        self._samplers = [
            sliding_window_sampler("sequence", n=step, k=1, replacement=True,
                                   algorithm=algorithm, rng=spawn(root, position))
            for position, step in enumerate(self._steps)
        ]
        self._choice_rng = spawn(root, len(self._steps) + 1)
        self._arrivals = 0

    @property
    def steps(self) -> List[int]:
        return list(self._steps)

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one stream element (feeds every nested window)."""
        for sampler in self._samplers:
            sampler.append(value, timestamp)
        self._arrivals += 1

    def step_probabilities(self) -> List[float]:
        """The probability of drawing from each step's window at query time.

        Step ``i`` covers the band of ages ``(steps[i-1], steps[i]]``; its band
        width times its weight, normalised, gives the draw probability.
        """
        band_widths = []
        previous = 0
        for step in self._steps:
            effective = min(step, max(self._arrivals, 1))
            band_widths.append(max(effective - previous, 0))
            previous = effective
        masses = [width * weight for width, weight in zip(band_widths, self._weights)]
        total = sum(masses)
        if total <= 0:
            # Degenerate early-stream case: fall back to the innermost window.
            masses = [1.0] + [0.0] * (len(self._steps) - 1)
            total = 1.0
        return [mass / total for mass in masses]

    def sample_one(self) -> StreamElement:
        """Draw one element according to the step-biased distribution."""
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        probabilities = self.step_probabilities()
        u = self._choice_rng.random()
        cumulative = 0.0
        chosen_index = len(self._samplers) - 1
        for position, probability in enumerate(probabilities):
            cumulative += probability
            if u < cumulative:
                chosen_index = position
                break
        # Rejection step: the chosen window covers *all* ages up to its step,
        # but the band assigned to it excludes the more recent sub-windows.
        # Resample until the drawn element's age falls in the band.
        for _ in range(64):
            element = self._samplers[chosen_index].sample_one()
            age = self._arrivals - 1 - element.index
            lower = 0 if chosen_index == 0 else self._steps[chosen_index - 1]
            if age < lower:
                continue
            return element
        # Extremely unlikely fallback: accept the innermost window's sample.
        return self._samplers[0].sample_one()

    def memory_words(self) -> int:
        return sum(sampler.memory_words() for sampler in self._samplers)
