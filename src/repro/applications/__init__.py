"""Section-5 applications: sampling-based algorithms transferred to sliding
windows by Theorem 5.1.

Every estimator here consumes only the public sampler API (plus the
candidate-observer hook), demonstrating the paper's claim that "a
sampling-based algorithm ... can be immediately transformed to sliding windows
by replacing the underlying sampling method with our algorithms".
"""

from .biased import StepBiasedSampler
from .entropy import SlidingEntropyEstimator, entropy_estimate_from_counts, entropy_norm_estimate_from_counts
from .frequency_moments import SlidingFrequencyMoment, ams_estimate_from_counts
from .heavy_hitters import SlidingHeavyHitters
from .quantiles import SlidingQuantileEstimator
from .triangles import SlidingTriangleCounter, TriangleWatcher

__all__ = [
    "SlidingFrequencyMoment",
    "ams_estimate_from_counts",
    "SlidingEntropyEstimator",
    "entropy_estimate_from_counts",
    "entropy_norm_estimate_from_counts",
    "SlidingTriangleCounter",
    "TriangleWatcher",
    "SlidingQuantileEstimator",
    "SlidingHeavyHitters",
    "StepBiasedSampler",
]
