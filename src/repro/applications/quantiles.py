"""Quantile and rank estimation over sliding windows.

The introduction of the paper motivates window sampling with exactly this kind
of query: "what is the median latency over the last hour?".  A uniform
``k``-sample without replacement of the window answers any quantile query with
additive rank error O(n / sqrt(k)) with constant probability, so the estimator
below simply wraps one of the paper's without-replacement samplers and reads
quantiles off the sample.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..analysis.statistics import quantile as empirical_quantile
from ..core.facade import sliding_window_sampler
from ..exceptions import ConfigurationError, EmptyWindowError
from ..rng import RngLike

__all__ = ["SlidingQuantileEstimator"]


class SlidingQuantileEstimator:
    """Sample-based quantile / rank estimates over a sliding window."""

    def __init__(
        self,
        *,
        window: str = "sequence",
        n: Optional[int] = None,
        t0: Optional[float] = None,
        sample_size: int = 256,
        algorithm: str = "optimal",
        rng: RngLike = None,
    ) -> None:
        if sample_size <= 0:
            raise ConfigurationError("sample_size must be positive")
        self._sampler = sliding_window_sampler(
            window,
            k=sample_size,
            n=n,
            t0=t0,
            replacement=False,
            algorithm=algorithm,
            rng=rng,
        )

    @property
    def sampler(self):
        return self._sampler

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        self._sampler.append(value, timestamp)

    def advance_time(self, now: float) -> None:
        if hasattr(self._sampler, "advance_time"):
            self._sampler.advance_time(now)

    def _sample_values(self) -> List[float]:
        values = [float(value) for value in self._sampler.sample_values()]
        if not values:
            raise EmptyWindowError("window is empty")
        return values

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of the window values."""
        return empirical_quantile(self._sample_values(), q)

    def median(self) -> float:
        """Estimate the window median."""
        return self.quantile(0.5)

    def rank_fraction(self, threshold: float) -> float:
        """Estimate the fraction of window values that are <= ``threshold``."""
        values = self._sample_values()
        return sum(1 for value in values if value <= threshold) / len(values)

    def memory_words(self) -> int:
        return self._sampler.memory_words()
