"""Frequency-moment estimation over sliding windows (Corollary 5.2).

The Alon–Matias–Szegedy estimator is *sampling-based*: pick a uniform position
``j`` of the data set, let ``r`` be the number of occurrences of the value at
position ``j`` from ``j`` onwards, and output ``N * (r^order - (r-1)^order)``;
its expectation is exactly the frequency moment ``F_order``.  Theorem 5.1 says
such an algorithm transfers to sliding windows by swapping the sampler, which
is literally what :class:`SlidingFrequencyMoment` does:

* the uniform window position comes from one of the paper's with-replacement
  samplers (``estimators`` independent copies);
* the occurrence count ``r`` is maintained by an
  :class:`~repro.core.tracking.OccurrenceCounter` observer riding on the
  sampler's candidates — every arrival after a retained candidate that carries
  the same value bumps the candidate's counter, so ``r`` is available in O(1)
  at query time and the memory bound of the sampler is preserved.

The default configuration targets sequence-based windows, where the window
size ``N`` (needed by the estimator) is known exactly.  Timestamp windows are
supported by passing ``window="timestamp"`` plus an explicit window-size
callback (the paper's own applications face the same issue: the exact size of
a timestamp window cannot be tracked in sublinear space, but any (1±ε)
approximation — e.g. an exponential-histogram counter — slots in here).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..core.facade import sliding_window_sampler
from ..core.tracking import OccurrenceCounter
from ..exceptions import ConfigurationError, EmptyWindowError
from ..rng import RngLike

__all__ = ["SlidingFrequencyMoment", "ams_estimate_from_counts"]


def ams_estimate_from_counts(counts: List[int], window_size: int, order: float) -> float:
    """The AMS estimate from the per-sample occurrence counts ``r``.

    Each count contributes ``window_size * (r^order - (r-1)^order)``; the
    estimates are averaged.
    """
    if not counts:
        raise ValueError("no occurrence counts supplied")
    if window_size <= 0:
        raise ValueError("window size must be positive")
    total = 0.0
    for r in counts:
        if r <= 0:
            raise ValueError("occurrence counts must be positive")
        total += window_size * (r**order - (r - 1) ** order)
    return total / len(counts)


class SlidingFrequencyMoment:
    """Streaming (1±ε)-style estimator of ``F_order`` over a sliding window."""

    def __init__(
        self,
        order: float = 2.0,
        *,
        window: str = "sequence",
        n: Optional[int] = None,
        t0: Optional[float] = None,
        estimators: int = 64,
        algorithm: str = "optimal",
        rng: RngLike = None,
        window_size_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        if order < 1:
            raise ConfigurationError("the AMS estimator requires order >= 1")
        if estimators <= 0:
            raise ConfigurationError("estimators must be positive")
        self._order = float(order)
        self._window = window
        self._counter = OccurrenceCounter()
        self._sampler = sliding_window_sampler(
            window,
            k=estimators,
            n=n,
            t0=t0,
            replacement=True,
            algorithm=algorithm,
            rng=rng,
            observer=self._counter,
        )
        self._n = n
        self._window_size_fn = window_size_fn
        if window == "timestamp" and window_size_fn is None:
            raise ConfigurationError(
                "timestamp windows need a window_size_fn (exact or approximate window size)"
            )

    @property
    def order(self) -> float:
        return self._order

    @property
    def sampler(self):
        """The underlying window sampler (exposed for memory accounting)."""
        return self._sampler

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one window element."""
        self._sampler.append(value, timestamp)

    def advance_time(self, now: float) -> None:
        """Advance the clock (timestamp windows only)."""
        if hasattr(self._sampler, "advance_time"):
            self._sampler.advance_time(now)

    def _window_size(self) -> int:
        if self._window_size_fn is not None:
            return int(self._window_size_fn())
        return min(self._n, self._sampler.total_arrivals)

    def estimate(self) -> float:
        """Current estimate of ``F_order`` over the window."""
        window_size = self._window_size()
        if window_size <= 0:
            raise EmptyWindowError("window is empty")
        candidates = self._sampler.sample_candidates()
        counts = [OccurrenceCounter.count_of(candidate) for candidate in candidates]
        return ams_estimate_from_counts(counts, window_size, self._order)

    def memory_words(self) -> int:
        """Memory of the estimator: the sampler plus one counter per candidate."""
        extra_counters = sum(1 for _ in self._sampler.iter_candidates())
        return self._sampler.memory_words() + extra_counters
