"""Frequent-item (heavy-hitter) estimation over sliding windows.

A uniform ``k``-sample without replacement of the window turns directly into a
frequent-items report: the sample frequency of a value concentrates around its
window frequency, so every value with window frequency at least ``phi`` is
reported with high probability once ``k = Ω(1/phi · log(1/δ))``, and no value
with frequency below ``phi/2`` is reported (the classic sample-and-count
argument; see e.g. the Golab et al. frequent-items-over-windows line of work
cited in the paper's introduction).

Like every module in :mod:`repro.applications`, this estimator only consumes
the public sampler API, so it runs on sequence or timestamp windows and on any
backend accepted by :func:`repro.core.facade.sliding_window_sampler` —
Theorem 5.1 in action.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ..core.facade import sliding_window_sampler
from ..exceptions import ConfigurationError, EmptyWindowError
from ..rng import RngLike

__all__ = ["SlidingHeavyHitters"]


class SlidingHeavyHitters:
    """Sample-based frequent-item reports over a sliding window.

    Parameters
    ----------
    threshold:
        Report values whose estimated window frequency is at least this
        fraction (``phi``), e.g. ``0.05`` for "at least 5% of the window".
    sample_size:
        Number of without-replacement samples maintained.  For a reliable
        report at threshold ``phi`` use at least a small multiple of
        ``1 / phi``.
    """

    def __init__(
        self,
        threshold: float,
        *,
        window: str = "sequence",
        n: Optional[int] = None,
        t0: Optional[float] = None,
        sample_size: int = 256,
        algorithm: str = "optimal",
        rng: RngLike = None,
    ) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must lie strictly between 0 and 1")
        if sample_size <= 0:
            raise ConfigurationError("sample_size must be positive")
        self._threshold = float(threshold)
        self._sampler = sliding_window_sampler(
            window,
            k=sample_size,
            n=n,
            t0=t0,
            replacement=False,
            algorithm=algorithm,
            rng=rng,
        )

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def sampler(self):
        return self._sampler

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one window element."""
        self._sampler.append(value, timestamp)

    def advance_time(self, now: float) -> None:
        """Advance the clock (timestamp windows only)."""
        if hasattr(self._sampler, "advance_time"):
            self._sampler.advance_time(now)

    def _sample_counts(self) -> Tuple[Counter, int]:
        values = self._sampler.sample_values()
        if not values:
            raise EmptyWindowError("window is empty")
        return Counter(values), len(values)

    def estimated_frequencies(self) -> Dict[Any, float]:
        """Estimated window frequency (fraction) of every sampled value."""
        counts, size = self._sample_counts()
        return {value: count / size for value, count in counts.items()}

    def frequent_items(self, threshold: Optional[float] = None) -> List[Tuple[Any, float]]:
        """Values whose estimated frequency meets the threshold, most frequent first."""
        phi = self._threshold if threshold is None else float(threshold)
        if not 0 < phi < 1:
            raise ConfigurationError("threshold must lie strictly between 0 and 1")
        frequencies = self.estimated_frequencies()
        report = [(value, frequency) for value, frequency in frequencies.items() if frequency >= phi]
        report.sort(key=lambda item: item[1], reverse=True)
        return report

    def estimate_frequency(self, value: Any) -> float:
        """Estimated window frequency (fraction) of one specific value."""
        counts, size = self._sample_counts()
        return counts.get(value, 0) / size

    def memory_words(self) -> int:
        """Memory of the underlying sampler (the report itself is transient)."""
        return self._sampler.memory_words()
