"""Empirical entropy estimation over sliding windows (Corollary 5.4).

Chakrabarti, Cormode and McGregor estimate the empirical entropy
``H = -Σ (x_i/N) log(x_i/N)`` from AMS-style samples: draw a uniform position,
count the subsequent occurrences ``r`` of its value, and output

    ``X = f(r) - f(r - 1)``     with ``f(r) = r · log(N / r)``, f(0) = 0,

whose expectation is exactly ``H``.  The original paper notes that on sliding
windows they had to fall back to priority sampling and lose the worst-case
memory guarantee; Corollary 5.4 recovers it by plugging in the optimal window
samplers, and that is what :class:`SlidingEntropyEstimator` implements (the
basic estimator, without the separate treatment of a single dominant value —
adequate for streams whose maximum frequency is not a constant fraction of the
window, and exactly what experiment E8 measures).

A companion estimator for the entropy norm ``F_H = Σ x_i log x_i`` is included
as well (used by the Chakrabarti–Do Ba–Muthukrishnan algorithm the paper also
cites).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

from ..core.facade import sliding_window_sampler
from ..core.tracking import OccurrenceCounter
from ..exceptions import ConfigurationError, EmptyWindowError
from ..rng import RngLike

__all__ = ["SlidingEntropyEstimator", "entropy_estimate_from_counts", "entropy_norm_estimate_from_counts"]


def entropy_estimate_from_counts(counts: List[int], window_size: int) -> float:
    """CCM basic estimator of the empirical entropy (in bits) from occurrence counts.

    With ``φ(x) = (x/N)·log2(N/x)`` the entropy is ``H = Σ_i φ(x_i)``; the
    AMS-style estimator for any such additive statistic is
    ``X = N·(φ(r) − φ(r−1))`` where ``r`` counts the sampled value from the
    sampled position to the end of the window, giving ``E[X] = H``.  With the
    ``N`` factor folded in, ``X = r·log2(N/r) − (r−1)·log2(N/(r−1))``.
    """
    if not counts:
        raise ValueError("no occurrence counts supplied")
    if window_size <= 0:
        raise ValueError("window size must be positive")

    def f(r: int) -> float:
        if r <= 0:
            return 0.0
        return r * math.log2(window_size / r)

    return sum(f(r) - f(r - 1) for r in counts) / len(counts)


def entropy_norm_estimate_from_counts(counts: List[int], window_size: int) -> float:
    """AMS-style estimator of the entropy norm ``F_H = Σ x_i log2 x_i``."""
    if not counts:
        raise ValueError("no occurrence counts supplied")
    if window_size <= 0:
        raise ValueError("window size must be positive")

    def g(r: int) -> float:
        if r <= 0:
            return 0.0
        return r * math.log2(r)

    return sum(window_size * (g(r) - g(r - 1)) for r in counts) / len(counts)


class SlidingEntropyEstimator:
    """Streaming estimator of the window's empirical entropy (bits)."""

    def __init__(
        self,
        *,
        window: str = "sequence",
        n: Optional[int] = None,
        t0: Optional[float] = None,
        estimators: int = 128,
        algorithm: str = "optimal",
        rng: RngLike = None,
        window_size_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        if estimators <= 0:
            raise ConfigurationError("estimators must be positive")
        self._counter = OccurrenceCounter()
        self._sampler = sliding_window_sampler(
            window,
            k=estimators,
            n=n,
            t0=t0,
            replacement=True,
            algorithm=algorithm,
            rng=rng,
            observer=self._counter,
        )
        self._window = window
        self._n = n
        self._window_size_fn = window_size_fn
        if window == "timestamp" and window_size_fn is None:
            raise ConfigurationError(
                "timestamp windows need a window_size_fn (exact or approximate window size)"
            )

    @property
    def sampler(self):
        return self._sampler

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        self._sampler.append(value, timestamp)

    def advance_time(self, now: float) -> None:
        if hasattr(self._sampler, "advance_time"):
            self._sampler.advance_time(now)

    def _window_size(self) -> int:
        if self._window_size_fn is not None:
            return int(self._window_size_fn())
        return min(self._n, self._sampler.total_arrivals)

    def _counts(self) -> List[int]:
        candidates = self._sampler.sample_candidates()
        return [OccurrenceCounter.count_of(candidate) for candidate in candidates]

    def estimate_entropy(self) -> float:
        """Current estimate of the window's empirical entropy in bits."""
        window_size = self._window_size()
        if window_size <= 0:
            raise EmptyWindowError("window is empty")
        return entropy_estimate_from_counts(self._counts(), window_size)

    def estimate_entropy_norm(self) -> float:
        """Current estimate of the window's entropy norm ``Σ x_i log2 x_i``."""
        window_size = self._window_size()
        if window_size <= 0:
            raise EmptyWindowError("window is empty")
        return entropy_norm_estimate_from_counts(self._counts(), window_size)

    def memory_words(self) -> int:
        extra_counters = sum(1 for _ in self._sampler.iter_candidates())
        return self._sampler.memory_words() + extra_counters
