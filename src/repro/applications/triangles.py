"""Triangle counting in graph edge streams over sliding windows (Corollary 5.3).

Buriol, Frahling, Leonardi, Marchetti-Spaccamela and Sohler estimate the
number of triangles ``T3`` of a streamed graph with a *sampling-based*
procedure: sample a uniform edge ``(a, b)`` of the stream and a uniform third
vertex ``v ∉ {a, b}``, then watch whether both closing edges ``(a, v)`` and
``(b, v)`` appear later in the stream.  Each triangle is hit exactly when the
sampled edge is its *first* edge in stream order and ``v`` is its third
vertex, so the success probability equals ``T3 / (|E| · (|V| - 2))`` and the
success frequency over many independent samples rescales to an unbiased
triangle estimate.

Corollary 5.3 transfers this to sliding windows of the edge stream: the edge
sample comes from one of the paper's window samplers, the "watch for closing
edges" logic rides on the sampler's candidates via a
:class:`~repro.core.tracking.CandidateObserver` (so a restart of the watcher
whenever the candidate changes — which is exactly how the reservoir-based
original behaves), and ``|E_W|`` is the window's edge count.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Tuple

from ..core.facade import sliding_window_sampler
from ..core.tracking import CandidateObserver, SampleCandidate
from ..exceptions import ConfigurationError, EmptyWindowError
from ..rng import RngLike, ensure_rng
from ..streams.graph import normalize_edge

__all__ = ["TriangleWatcher", "SlidingTriangleCounter"]


class TriangleWatcher(CandidateObserver):
    """Observer that watches, per sampled edge, for the two closing edges.

    When the sampler selects an edge ``(a, b)`` as a candidate, the watcher
    picks a uniform vertex ``v ∉ {a, b}`` and stores two booleans; each later
    edge equal to ``(a, v)`` or ``(b, v)`` flips the corresponding flag.  All
    state is O(1) per candidate.
    """

    VERTEX_KEY = "triangle_vertex"
    FIRST_KEY = "saw_first_closing_edge"
    SECOND_KEY = "saw_second_closing_edge"

    def __init__(self, num_vertices: int, rng: RngLike = None) -> None:
        if num_vertices < 3:
            raise ConfigurationError("triangle counting needs at least three vertices")
        self._num_vertices = int(num_vertices)
        self._rng = ensure_rng(rng)

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    def on_select(self, candidate: SampleCandidate) -> None:
        a, b = candidate.value
        vertex = self._rng.randrange(self._num_vertices)
        while vertex == a or vertex == b:
            vertex = self._rng.randrange(self._num_vertices)
        candidate.state[self.VERTEX_KEY] = vertex
        candidate.state[self.FIRST_KEY] = False
        candidate.state[self.SECOND_KEY] = False

    def on_arrival(self, candidate: SampleCandidate, value: Any, index: int, timestamp: float) -> None:
        vertex = candidate.state.get(self.VERTEX_KEY)
        if vertex is None:
            return
        a, b = candidate.value
        edge = normalize_edge(*value)
        if edge == normalize_edge(a, vertex):
            candidate.state[self.FIRST_KEY] = True
        elif edge == normalize_edge(b, vertex):
            candidate.state[self.SECOND_KEY] = True

    @classmethod
    def is_success(cls, candidate: SampleCandidate) -> bool:
        """Whether both closing edges have been seen after the sampled edge."""
        return bool(candidate.state.get(cls.FIRST_KEY)) and bool(candidate.state.get(cls.SECOND_KEY))


class SlidingTriangleCounter:
    """Estimate the number of triangles among the edges of the current window."""

    def __init__(
        self,
        num_vertices: int,
        *,
        window: str = "sequence",
        n: Optional[int] = None,
        t0: Optional[float] = None,
        estimators: int = 256,
        algorithm: str = "optimal",
        rng: RngLike = None,
        edge_count_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        if estimators <= 0:
            raise ConfigurationError("estimators must be positive")
        root = ensure_rng(rng)
        self._watcher = TriangleWatcher(num_vertices, rng=root)
        self._sampler = sliding_window_sampler(
            window,
            k=estimators,
            n=n,
            t0=t0,
            replacement=True,
            algorithm=algorithm,
            rng=root,
            observer=self._watcher,
        )
        self._window = window
        self._n = n
        self._edge_count_fn = edge_count_fn
        if window == "timestamp" and edge_count_fn is None:
            raise ConfigurationError(
                "timestamp windows need an edge_count_fn (exact or approximate edge count)"
            )

    @property
    def sampler(self):
        return self._sampler

    @property
    def num_vertices(self) -> int:
        return self._watcher.num_vertices

    def add_edge(self, u: int, v: int, timestamp: Optional[float] = None) -> None:
        """Process one edge of the stream."""
        self._sampler.append(normalize_edge(u, v), timestamp)

    def extend(self, edges: Iterable[Tuple[int, int]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def advance_time(self, now: float) -> None:
        if hasattr(self._sampler, "advance_time"):
            self._sampler.advance_time(now)

    def _edge_count(self) -> int:
        if self._edge_count_fn is not None:
            return int(self._edge_count_fn())
        return min(self._n, self._sampler.total_arrivals)

    def success_fraction(self) -> float:
        """Fraction of estimators whose closing edges both arrived."""
        candidates = self._sampler.sample_candidates()
        if not candidates:
            raise EmptyWindowError("window is empty")
        successes = sum(1 for candidate in candidates if TriangleWatcher.is_success(candidate))
        return successes / len(candidates)

    def estimate(self) -> float:
        """Current estimate of the number of triangles in the window.

        ``T3 ≈ β · |E_W| · (|V| - 2)`` where ``β`` is the success fraction:
        every window triangle is counted exactly once, through its first edge
        in window order.
        """
        edges_in_window = self._edge_count()
        if edges_in_window <= 0:
            raise EmptyWindowError("window is empty")
        beta = self.success_fraction()
        return beta * edges_in_window * (self.num_vertices - 2)

    def memory_words(self) -> int:
        # Three extra state words (vertex + two flags) per retained candidate.
        extra = 3 * sum(1 for _ in self._sampler.iter_candidates())
        return self._sampler.memory_words() + extra
