"""Deterministic random-number helpers.

Every stochastic component of the library (samplers, baselines, stream
generators, experiment harness) draws randomness from a ``random.Random``
instance that is ultimately derived from a caller-provided seed.  This module
centralises the conventions:

* :func:`ensure_rng` normalises the ``rng``/``seed`` arguments accepted by all
  public constructors.
* :func:`spawn` derives independent child generators from a parent in a
  reproducible way (used when one logical component needs several independent
  sources, e.g. the ``k`` independent samplers of a k-WR scheme).
* :func:`bernoulli` draws a biased coin, the primitive used by the implicit
  event generation of §3.3.
"""

from __future__ import annotations

import random
from typing import Union

__all__ = ["RngLike", "ensure_rng", "spawn", "bernoulli", "uniform_index"]

#: Anything accepted as a source of randomness by public constructors.
RngLike = Union[None, int, random.Random]

# A fixed, arbitrary large odd constant used to decorrelate spawned child
# generators from their parent while remaining fully deterministic.
_SPAWN_MIX = 0x9E3779B97F4A7C15


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Return a ``random.Random`` instance for ``rng``.

    ``None`` yields a freshly seeded generator (non-deterministic), an ``int``
    is treated as a seed, and an existing ``random.Random`` is returned
    unchanged so that callers can share a generator between components when
    they explicitly want to.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; almost surely a bug.
        raise TypeError("rng must be None, an int seed or a random.Random")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"rng must be None, an int seed or a random.Random, got {type(rng)!r}")


def spawn(parent: random.Random, stream_id: int) -> random.Random:
    """Derive an independent child generator from ``parent``.

    The child is seeded from the parent's stream, mixed with ``stream_id`` so
    that different ids give different, reproducible children.  Used to give
    each of the ``k`` independent samplers of a k-sample its own source.
    """
    base = parent.getrandbits(64)
    return random.Random((base ^ (stream_id * 2 + 1) * _SPAWN_MIX) & (2**64 - 1))


def bernoulli(rng: random.Random, probability: float) -> bool:
    """Return ``True`` with the given probability.

    Probabilities are clamped to ``[0, 1]``; values outside that range by more
    than a floating-point hair indicate a logic error and raise ``ValueError``.
    """
    if probability <= 0.0:
        if probability < -1e-9:
            raise ValueError(f"negative probability: {probability}")
        return False
    if probability >= 1.0:
        if probability > 1.0 + 1e-9:
            raise ValueError(f"probability larger than one: {probability}")
        return True
    return rng.random() < probability


def uniform_index(rng: random.Random, lo: int, hi: int) -> int:
    """Uniform integer in the inclusive range ``[lo, hi]``."""
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    return rng.randint(lo, hi)
