"""repro — optimal random sampling from sliding windows.

A production-quality reproduction of

    Vladimir Braverman, Rafail Ostrovsky, Carlo Zaniolo.
    "Optimal sampling from sliding windows."
    PODS 2009; Journal of Computer and System Sciences 78(1), 2012.

The package provides:

* :mod:`repro.core` — the paper's algorithms: Θ(k)-word samplers for
  fixed-size windows and Θ(k log n)-word samplers for timestamp-based windows,
  with and without replacement (Theorems 2.1, 2.2, 3.9, 4.4).
* :mod:`repro.baselines` — the prior art they are compared against (chain
  sampling, priority sampling, k-highest-priority sampling, over-sampling,
  full-window buffers).
* :mod:`repro.applications` — Section-5 corollaries: frequency moments,
  entropy, triangle counting, quantiles and step-biased sampling over sliding
  windows.
* :mod:`repro.streams`, :mod:`repro.windows`, :mod:`repro.analysis` — the
  substrates used by examples, tests and the experiment harness.
* :mod:`repro.harness` — the experiment registry (E1–E10) behind the
  benchmarks and EXPERIMENTS.md.

Quickstart
----------
>>> from repro import sliding_window_sampler
>>> sampler = sliding_window_sampler("sequence", n=1000, k=8, replacement=False, rng=7)
>>> for value in range(10_000):
...     sampler.append(value)
>>> sorted(sampler.sample_values())  # doctest: +SKIP
[9123, 9240, ...]          # eight distinct values, all from the last 1000
>>> sampler.memory_words()  # doctest: +SKIP
53                          # Θ(k), independent of n and of the stream length
"""

from .core import (
    ALGORITHMS,
    CandidateObserver,
    OccurrenceCounter,
    SampleCandidate,
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
    WindowSampler,
    algorithm_catalog,
    sliding_window_sampler,
)
from .exceptions import (
    ConfigurationError,
    EmptyWindowError,
    InsufficientSampleError,
    SamplingFailureError,
    StreamOrderError,
    SWSampleError,
)
from .streams.element import StreamElement

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "sliding_window_sampler",
    "algorithm_catalog",
    "ALGORITHMS",
    "WindowSampler",
    "SequenceSamplerWR",
    "SequenceSamplerWOR",
    "TimestampSamplerWR",
    "TimestampSamplerWOR",
    "SampleCandidate",
    "CandidateObserver",
    "OccurrenceCounter",
    "StreamElement",
    "SWSampleError",
    "EmptyWindowError",
    "InsufficientSampleError",
    "StreamOrderError",
    "ConfigurationError",
    "SamplingFailureError",
]
