"""repro — optimal random sampling from sliding windows.

A production-quality reproduction of

    Vladimir Braverman, Rafail Ostrovsky, Carlo Zaniolo.
    "Optimal sampling from sliding windows."
    PODS 2009; Journal of Computer and System Sciences 78(1), 2012.

The package provides:

* :mod:`repro.core` — the paper's algorithms: Θ(k)-word samplers for
  fixed-size windows and Θ(k log n)-word samplers for timestamp-based windows,
  with and without replacement (Theorems 2.1, 2.2, 3.9, 4.4).
* :mod:`repro.baselines` — the prior art they are compared against (chain
  sampling, priority sampling, k-highest-priority sampling, over-sampling,
  full-window buffers).
* :mod:`repro.applications` — Section-5 corollaries: frequency moments,
  entropy, triangle counting, quantiles and step-biased sampling over sliding
  windows.
* :mod:`repro.streams`, :mod:`repro.windows`, :mod:`repro.analysis` — the
  substrates used by examples, tests and the experiment harness.
* :mod:`repro.harness` — the experiment registry (E1–E10) behind the
  benchmarks and EXPERIMENTS.md.

Engine
------
:mod:`repro.engine` scales the per-stream guarantees to keyed, multi-tenant
traffic: a :class:`~repro.engine.SamplerSpec` describes one per-key sampler, a
:class:`~repro.engine.KeyedSamplerPool` lazily maintains one sampler per key
(deterministically seeded, with LRU/TTL eviction and aggregate word-RAM
accounting) and a :class:`~repro.engine.ShardedEngine` hash-partitions keys
over shards behind a batched ``ingest``, answering per-key sample queries and
cross-key aggregates (hottest keys, merged frequent items, per-key frequency
moments).  Every sampler supports ``state_dict()`` / ``load_state_dict()``,
and :func:`~repro.engine.save_checkpoint` / :func:`~repro.engine.load_checkpoint`
persist the whole fleet so a restarted engine resumes with identical samples
and identical future randomness.

>>> from repro import SamplerSpec, ShardedEngine
>>> engine = ShardedEngine(SamplerSpec(window="sequence", n=500, k=4), shards=4, seed=7)
>>> engine.ingest([("alice", 1), ("bob", 2), ("alice", 3)])
3
>>> engine.sample_values("alice")  # doctest: +SKIP
[3, 1, 3, 3]

Scaling & persistence
---------------------
Three layers take the engine from one thread and one pickle to fleet scale:

* **Parallel shard executors.**  :class:`~repro.engine.ParallelEngine` drives
  the same shards from ``workers`` threads behind bounded per-shard queues
  with producer backpressure.  Because each shard is owned by exactly one
  worker and per-key sampler seeds are key-derived, parallel ingest is
  *bit-identical* to serial ingest — ``workers`` changes throughput, never
  samples.  Queries (``sample``, aggregates, ``state_dict``) flush through a
  drain barrier first, so readers always observe a consistent fleet, and the
  public surface is thread-safe for concurrent producers and readers.
  Streaming feeds plug in via :func:`~repro.engine.ingest_jsonl` (JSONL from
  a file, pipe or stdin, in bounded batches — ``swsample engine --input``).

* **Process shard workers.**  :class:`~repro.engine.ProcessEngine` runs the
  identical dataflow on worker *processes* — shards are resident in the
  workers (built there from the engine recipe), records arrive over bounded
  multiprocessing queues, queries are answered worker-side through a
  request/reply protocol, and each worker writes its own checkpoint
  segments.  This is the executor that clears the GIL ceiling: CPU-bound
  sampler updates scale across cores, and ingest stays bit-identical to the
  serial and thread engines (``swsample engine --workers N --executor
  process``).  A worker process that dies raises a sticky
  :class:`~repro.exceptions.WorkerFailure` instead of serving from a fleet
  that may have lost arrivals.

* **Incremental checkpoints.**  :func:`~repro.engine.save_checkpoint` writes
  a checkpoint *directory*: one digest-verified segment file per shard plus
  a JSON manifest (format documented in :mod:`repro.engine.checkpoint`).
  Repeat saves rewrite only the shards whose state changed; a damaged or
  missing segment fails loudly on load; and worker count *and executor
  flavour* are orthogonal to the manifest, so a fleet saved by 4 process
  workers restores serially, or under 16 threads — with identical samples
  and identical future randomness
  (``load_checkpoint(path, workers=N, executor="thread"|"process")``).

Fault tolerance
---------------
The process fleet can *heal itself* instead of going sticky-failed.
``ProcessEngine(supervise=True, wal_dir=...)`` (CLI: ``swsample engine/serve
--supervise --wal-dir PATH``) journals every dispatched sub-batch to a
per-shard write-ahead log (:mod:`repro.engine.wal`; columnar wire format,
length+crc32 framing, ``wal_fsync`` durability knob) before the worker sees
it.  A supervisor thread detects worker death, restarts the worker under a
bounded :class:`~repro.engine.RestartPolicy` (exponential backoff), restores
its shards from the last checkpoint's digest-verified segments, replays the
journal tail in dispatch order, and re-admits traffic — the recovered fleet
is bit-identical to one that never crashed, because shard routing and
per-key seeds are deterministic.  While recovery runs, healthy-shard
queries answer normally and recovering-shard queries raise the retryable
:class:`~repro.exceptions.ShardRecovering` (mapped by ``swsample serve`` to
HTTP 503 + ``Retry-After``); a committed checkpoint truncates the journal.
Only an exhausted restart budget degrades to the sticky
:class:`~repro.exceptions.WorkerFailure`.  The failure windows themselves
are testable via the deterministic injectors in :mod:`repro.engine.chaos`.

>>> from repro import ParallelEngine
>>> with ParallelEngine(SamplerSpec(window="sequence", n=500, k=4),
...                     shards=8, workers=4, seed=7) as fleet:
...     fleet.ingest([("alice", 1), ("bob", 2), ("alice", 3)])
...     fleet.sample_values("alice")  # doctest: +SKIP
3
[3, 1, 3, 3]

Performance
-----------
The ingest hot path is batched at every layer, with the per-element code
kept only as the reference semantics:

* **Samplers** expose ``process_batch(values, timestamps)``.  The default
  mode hoists attribute lookups and generator bindings out of the inner
  loop while consuming randomness exactly like an ``append`` loop — states,
  samples and checkpoints are bit-identical.  The timestamp samplers —
  the paper's flagship machinery — batch the covering automata themselves:
  the ``Incr`` merge cascade runs in place off a single O(1) merge probe
  and window expiry pays one cached-threshold comparison per element with
  a full Lemma 3.5 scan only at actual transitions, which takes
  ``boz-ts-wr``/``boz-ts-wor`` ingest from ~1x to 4–5x over the append
  loop while staying bit-identical.  Constructing a sampler (or a
  :class:`~repro.engine.SamplerSpec`) with ``fast=True`` switches the
  sequence samplers to skip-counting (the Vitter Algorithm-Z lineage: one
  geometric skip per reservoir *acceptance* instead of one coin per
  element) and the timestamp samplers to pooled bucket-merge coins (the
  fair merge coin makes the geometric skip a run length of a fair-bit
  stream, so one draw buys a slab of coins) — distributionally exact
  (gated by χ² and KS suites), but not bit-identical, and rejected by the
  baseline algorithms.
* **Engines** group each ingest batch per key in a single pass (hashing
  each distinct key once per chunk) and feed every key's run through its
  sampler's batched path; engines with an eviction policy fall back to
  per-record routing so LRU/TTL decisions never change.  Worker-backed
  engines apply the same grouping inside each shard worker.
* **Vectorized kernels (optional).**  ``pip install 'swsample[fast]'``
  pulls in numpy and unlocks :mod:`repro.engine.kernels`: constructing a
  sampler or :class:`~repro.engine.SamplerSpec` with ``kernel="numpy"``
  (or ``"auto"``, which detects numpy; CLI: ``swsample engine/serve
  --kernel``) vectorizes the ``fast=True`` draws across whole lanes —
  closed-form reservoir-transition draws for seq-WR, hypergeometric
  splits for WOR, width-weighted canonical rebuilds plus searchsorted
  run-splitting for the timestamp automata — and decodes columnar
  transport payloads straight into numpy arrays
  (:func:`~repro.engine.kernels.decode_batch_arrays`, zero-copy over the
  shm ring).  The default ``kernel="python"`` is the bit-identity
  reference and the only path tier-1 CI needs; numpy results are
  distributionally exact (the same χ²+KS gates as ``fast=True``) but
  draw different randomness, and ``kernel="numpy"`` without numpy fails
  loudly at construction.  Engines report the active kernel in
  ``stats()`` / ``transport_report()`` and as the ``engine.kernel.numpy``
  gauge.  Independently, the timestamp bucket cascade lives in
  :mod:`repro.core._cascade`, a mypyc-compatible module that can be
  compiled ahead of time without touching randomness or results.
* **Process transport** packs each dispatched sub-batch into one columnar
  struct-packed buffer (:mod:`repro.engine.transport`) instead of pickling
  tuple lists — roughly half the bytes per record on typical int-keyed
  feeds — and :meth:`~repro.engine.ProcessEngine.transport_report` breaks
  ingest cost into encode / dispatch / decode / apply stages.
  ``ProcessEngine(transport="shm")`` additionally carries the buffers
  through per-worker ``multiprocessing.shared_memory`` rings so the queue
  ships only tiny descriptors, eliminating the feeder-thread pickle and
  pipe copies on the dispatch path (payloads larger than the ring fall
  back to the queue; interpreters without ``shared_memory`` silently
  downgrade to ``"columnar"`` with identical results).

The measured trajectory lives in ``BENCH_E7.json`` / ``BENCH_E11.json`` at
the repo root, written by ``benchmarks/record.py`` (per-sampler and
fleet-scale throughput for the per-record, batched and fast paths, plus
transport bytes/record and a dispatch-isolated queue-vs-shm comparison;
see that module's docstring for how to read and regenerate them).  CI's
``bench-smoke`` job fails on a >25% regression of any guarded metric —
including the timestamp-sampler speedups — against those committed
baselines, and the ``--kernel numpy`` rows carry baseline-independent
acceptance floors: the vectorized kernel must stay ≥2x over the python
fast path on seq-WR and ts-WR or the smoke fails.

Observability
-------------
:mod:`repro.obs` is a dependency-free metrics, tracing and structured-logging
layer wired through the whole fleet.  A
:class:`~repro.obs.MetricsRegistry` holds mergeable counters, gauges and
fixed-bucket histograms; the process-wide default is a no-op
:data:`~repro.obs.NULL_REGISTRY`, so uninstrumented runs pay nothing and
ingest stays bit-identical either way (instrumentation observes at batch and
chunk granularity, never per record).  Pass a registry to any engine (or
:func:`~repro.obs.enable` the default) and ``engine.ingest``, the sampler
pools (LRU/TTL eviction splits), the worker loops, the process transport and
the checkpoint reader/writer all report into it.  Worker-process registries
ship back over the request/reply protocol and
:meth:`~repro.engine.ProcessEngine.metrics_snapshot` merges them with the
coordinator's into one fleet-wide snapshot — which
:func:`~repro.obs.to_prometheus_text` renders as Prometheus exposition text
without a client library.  :func:`~repro.obs.span` gives nested wall-time
tracing into histograms, and :func:`~repro.obs.configure_logging` turns on
structured (optionally JSON-lines) logs that worker processes inherit.  The
CLI surfaces all of it: ``swsample engine --metrics-out PATH
[--metrics-format json|prom] --log-level debug --log-json``.

Serving
-------
:mod:`repro.serve` keeps the engine alive between requests: ``swsample
serve`` runs a standing asyncio daemon (stdlib-only — no web framework) with
HTTP and raw-socket JSONL ingest, a per-tenant query API (``sample`` /
``hottest`` / ``frequent`` / ``moments`` / ``stats``), ``/healthz`` and a
Prometheus ``/metrics`` endpoint that folds every tenant's fleet-merged
snapshot into one document via
:func:`~repro.obs.labeled_prometheus_text` (``tenant="..."`` labels).  Each
tenant name gets its own engine built from one shared recipe (the same
spec/shards/workers flags as ``swsample engine``), its own metrics registry
and a single engine thread, so the serial engine stays single-caller under
concurrent traffic.  Backlogs are bounded: HTTP ingest answers ``429`` with
``Retry-After`` once ``--max-pending`` records are in flight, while the raw
socket simply stops reading (TCP pushes back on the sender).  SIGTERM/SIGINT
drain in-flight batches, write one checkpoint directory per tenant under
``--checkpoint-dir``, and ``--resume`` restores them losslessly on restart.
See ``examples/serve_demo.py`` for the end-to-end loop.

Querying
--------
Reads have a fleet-wide path of their own, layered like ingest:

* **Batched queries.**  ``engine.query_batch(ops)`` answers a list of
  ``(name, *args)`` ops — ``("sample", key)``, ``("contains", key)``,
  ``("hottest", top)``, ``("frequent", threshold[, top])``,
  ``("moments", order)``, ``("stats",)`` — in one fleet pass: one
  request/reply round per worker instead of one per key, with per-op
  runtime failures (a missing key, an expired window) captured inline as
  ``("error", type, message)`` so one bad key never aborts the batch.
  Malformed op shapes are refused up front with
  :class:`~repro.exceptions.ConfigurationError` before anything runs.  The
  daemon exposes the same batch as ``POST /v1/<tenant>/query`` and the CLI
  as ``swsample engine --query-file OPS.jsonl``.
* **Result caching.**  A :class:`~repro.engine.QueryCache` (attach one via
  ``query_cache=`` on any engine; ``swsample serve`` attaches one per
  tenant) memoises query results keyed on the op *and the per-shard
  ``generation`` counters*, which bump on every mutation — ingest, LRU/TTL
  eviction, restore — so a cached answer is served only while it is
  provably still current; there is no staleness window to tune, and TTL
  plus an LRU bound keep the cache itself small.  Hit/miss/invalidation
  counters flow into the tenant's metrics registry (``querycache.*`` in
  ``/metrics``).
* **Continuous queries.**  ``POST /v1/<tenant>/subscribe`` registers a
  standing query (one op plus an ``interval``); the daemon re-evaluates it
  through the cache and streams JSONL deltas — only when the answer
  changes — until the client disconnects or SIGTERM drains the stream with
  a final ``{"event": "end"}`` line.

Because ranked reports break count ties on a stable byte encoding of the
key, batched, cached and scalar reads are bit-identical across the serial,
thread and process executors.

Quickstart
----------
>>> from repro import sliding_window_sampler
>>> sampler = sliding_window_sampler("sequence", n=1000, k=8, replacement=False, rng=7)
>>> for value in range(10_000):
...     sampler.append(value)
>>> sorted(sampler.sample_values())  # doctest: +SKIP
[9123, 9240, ...]          # eight distinct values, all from the last 1000
>>> sampler.memory_words()  # doctest: +SKIP
53                          # Θ(k), independent of n and of the stream length
"""

from .core import (
    ALGORITHMS,
    CandidateObserver,
    OccurrenceCounter,
    SampleCandidate,
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
    WindowSampler,
    algorithm_catalog,
    sliding_window_sampler,
)
from .engine import (
    KeyedSamplerPool,
    ParallelEngine,
    ProcessEngine,
    QueryCache,
    RestartPolicy,
    SamplerSpec,
    ShardedEngine,
    load_checkpoint,
    save_checkpoint,
    write_checkpoint,
)
from .exceptions import (
    CheckpointError,
    ConfigurationError,
    EmptyWindowError,
    ExecutorError,
    InsufficientSampleError,
    SamplingFailureError,
    ShardRecovering,
    StreamOrderError,
    SWSampleError,
    TransportError,
    WorkerFailure,
)
from .streams.element import KeyedRecord, StreamElement

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SamplerSpec",
    "KeyedSamplerPool",
    "ShardedEngine",
    "ParallelEngine",
    "ProcessEngine",
    "QueryCache",
    "RestartPolicy",
    "save_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
    "KeyedRecord",
    "sliding_window_sampler",
    "algorithm_catalog",
    "ALGORITHMS",
    "WindowSampler",
    "SequenceSamplerWR",
    "SequenceSamplerWOR",
    "TimestampSamplerWR",
    "TimestampSamplerWOR",
    "SampleCandidate",
    "CandidateObserver",
    "OccurrenceCounter",
    "StreamElement",
    "SWSampleError",
    "EmptyWindowError",
    "InsufficientSampleError",
    "StreamOrderError",
    "ConfigurationError",
    "SamplingFailureError",
    "CheckpointError",
    "ExecutorError",
    "WorkerFailure",
    "ShardRecovering",
    "TransportError",
]
