"""Whole-stream reservoir sampling — the intentionally wrong baseline.

The paper opens by explaining why classic reservoir sampling cannot be used on
sliding windows: samples eventually expire and "the data has already been
passed and cannot be sampled".  :class:`WholeStreamReservoir` keeps a plain
reservoir over the entire stream while *pretending* to be a sequence-window
sampler, so experiments can quantify how badly the naive approach fails:

* its samples are uniform over the whole history, not over the window, so the
  window-position uniformity test (E5) rejects it once the stream is longer
  than the window;
* window statistics computed from it (E8) are biased towards stale data.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ..exceptions import EmptyWindowError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng, spawn
from ..core.base import SequenceWindowSampler
from ..core.reservoir import ReservoirWithoutReplacement, SingleReservoir
from ..core.tracking import CandidateObserver, SampleCandidate

__all__ = ["WholeStreamReservoir"]


class WholeStreamReservoir(SequenceWindowSampler):
    """Classic reservoir sampling over the whole stream, ignoring the window."""

    algorithm = "whole-stream-reservoir"
    deterministic_memory = True

    def __init__(
        self,
        n: int,
        k: int = 1,
        replacement: bool = True,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        super().__init__(n, k, observer)
        root = ensure_rng(rng)
        self.with_replacement = bool(replacement)
        if self.with_replacement:
            self._reservoirs = [SingleReservoir(rng=spawn(root, lane), observer=observer) for lane in range(k)]
            self._pool = None
        else:
            self._reservoirs = None
            self._pool = ReservoirWithoutReplacement(k, rng=spawn(root, 0), observer=observer)

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        ts = float(timestamp) if timestamp is not None else float(index)
        if self._reservoirs is not None:
            for reservoir in self._reservoirs:
                reservoir.offer(value, index, ts)
        else:
            self._pool.offer(value, index, ts)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        if self._reservoirs is not None:
            return [reservoir.sample() for reservoir in self._reservoirs]
        return list(self._pool.sample())

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        if self._reservoirs is not None:
            for reservoir in self._reservoirs:
                yield from reservoir.iter_candidates()
        else:
            yield from self._pool.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)
        meter.add_counters()
        if self._reservoirs is not None:
            for reservoir in self._reservoirs:
                meter.add_words(reservoir.memory_words())
        else:
            meter.add_words(self._pool.memory_words())
        return meter.total
