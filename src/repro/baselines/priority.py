"""Priority sampling — Babcock, Datar and Motwani (SODA 2002).

The prior-art algorithm for sampling *with replacement* from timestamp-based
windows.  Every arriving element receives an independent uniform priority in
``(0, 1)``; the sample is the active element with the highest priority.  It
suffices to store the elements that are not *dominated* — those with no
later-arriving element of higher priority — because a dominated element can
never become the maximum of any future window.

The number of stored elements is the number of right-to-left maxima of the
priority sequence restricted to the window: O(log n) in expectation and with
high probability, but again a random variable without a worst-case bound,
which is the gap the paper closes (experiment E3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional

from ..exceptions import EmptyWindowError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng, spawn
from ..core.base import TimestampWindowSampler
from ..core.tracking import CandidateObserver, SampleCandidate

__all__ = ["PrioritySamplerWR"]


class _PriorityLane:
    """One independent priority sample (the stored dominating elements)."""

    __slots__ = ("rng", "observer", "t0", "entries")

    def __init__(self, t0: float, rng, observer: Optional[CandidateObserver]) -> None:
        self.t0 = t0
        self.rng = rng
        self.observer = observer
        # Entries in arrival order; priorities are strictly decreasing.
        self.entries: Deque[tuple] = deque()  # (priority, SampleCandidate)

    def offer(self, value: Any, index: int, timestamp: float) -> None:
        priority = self.rng.random()
        while self.entries and self.entries[-1][0] < priority:
            _, dominated = self.entries.pop()
            if self.observer is not None:
                self.observer.on_discard(dominated)
        candidate = SampleCandidate(value=value, index=index, timestamp=timestamp)
        self.entries.append((priority, candidate))
        if self.observer is not None:
            self.observer.on_select(candidate)

    def expire(self, now: float) -> None:
        while self.entries and now - self.entries[0][1].timestamp >= self.t0:
            _, expired = self.entries.popleft()
            if self.observer is not None:
                self.observer.on_discard(expired)

    def head(self, now: float) -> SampleCandidate:
        self.expire(now)
        if not self.entries:
            raise EmptyWindowError("priority sample is empty")
        return self.entries[0][1]

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for _, candidate in self.entries:
            yield candidate

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        held = len(self.entries)
        meter.add_elements(held).add_indexes(held).add_timestamps(held).add_priorities(held)
        return meter.total


class PrioritySamplerWR(TimestampWindowSampler):
    """k independent priority samples with replacement (BDM baseline)."""

    algorithm = "bdm-priority-wr"
    with_replacement = True
    deterministic_memory = False

    def __init__(
        self,
        t0: float,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        super().__init__(t0, k, observer)
        root = ensure_rng(rng)
        self._lanes = [_PriorityLane(self._t0, spawn(root, lane), observer) for lane in range(self._k)]
        self._now = float("-inf")

    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        for lane in self._lanes:
            lane.expire(self._now)

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        if timestamp is None:
            ts = self._now if self._now != float("-inf") else 0.0
        else:
            ts = float(timestamp)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        for lane in self._lanes:
            lane.offer(value, index, ts)
            lane.expire(self._now)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        return [lane.head(self._now) for lane in self._lanes]

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for lane in self._lanes:
            yield from lane.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # t0 and k
        meter.add_counters()
        meter.add_timestamps()  # the clock
        for lane in self._lanes:
            meter.add_words(lane.memory_words())
        return meter.total

    def max_stored(self) -> int:
        """Largest per-lane store (diagnostic for experiments E3/E6)."""
        return max(len(lane.entries) for lane in self._lanes)
