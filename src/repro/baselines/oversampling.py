"""Bernoulli over-sampling — the folklore baseline the paper improves upon.

"When k samples are required, the over-sampling method maintains k' > k
samples in the hope that at least k samples are not expired" (paper, abstract).
Concretely, every arriving element is retained independently with probability
``p`` chosen so that the *expected* number of retained active elements is
``oversample_factor · k · ln(window)``; retained elements are dropped once they
expire.  A query answers with a uniform ``k``-subset of the retained active
elements (a uniform subset of a Bernoulli sample is a uniform subset of the
population), and **fails** when fewer than ``k`` candidates survive.

Both disadvantages called out by the paper are visible here:

(a) extra cost — the retained set is a factor ``Θ(log n)`` larger than ``k``;
(b) randomized bounds — the memory footprint is Binomial, and with non-zero
    probability the scheme fails to produce ``k`` samples at all
    (:class:`~repro.exceptions.SamplingFailureError`).

For timestamp windows the window size is unknown, so the retention probability
must be tuned against an *expected* window size — a further weakness this
baseline shares with every over-sampling deployment.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Iterator, List, Optional

from ..exceptions import EmptyWindowError, SamplingFailureError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng
from ..core.base import SequenceWindowSampler, TimestampWindowSampler
from ..core.tracking import CandidateObserver, SampleCandidate

__all__ = ["OversamplingSamplerSeqWOR", "OversamplingSamplerTsWOR"]


def _retention_probability(k: int, window: float, oversample_factor: float) -> float:
    """Retention probability targeting ``factor * k * ln(window)`` survivors."""
    window = max(float(window), 2.0)
    target = oversample_factor * k * math.log(window)
    return min(1.0, target / window)


class OversamplingSamplerSeqWOR(SequenceWindowSampler):
    """Over-sampling baseline for sequence windows, without replacement."""

    algorithm = "oversampling-seq-wor"
    with_replacement = False
    deterministic_memory = False

    def __init__(
        self,
        n: int,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        oversample_factor: float = 2.0,
    ) -> None:
        super().__init__(n, k, observer)
        if oversample_factor <= 0:
            raise ValueError("oversample_factor must be positive")
        self._rng = ensure_rng(rng)
        self._probability = _retention_probability(k, n, oversample_factor)
        self._retained: Deque[SampleCandidate] = deque()

    @property
    def retention_probability(self) -> float:
        return self._probability

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        ts = float(timestamp) if timestamp is not None else float(index)
        if self._rng.random() < self._probability:
            candidate = SampleCandidate(value=value, index=index, timestamp=ts)
            self._retained.append(candidate)
            if self._observer is not None:
                self._observer.on_select(candidate)
        self._arrivals += 1
        self._prune()
        self._notify_arrival(value, index, ts)

    def _prune(self) -> None:
        window_start = max(0, self._arrivals - self._n)
        while self._retained and self._retained[0].index < window_start:
            expired = self._retained.popleft()
            if self._observer is not None:
                self._observer.on_discard(expired)

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        self._prune()
        if len(self._retained) < self._k:
            raise SamplingFailureError(
                f"over-sampling kept only {len(self._retained)} candidates, k={self._k} required"
            )
        return self._rng.sample(list(self._retained), self._k)

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self._retained

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(3)  # n, k, retention probability
        meter.add_counters()
        held = len(self._retained)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        return meter.total

    def retained_count(self) -> int:
        self._prune()
        return len(self._retained)


class OversamplingSamplerTsWOR(TimestampWindowSampler):
    """Over-sampling baseline for timestamp windows, without replacement.

    Because the window size is unknown for timestamp windows, the retention
    probability is tuned against ``expected_window`` — the caller's guess of
    how many elements a window typically holds.  Under-estimating it blows up
    memory; over-estimating it raises the failure probability.
    """

    algorithm = "oversampling-ts-wor"
    with_replacement = False
    deterministic_memory = False

    def __init__(
        self,
        t0: float,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        oversample_factor: float = 2.0,
        expected_window: Optional[float] = None,
    ) -> None:
        super().__init__(t0, k, observer)
        if oversample_factor <= 0:
            raise ValueError("oversample_factor must be positive")
        self._rng = ensure_rng(rng)
        self._expected_window = float(expected_window) if expected_window is not None else float(t0)
        self._probability = _retention_probability(k, self._expected_window, oversample_factor)
        self._retained: Deque[SampleCandidate] = deque()
        self._now = float("-inf")

    @property
    def retention_probability(self) -> float:
        return self._probability

    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        self._prune()

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        if timestamp is None:
            ts = self._now if self._now != float("-inf") else 0.0
        else:
            ts = float(timestamp)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        if self._rng.random() < self._probability:
            candidate = SampleCandidate(value=value, index=index, timestamp=ts)
            self._retained.append(candidate)
            if self._observer is not None:
                self._observer.on_select(candidate)
        self._arrivals += 1
        self._prune()
        self._notify_arrival(value, index, ts)

    def _prune(self) -> None:
        while self._retained and self._now - self._retained[0].timestamp >= self._t0:
            expired = self._retained.popleft()
            if self._observer is not None:
                self._observer.on_discard(expired)

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        self._prune()
        if len(self._retained) < self._k:
            raise SamplingFailureError(
                f"over-sampling kept only {len(self._retained)} candidates, k={self._k} required"
            )
        return self._rng.sample(list(self._retained), self._k)

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self._retained

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(3)  # t0, k, retention probability
        meter.add_counters()
        meter.add_timestamps()
        held = len(self._retained)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        return meter.total

    def retained_count(self) -> int:
        self._prune()
        return len(self._retained)
