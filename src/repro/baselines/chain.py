"""Chain sampling — Babcock, Datar and Motwani (SODA 2002).

The prior-art algorithm for sampling *with replacement* from sequence-based
windows, reimplemented as a comparison baseline.  For every independent sample
the algorithm maintains a *chain* of elements: when an element at index ``j``
is chosen as the sample, a uniformly random successor index in
``[j+1, j+n]`` is drawn, and when that element arrives it is stored and given
its own successor, and so on.  When the head of the chain expires the next
stored element takes over, so a valid sample is always available.

The catch — and the reason the paper improves on it — is that the chain length
is a random variable: its expectation is O(1) per sample, it is O(log n) with
high probability, but there is no deterministic bound.  ``memory_words()``
therefore fluctuates from arrival to arrival and from run to run, which is
exactly what experiment E1/E6 visualises.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional

from ..exceptions import EmptyWindowError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng, spawn
from ..core.base import SequenceWindowSampler
from ..core.tracking import CandidateObserver, SampleCandidate

__all__ = ["ChainSamplerWR"]


class _Chain:
    """One independent chain (one sample) of the BDM scheme."""

    __slots__ = ("rng", "observer", "n", "links", "successor_index")

    def __init__(self, n: int, rng, observer: Optional[CandidateObserver]) -> None:
        self.n = n
        self.rng = rng
        self.observer = observer
        self.links: Deque[SampleCandidate] = deque()
        self.successor_index: Optional[int] = None

    def _restart(self, candidate: SampleCandidate) -> None:
        if self.observer is not None:
            for link in self.links:
                self.observer.on_discard(link)
        self.links.clear()
        self.links.append(candidate)
        if self.observer is not None:
            self.observer.on_select(candidate)
        self.successor_index = self.rng.randint(candidate.index + 1, candidate.index + self.n)

    def offer(self, value: Any, index: int, timestamp: float) -> None:
        arrivals = index + 1
        replace_probability = 1.0 / min(arrivals, self.n)
        candidate = SampleCandidate(value=value, index=index, timestamp=timestamp)
        if self.rng.random() < replace_probability:
            self._restart(candidate)
        elif self.successor_index is not None and index == self.successor_index:
            self.links.append(candidate)
            if self.observer is not None:
                self.observer.on_select(candidate)
            self.successor_index = self.rng.randint(index + 1, index + self.n)
        # Expire the head(s): an element is outside the window once its index
        # is <= index - n.
        while self.links and self.links[0].index <= index - self.n:
            expired = self.links.popleft()
            if self.observer is not None:
                self.observer.on_discard(expired)

    def head(self) -> SampleCandidate:
        if not self.links:
            raise EmptyWindowError("chain is empty")
        return self.links[0]

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self.links

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        held = len(self.links)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        meter.add_indexes()  # pending successor index
        return meter.total


class ChainSamplerWR(SequenceWindowSampler):
    """k independent chain samples with replacement (BDM baseline)."""

    algorithm = "bdm-chain-wr"
    with_replacement = True
    deterministic_memory = False

    def __init__(
        self,
        n: int,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        super().__init__(n, k, observer)
        root = ensure_rng(rng)
        self._chains = [_Chain(self._n, spawn(root, lane), observer) for lane in range(self._k)]

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        ts = float(timestamp) if timestamp is not None else float(index)
        for chain in self._chains:
            chain.offer(value, index, ts)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        return [chain.head() for chain in self._chains]

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for chain in self._chains:
            yield from chain.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # n and k
        meter.add_counters()  # arrival counter
        for chain in self._chains:
            meter.add_words(chain.memory_words())
        return meter.total

    def max_chain_length(self) -> int:
        """Length of the longest chain (diagnostic used by experiment E6)."""
        return max(len(chain.links) for chain in self._chains)
