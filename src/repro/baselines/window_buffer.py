"""Exact window buffer sampling — the Θ(n) memory strawman.

Zhang, Li, Yu, Wang and Jiang (2005) adapt reservoir sampling to sliding
windows by storing the window; the paper notes this "is applicable only for
small windows".  The buffer samplers below store the whole window and sample
from it exactly.  They serve two roles:

* a correctness oracle: their output distribution is uniform by construction,
  so they calibrate the statistical tests used on the sublinear samplers;
* the memory upper extreme in experiments E1–E4 (Θ(n) words vs Θ(k) / Θ(k log n)).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional

from ..exceptions import EmptyWindowError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng
from ..core.base import SequenceWindowSampler, TimestampWindowSampler
from ..core.tracking import CandidateObserver, SampleCandidate

__all__ = ["BufferSamplerSeq", "BufferSamplerTs"]


class BufferSamplerSeq(SequenceWindowSampler):
    """Exact sampling from a fully stored sequence window."""

    algorithm = "buffer-seq"
    deterministic_memory = True

    def __init__(
        self,
        n: int,
        k: int = 1,
        replacement: bool = True,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        super().__init__(n, k, observer)
        self._rng = ensure_rng(rng)
        self.with_replacement = bool(replacement)
        self._buffer: Deque[SampleCandidate] = deque(maxlen=self._n)

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        ts = float(timestamp) if timestamp is not None else float(index)
        self._buffer.append(SampleCandidate(value=value, index=index, timestamp=ts))
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def sample_candidates(self) -> List[SampleCandidate]:
        if not self._buffer:
            raise EmptyWindowError("window is empty")
        population = list(self._buffer)
        if self.with_replacement:
            return [self._rng.choice(population) for _ in range(self._k)]
        return self._rng.sample(population, min(self._k, len(population)))

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self._buffer

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)
        meter.add_counters()
        held = len(self._buffer)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        return meter.total


class BufferSamplerTs(TimestampWindowSampler):
    """Exact sampling from a fully stored timestamp window."""

    algorithm = "buffer-ts"
    deterministic_memory = True

    def __init__(
        self,
        t0: float,
        k: int = 1,
        replacement: bool = True,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        super().__init__(t0, k, observer)
        self._rng = ensure_rng(rng)
        self.with_replacement = bool(replacement)
        self._buffer: Deque[SampleCandidate] = deque()
        self._now = float("-inf")

    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        self._prune()

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        if timestamp is None:
            ts = self._now if self._now != float("-inf") else 0.0
        else:
            ts = float(timestamp)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        self._buffer.append(SampleCandidate(value=value, index=index, timestamp=ts))
        self._arrivals += 1
        self._prune()
        self._notify_arrival(value, index, ts)

    def _prune(self) -> None:
        while self._buffer and self._now - self._buffer[0].timestamp >= self._t0:
            self._buffer.popleft()

    def sample_candidates(self) -> List[SampleCandidate]:
        self._prune()
        if not self._buffer:
            raise EmptyWindowError("window is empty")
        population = list(self._buffer)
        if self.with_replacement:
            return [self._rng.choice(population) for _ in range(self._k)]
        return self._rng.sample(population, min(self._k, len(population)))

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self._buffer

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)
        meter.add_counters()
        meter.add_timestamps()
        held = len(self._buffer)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        return meter.total

    def window_size(self) -> int:
        self._prune()
        return len(self._buffer)
