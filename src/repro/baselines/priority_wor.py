"""k-highest-priority sampling — Gemulla and Lehner (SIGMOD 2008).

The prior-art algorithm for sampling *without replacement* from
timestamp-based windows: every element receives a uniform priority and the
sample is the set of the ``k`` highest-priority active elements.  An element
must be stored as long as fewer than ``k`` later-arriving elements have a
higher priority (a later element always outlives an earlier one, so the count
never needs to be revisited when elements expire).

Expected memory is O(k log(n/k)) — optimal in expectation — but, as with chain
and priority sampling, the footprint is a random variable.  Experiment E4
contrasts it with the deterministic Θ(k log n) of Theorem 4.4.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional

from ..exceptions import EmptyWindowError, InsufficientSampleError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng
from ..core.base import TimestampWindowSampler
from ..core.tracking import CandidateObserver, SampleCandidate

__all__ = ["PrioritySamplerWOR"]


class _Entry:
    __slots__ = ("priority", "candidate", "dominated_by")

    def __init__(self, priority: float, candidate: SampleCandidate) -> None:
        self.priority = priority
        self.candidate = candidate
        self.dominated_by = 0  # number of later-arriving elements with higher priority


class PrioritySamplerWOR(TimestampWindowSampler):
    """The k highest-priority active elements (Gemulla–Lehner baseline)."""

    algorithm = "gl-priority-wor"
    with_replacement = False
    deterministic_memory = False

    def __init__(
        self,
        t0: float,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        allow_partial: bool = True,
    ) -> None:
        super().__init__(t0, k, observer)
        self._rng = ensure_rng(rng)
        self._allow_partial = bool(allow_partial)
        self._entries: Deque[_Entry] = deque()  # arrival order
        self._now = float("-inf")

    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        self._expire()

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        if timestamp is None:
            ts = self._now if self._now != float("-inf") else 0.0
        else:
            ts = float(timestamp)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        priority = self._rng.random()
        survivors: Deque[_Entry] = deque()
        for entry in self._entries:
            if entry.priority < priority:
                entry.dominated_by += 1
            if entry.dominated_by < self._k:
                survivors.append(entry)
            elif self._observer is not None:
                self._observer.on_discard(entry.candidate)
        candidate = SampleCandidate(value=value, index=index, timestamp=ts)
        new_entry = _Entry(priority, candidate)
        survivors.append(new_entry)
        if self._observer is not None:
            self._observer.on_select(candidate)
        self._entries = survivors
        self._expire()
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def _expire(self) -> None:
        while self._entries and self._now - self._entries[0].candidate.timestamp >= self._t0:
            expired = self._entries.popleft()
            if self._observer is not None:
                self._observer.on_discard(expired.candidate)

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        self._expire()
        if not self._entries:
            raise EmptyWindowError("no active element in the window")
        ranked = sorted(self._entries, key=lambda entry: entry.priority, reverse=True)
        chosen = ranked[: self._k]
        if len(chosen) < self._k and not self._allow_partial:
            raise InsufficientSampleError(
                f"window holds only {len(chosen)} elements, k={self._k} requested"
            )
        return [entry.candidate for entry in chosen]

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for entry in self._entries:
            yield entry.candidate

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # t0 and k
        meter.add_counters()
        meter.add_timestamps()  # the clock
        held = len(self._entries)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        meter.add_priorities(held)
        meter.add_counters(held)  # dominated_by counters
        return meter.total

    def stored_count(self) -> int:
        """Number of stored entries (diagnostic for experiment E4)."""
        return len(self._entries)
