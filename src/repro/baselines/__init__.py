"""Prior-art baselines the paper compares against.

Chain sampling and priority sampling are the Babcock–Datar–Motwani (SODA'02)
algorithms whose memory is optimal only *in expectation*; the k-highest
priority scheme is Gemulla–Lehner (SIGMOD'08); over-sampling is the folklore
approach criticised in the paper's abstract; the buffer samplers store the
whole window; the whole-stream reservoir ignores expiry and is intentionally
wrong.
"""

from .chain import ChainSamplerWR
from .oversampling import OversamplingSamplerSeqWOR, OversamplingSamplerTsWOR
from .priority import PrioritySamplerWR
from .priority_wor import PrioritySamplerWOR
from .vanilla_reservoir import WholeStreamReservoir
from .window_buffer import BufferSamplerSeq, BufferSamplerTs

__all__ = [
    "ChainSamplerWR",
    "PrioritySamplerWR",
    "PrioritySamplerWOR",
    "OversamplingSamplerSeqWOR",
    "OversamplingSamplerTsWOR",
    "BufferSamplerSeq",
    "BufferSamplerTs",
    "WholeStreamReservoir",
]
