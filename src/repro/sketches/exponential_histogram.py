"""Exponential histograms — approximate counting over sliding windows.

Datar, Gionis, Indyk and Motwani (SODA 2002, cited by the paper as [31])
showed that the *number of active elements* of a timestamp window cannot be
maintained exactly in sublinear space, but can be (1 ± ε)-approximated with
``O((1/ε)·log² n)`` bits using an exponential histogram: a list of buckets of
exponentially growing sizes whose oldest bucket straddles the window boundary.

This module provides that counter as an optional companion substrate:

* the Section-5 application estimators (frequency moments, entropy, triangle
  counting) need the window size ``N`` as a scale factor; on sequence windows
  it is known exactly, on timestamp windows the paper's own corollaries accept
  any (1±ε) approximation — :class:`ExponentialHistogramCounter` supplies it
  without resorting to an exact Θ(n) tracker;
* it also demonstrates the "negative result" the paper leans on in §1.3.2:
  the counter is approximate by necessity, which is exactly why the covering
  decomposition must work *without* knowing the window size.

The implementation follows the classic basic-counting construction for
arbitrary (non-negative) event counts of one per element.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from ..core.serialization import STATE_FORMAT, require_state_fields
from ..exceptions import ConfigurationError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL

__all__ = ["ExponentialHistogramCounter"]


@dataclass
class _Bucket:
    """One histogram bucket: ``size`` elements, the newest at ``newest_timestamp``."""

    size: int
    newest_timestamp: float
    oldest_timestamp: float


class ExponentialHistogramCounter:
    """(1 ± epsilon)-approximate count of active elements in a timestamp window.

    Parameters
    ----------
    t0:
        Window span: an element with timestamp ``T`` is active at time ``now``
        iff ``now - T < t0``.
    epsilon:
        Target relative error.  The histogram keeps at most ``ceil(1/(2ε)) + 1``
        buckets of each size, so memory is ``O((1/ε)·log n)`` buckets.
    """

    def __init__(self, t0: float, epsilon: float = 0.1) -> None:
        if t0 <= 0:
            raise ConfigurationError("window span t0 must be positive")
        if not 0 < epsilon <= 1:
            raise ConfigurationError("epsilon must lie in (0, 1]")
        self._t0 = float(t0)
        self._epsilon = float(epsilon)
        # Max number of buckets allowed per size class before two merge.
        self._capacity = int(1.0 / (2.0 * epsilon)) + 2
        self._buckets: Deque[_Bucket] = deque()  # oldest first
        self._now = float("-inf")
        self._arrivals = 0

    # -- properties -------------------------------------------------------------

    @property
    def t0(self) -> float:
        return self._t0

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def now(self) -> float:
        return self._now

    @property
    def total_arrivals(self) -> int:
        return self._arrivals

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    # -- updates -----------------------------------------------------------------

    def advance_time(self, now: float) -> None:
        """Move the clock forward, dropping buckets that are entirely expired."""
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        self._expire()

    def append(self, timestamp: Optional[float] = None) -> None:
        """Record the arrival of one element."""
        ts = float(timestamp) if timestamp is not None else (self._now if self._now != float("-inf") else 0.0)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        self._arrivals += 1
        self._buckets.append(_Bucket(size=1, newest_timestamp=ts, oldest_timestamp=ts))
        self._merge()
        self._expire()

    def _merge(self) -> None:
        """Cascade-merge size classes that exceed their capacity.

        Appending only ever adds a size-1 bucket, and merging at size ``s``
        only ever adds a size-``2s`` bucket, so a single upward pass restores
        the invariant: once a size class is within capacity, no larger class
        can have overflowed.
        """
        size = 1
        while True:
            same_size = [position for position, bucket in enumerate(self._buckets) if bucket.size == size]
            if len(same_size) <= self._capacity:
                break
            first, second = same_size[0], same_size[1]
            older, newer = self._buckets[first], self._buckets[second]
            merged = _Bucket(
                size=older.size + newer.size,
                newest_timestamp=newer.newest_timestamp,
                oldest_timestamp=older.oldest_timestamp,
            )
            new_buckets = list(self._buckets)
            new_buckets[second] = merged
            del new_buckets[first]
            self._buckets = deque(new_buckets)
            size *= 2

    def _expire(self) -> None:
        while self._buckets and self._now - self._buckets[0].newest_timestamp >= self._t0:
            self._buckets.popleft()

    # -- queries --------------------------------------------------------------------

    def estimate(self) -> int:
        """(1 ± ε)-approximate number of active elements."""
        self._expire()
        if not self._buckets:
            return 0
        total = sum(bucket.size for bucket in self._buckets)
        oldest = self._buckets[0]
        if self._now - oldest.oldest_timestamp < self._t0:
            # The oldest bucket is entirely inside the window: the count is exact.
            return total
        # Otherwise only part of the oldest bucket is active; charge half of it.
        return total - oldest.size + max(1, oldest.size // 2)

    def lower_bound(self) -> int:
        """A count that is never larger than the true number of active elements."""
        self._expire()
        if not self._buckets:
            return 0
        total = sum(bucket.size for bucket in self._buckets)
        oldest = self._buckets[0]
        if self._now - oldest.oldest_timestamp < self._t0:
            return total
        return total - oldest.size + 1

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the counter (buckets, clock, arrival count).

        The histogram is deterministic — no generator state to capture — so a
        restored counter continues producing exactly the estimates the
        original would have.
        """
        return {
            "format": STATE_FORMAT,
            "t0": self._t0,
            "epsilon": self._epsilon,
            "now": self._now,
            "arrivals": self._arrivals,
            "buckets": [
                [bucket.size, bucket.newest_timestamp, bucket.oldest_timestamp]
                for bucket in self._buckets
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot in place (window span and ε must match)."""
        require_state_fields(
            state,
            ("format", "t0", "epsilon", "now", "arrivals", "buckets"),
            "ExponentialHistogramCounter",
        )
        if state["format"] != STATE_FORMAT:
            raise ConfigurationError(
                f"unsupported snapshot format {state['format']!r} (expected {STATE_FORMAT})"
            )
        if float(state["t0"]) != self._t0 or float(state["epsilon"]) != self._epsilon:
            raise ConfigurationError(
                "snapshot (t0, epsilon) does not match this counter's configuration"
            )
        self._now = float(state["now"])
        self._arrivals = int(state["arrivals"])
        self._buckets = deque(
            _Bucket(size=int(size), newest_timestamp=float(newest), oldest_timestamp=float(oldest))
            for size, newest, oldest in state["buckets"]
        )

    def memory_words(self) -> int:
        """Footprint: three words per bucket (size + two timestamps) plus constants."""
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(3)  # t0, epsilon, capacity
        meter.add_timestamps()  # the clock
        meter.add_counters()  # arrival counter
        held = len(self._buckets)
        meter.add_counters(held)
        meter.add_timestamps(2 * held)
        return meter.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExponentialHistogramCounter(t0={self._t0}, epsilon={self._epsilon}, "
            f"buckets={len(self._buckets)}, estimate={self.estimate()})"
        )
