"""Companion sketches for sliding windows.

Currently: the Datar–Gionis–Indyk–Motwani exponential histogram, an
approximate counter of the number of active elements in a timestamp window.
The paper's algorithms deliberately avoid needing the window size; the
Section-5 application estimators, however, use it as a scale factor, and this
counter supplies a (1±ε) approximation in sub-linear space.
"""

from .exponential_histogram import ExponentialHistogramCounter

__all__ = ["ExponentialHistogramCounter"]
