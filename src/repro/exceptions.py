"""Exception hierarchy for the sliding-window sampling library.

All library-specific errors derive from :class:`SWSampleError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish the individual conditions.
"""

from __future__ import annotations

__all__ = [
    "SWSampleError",
    "EmptyWindowError",
    "InsufficientSampleError",
    "StreamOrderError",
    "ConfigurationError",
    "SamplingFailureError",
    "CheckpointError",
    "ExecutorError",
    "WorkerFailure",
    "ShardRecovering",
    "TransportError",
]


class SWSampleError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class EmptyWindowError(SWSampleError):
    """Raised when a sample is requested but the current window is empty.

    For sequence-based windows this only happens before the first element
    arrives.  For timestamp-based windows it also happens when every stored
    element has expired (no element arrived during the last ``t0`` time
    units).
    """


class InsufficientSampleError(SWSampleError):
    """Raised when a k-sample without replacement is requested but the window
    currently holds fewer than ``k`` elements and the caller asked for strict
    behaviour (``allow_partial=False``)."""


class StreamOrderError(SWSampleError):
    """Raised when elements are pushed with decreasing timestamps or when the
    logical clock is moved backwards.

    The sliding-window model assumes ``T(p_i) <= T(p_{i+1})`` (paper, §3.1);
    violating this would silently corrupt every expiry decision, so the
    library refuses the operation instead.
    """


class ConfigurationError(SWSampleError):
    """Raised for invalid constructor arguments (``k <= 0``, ``n <= 0``,
    ``t0 <= 0``, unknown algorithm names, ...)."""


class SamplingFailureError(SWSampleError):
    """Raised by *baseline* algorithms whose success is only probabilistic.

    The over-sampling baseline, for example, may find fewer than ``k``
    non-expired candidates; the paper cites exactly this failure mode as
    disadvantage (b) of over-sampling.  The optimal algorithms of the paper
    never raise this error.
    """


class CheckpointError(ConfigurationError):
    """Raised when a checkpoint on disk cannot be trusted: a missing or
    corrupt shard segment, a digest mismatch, a malformed manifest, or a
    version this build does not understand.

    Subclasses :class:`ConfigurationError` so callers that treated every
    bad-checkpoint condition as a configuration problem keep working, while
    recovery tooling can distinguish "the file is damaged" from "the
    arguments are wrong".
    """


class TransportError(SWSampleError, ValueError):
    """Raised when a columnar transport payload cannot be decoded: a bad
    magic, an unknown column tag, or a truncated/corrupt buffer.

    Carries enough context (byte offset, column index) to diagnose a corrupt
    shared-memory frame or a torn queue message.  Subclasses
    :class:`ValueError` because the codec historically raised bare
    ``ValueError`` for bad magics — existing ``except ValueError`` handlers
    keep working.
    """


class ExecutorError(SWSampleError):
    """Raised when the parallel engine cannot make progress: a shard worker
    died with an exception (re-raised at the next ingest/flush/query), or an
    operation was attempted on a closed engine."""


class WorkerFailure(ExecutorError):
    """Raised when a shard worker has failed and its shards' state can no
    longer be trusted: a worker thread raised while applying records, or a
    worker *process* died (crash, OOM kill, SIGKILL) taking its resident
    shards with it.

    The failure is sticky — the engine refuses all further ingest and
    queries rather than serving from a fleet that may have lost arrivals.
    Recover by loading the last checkpoint into a fresh engine, or enable
    supervision (``ProcessEngine(supervise=True, wal_dir=...)``) so worker
    death is repaired automatically; supervision only degrades to this
    sticky failure once its :class:`RestartPolicy` budget is exhausted.
    """


class ShardRecovering(ExecutorError):
    """Raised while a supervised worker is being restarted: the operation
    touches shards whose owner died and is mid-recovery (checkpoint restore
    plus WAL replay), so answering now could be wrong or lose arrivals.

    Unlike :class:`WorkerFailure` this is *retryable* — the fleet is healing
    itself and the same call will succeed once recovery drains.  ``shards``
    names the affected shard indexes and ``retry_after`` is the engine's
    estimate (seconds) of when to try again; the serve layer maps this to
    HTTP 503 with a ``Retry-After`` header.
    """

    def __init__(self, message: str, *, shards: tuple = (), retry_after: float = 1.0):
        super().__init__(message)
        self.shards = tuple(shards)
        self.retry_after = float(retry_after)

    def __reduce__(self):
        # Keyword-only attributes need explicit pickle support so the error
        # survives multiprocessing reply queues intact.
        return (_rebuild_shard_recovering, (self.args[0] if self.args else "", self.shards, self.retry_after))


def _rebuild_shard_recovering(message, shards, retry_after):
    return ShardRecovering(message, shards=shards, retry_after=retry_after)
