"""Optimal sampling without replacement from timestamp-based windows (§4, Theorem 4.4).

The construction combines two ingredients:

1. **Delayed with-replacement samplers.**  ``k`` independent copies of the §3
   machinery are maintained, where copy ``i`` only receives an element once
   ``i`` further elements have arrived (Lemma 4.1).  At any time, copy ``i``
   therefore holds a uniform single sample ``R_i`` of *all active elements
   except the last i*.

2. **The black-box reduction** (Lemmas 4.2/4.3, :mod:`repro.core.reduction`).
   Together with an auxiliary array of the last ``k`` arrived elements, the
   nested-domain samples ``R_{k-1}, ..., R_0`` are stitched into a uniform
   ``k``-subset of the whole window.

Total memory: Θ(k + k·log n) words, deterministic — matching the Ω(k log n)
lower bound of Gemulla and Lehner for timestamp windows.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence

from ..exceptions import ConfigurationError, EmptyWindowError, InsufficientSampleError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng, spawn
from .base import (
    TimestampWindowSampler,
    check_batch_lengths,
    coerce_batch_timestamps,
    init_sampler_kernel,
)
from .covering import WindowCoverage, estimate_active_count
from .reduction import build_k_sample
from .serialization import (
    decode_candidate,
    decode_rng_into,
    encode_candidate,
    encode_rng,
    require_state_fields,
)
from .tracking import CandidateObserver, SampleCandidate

__all__ = ["TimestampSamplerWOR"]


class TimestampSamplerWOR(TimestampWindowSampler):
    """k samples *without replacement* from a timestamp window (Theorem 4.4).

    When the window currently holds fewer than ``k`` active elements the
    sampler returns all of them (they are necessarily among the last ``k``
    arrivals, which are stored verbatim); set ``allow_partial=False`` to raise
    :class:`~repro.exceptions.InsufficientSampleError` instead.
    """

    algorithm = "boz-ts-wor"
    with_replacement = False
    deterministic_memory = True

    def __init__(
        self,
        t0: float,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        allow_partial: bool = True,
        fast: bool = False,
        kernel: str = "python",
    ) -> None:
        super().__init__(t0, k, observer)
        root = ensure_rng(rng)
        self._allow_partial = bool(allow_partial)
        #: ``fast=True`` switches the batched path's bucket-merge coins to
        #: geometric skip draws (distributionally exact, not bit-identical to
        #: the ``append`` loop); the default consumes randomness exactly like
        #: per-element appends.
        self._fast = bool(fast)
        # Coverage i receives elements delayed by i arrivals (Lemma 4.1).
        self._coverages = [WindowCoverage(self._t0, spawn(root, lane), observer) for lane in range(self._k)]
        self._query_rng = spawn(root, self._k + 1)
        # Resolved after every spawn so kernel choice never perturbs them.
        self._kernel, self._np_gen = init_sampler_kernel(kernel, root)
        # Auxiliary array of the last k arrived elements (§4: "we maintain an
        # auxiliary array with the last i elements ... we can use the same
        # array for every i").
        self._recent: Deque[SampleCandidate] = deque(maxlen=self._k)
        self._now = float("-inf")

    # -- clock ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        for coverage in self._coverages:
            coverage.advance_time(self._now)

    # -- ingestion ------------------------------------------------------------------

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        if timestamp is None:
            ts = self._now if self._now != float("-inf") else 0.0
        else:
            ts = float(timestamp)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        self._recent.append(SampleCandidate(value=value, index=index, timestamp=ts))
        # Feed each delayed copy the element that has now cleared its delay:
        # copy i processes element index - i (if it exists).  The element is
        # still in the auxiliary array because i < k.
        recent_list = list(self._recent)
        for delay, coverage in enumerate(self._coverages):
            target = index - delay
            if target < 0:
                continue
            delayed = recent_list[-(delay + 1)]
            coverage.advance_time(self._now)
            coverage.observe(delayed.value, delayed.index, delayed.timestamp)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def process_batch(
        self,
        values: Sequence[Any],
        timestamps: Optional[Sequence[Optional[float]]] = None,
    ) -> int:
        """Batched :meth:`append` for the delayed-copies construction.

        Copy ``i`` observes element ``index - i`` at every arrival, so each
        coverage is handed one contiguous slice of the materialised auxiliary
        view (old buffer + batch) through
        :meth:`~repro.core.covering.WindowCoverage.observe_batch`, with the
        *arrival* timestamps as its clock track: each automaton owns an
        independent generator and sees exactly the per-element sequence,
        making the default mode bit-identical to the ``append`` loop
        (``fast=True`` draws geometric merge skips instead — distributionally
        exact, different generator trajectory).  Timestamps are validated up
        front (an out-of-order one raises before any element is applied);
        observer-carrying samplers fall back to the per-element loop.
        """
        check_batch_lengths(values, timestamps)
        count = len(values)
        if count == 0:
            return 0
        if self._observer is not None:
            return super().process_batch(values, timestamps)
        stamps = coerce_batch_timestamps(count, timestamps, self._now)
        start = self._arrivals
        held = list(self._recent)
        base = len(held)
        combined_values = [candidate.value for candidate in held]
        combined_values.extend(values)
        combined_stamps = [candidate.timestamp for candidate in held]
        combined_stamps.extend(stamps)
        fast = self._fast
        use_kernel = fast and self._np_gen is not None
        if use_kernel:
            from ..engine.kernels import as_float_array, coverage_observe_batch

            combined_array = as_float_array(combined_stamps)
            clock_array = combined_array[base:]
        for delay, coverage in enumerate(self._coverages):
            # Copy `delay` skips arrivals whose delayed target index would be
            # negative; the rest observe the contiguous combined slice
            # [base + first - delay, base + count - delay) — the held buffer
            # holds exactly the last `base` arrivals, indexes consecutive.
            first = delay - start
            if first < 0:
                first = 0
            if first >= count:
                continue
            if use_kernel:
                coverage_observe_batch(
                    coverage,
                    combined_values,
                    base + first - delay,
                    start + first - delay,
                    combined_array[base + first - delay : base + count - delay],
                    clock_array[first:],
                    self._np_gen,
                )
                continue
            coverage.observe_batch(
                combined_values[base + first - delay : base + count - delay],
                start + first - delay,
                combined_stamps[base + first - delay : base + count - delay],
                clocks=stamps if first == 0 else stamps[first:],
                fast=fast,
            )
        self._recent.extend(
            SampleCandidate(value=values[position], index=start + position, timestamp=stamps[position])
            for position in range(count - self._k if count > self._k else 0, count)
        )
        self._now = stamps[-1]
        self._arrivals = start + count
        return count

    # -- sampling -----------------------------------------------------------------------

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        if self._now != float("-inf"):
            for coverage in self._coverages:
                coverage.advance_time(self._now)
        active_recent = [
            candidate for candidate in self._recent if self._now - candidate.timestamp < self._t0
        ]
        window_has_k = len(self._recent) == self._k and len(active_recent) == self._k
        if self._coverages[0].is_empty:
            raise EmptyWindowError("no active element in the window")
        if not window_has_k:
            # Fewer than k active elements: they all sit in the auxiliary array.
            if not active_recent:
                raise EmptyWindowError("no active element in the window")
            if len(active_recent) < self._k and not self._allow_partial:
                raise InsufficientSampleError(
                    f"window holds only {len(active_recent)} elements, k={self._k} requested"
                )
            return list(active_recent)
        # Full reduction (Lemma 4.3): singles over nested domains, smallest first.
        singles: List[SampleCandidate] = []
        for delay in range(self._k - 1, -1, -1):
            coverage = self._coverages[delay]
            if coverage.is_empty:  # pragma: no cover - defensive; n >= k implies non-empty
                raise EmptyWindowError("delayed coverage unexpectedly empty")
            singles.append(coverage.draw_sample(self._query_rng))
        # The newest element of each successive domain: the last k-1 active
        # elements, oldest first — exactly recent[1:] when the buffer is full.
        recent_list = list(self._recent)
        newest_elements = recent_list[1:]
        return build_k_sample(singles, newest_elements, key=lambda candidate: candidate.index)

    # -- introspection ----------------------------------------------------------------------

    def active_count_estimate(self) -> int:
        """Estimated number of currently active elements ``n(t)``
        (:func:`~repro.core.covering.estimate_active_count` on the undelayed
        copy — delay 0 — which observes every arrival)."""
        return estimate_active_count(self._coverages[0], self._now)

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for coverage in self._coverages:
            yield from coverage.iter_candidates()
        yield from self._recent

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # t0 and k
        meter.add_counters()  # arrival counter
        meter.add_timestamps()  # the clock
        held = len(self._recent)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        for coverage in self._coverages:
            meter.add_words(coverage.memory_words())
        return meter.total

    # -- checkpointing -----------------------------------------------------------------------

    def _encode_state(self) -> Dict[str, Any]:
        return {
            "t0": self._t0,
            "now": self._now,
            "recent": [encode_candidate(candidate) for candidate in self._recent],
            "coverages": [coverage.state_dict() for coverage in self._coverages],
            "query_rng": encode_rng(self._query_rng),
        }

    def _decode_state(self, payload: Dict[str, Any]) -> None:
        require_state_fields(
            payload, ("t0", "now", "recent", "coverages", "query_rng"), type(self).__name__
        )
        if float(payload["t0"]) != self._t0:
            raise ConfigurationError(f"snapshot has t0={payload['t0']}, sampler has t0={self._t0}")
        if len(payload["coverages"]) != len(self._coverages):
            raise ConfigurationError(
                f"snapshot has {len(payload['coverages'])} coverages, sampler has {len(self._coverages)}"
            )
        self._now = float(payload["now"])
        self._recent = deque(
            (decode_candidate(encoded) for encoded in payload["recent"]), maxlen=self._k
        )
        for coverage, coverage_state in zip(self._coverages, payload["coverages"]):
            coverage.load_state_dict(coverage_state)
        decode_rng_into(self._query_rng, payload["query_rng"])
