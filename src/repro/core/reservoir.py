"""Vitter's reservoir sampling — the one-pass primitive used inside buckets.

The paper's algorithms (§2 and §3) maintain, for every bucket, a uniform
random sample produced by "any one-pass algorithm (e.g., the reservoir
sampling method)" [Vitter 1985].  Two flavours are needed:

* :class:`SingleReservoir` — one uniform sample of everything offered so far
  (used by the with-replacement schemes, one instance per independent sample).
* :class:`ReservoirWithoutReplacement` — a uniform k-subset of everything
  offered so far, or everything when fewer than ``k`` elements were offered
  (used by the without-replacement scheme of §2.2).

Both are exact (not approximate), use O(1) / O(k) words and support the
candidate-observer hook of :mod:`repro.core.tracking`.

The crucial property used by §1.3.4 (independence of disjoint windows) also
holds here: the sample held after ``i`` offers is independent of which of the
later offers replace it, because each replacement decision uses fresh
randomness.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..exceptions import ConfigurationError, EmptyWindowError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import ensure_rng
from .serialization import (
    decode_candidate,
    decode_optional_candidate,
    decode_rng_into,
    encode_candidate,
    encode_optional_candidate,
    encode_rng,
    require_state_fields,
)
from .tracking import CandidateObserver, SampleCandidate

__all__ = ["SingleReservoir", "ReservoirWithoutReplacement"]


def _slice_timestamp(
    timestamps: Optional[Sequence[Optional[float]]], position: int, index: int
) -> float:
    """Resolve one element's timestamp inside a batched offer.

    Mirrors the sequence samplers' ``append`` contract: a missing timestamp
    defaults to the element's arrival index.
    """
    if timestamps is None:
        return float(index)
    raw = timestamps[position]
    return float(index) if raw is None else float(raw)


class SingleReservoir:
    """A uniform single sample over an append-only stream of offers.

    Classic Algorithm R with ``k = 1``: the ``m``-th offered element replaces
    the current sample with probability ``1/m``.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        self._rng = ensure_rng(rng)
        self._observer = observer
        self._count = 0
        self._candidate: Optional[SampleCandidate] = None

    @property
    def count(self) -> int:
        """Number of elements offered so far."""
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._candidate is None

    @property
    def candidate(self) -> Optional[SampleCandidate]:
        """The currently retained candidate (``None`` before the first offer)."""
        return self._candidate

    def offer(self, value: Any, index: int, timestamp: float = 0.0) -> None:
        """Offer one element to the reservoir."""
        self._count += 1
        if self._rng.random() < 1.0 / self._count:
            self._replace(SampleCandidate(value=value, index=index, timestamp=timestamp))

    def _replace(self, candidate: SampleCandidate) -> None:
        if self._candidate is not None and self._observer is not None:
            self._observer.on_discard(self._candidate)
        self._candidate = candidate
        if self._observer is not None:
            self._observer.on_select(candidate)

    def offer_slice(
        self,
        values: Sequence[Any],
        base_index: int,
        lo: int,
        hi: int,
        timestamps: Optional[Sequence[Optional[float]]] = None,
        fast: bool = False,
    ) -> None:
        """Offer ``values[lo:hi]`` (stream indexes ``base_index + lo`` on) in
        one call — the batched form of :meth:`offer`.

        The default mode consumes the generator exactly like per-element
        :meth:`offer` calls would (one coin per offer), so the resulting
        state — candidate, count *and* generator position — is bit-identical
        to the per-element path.  ``fast=True`` instead draws one inverse-CDF
        skip per *acceptance* (Vitter's skip-counting idea specialised to
        k = 1: the next accepted offer number is ``ceil(m / u)`` for
        ``u ~ U(0, 1)``), which is distributionally exact but advances the
        generator differently.  A redrawn skip that overshoots the slice is
        simply discarded: the conditional law of the next acceptance given
        "none so far" is the fresh-draw law, so per-slice redraws stay exact.

        With an observer attached the per-element path is used regardless of
        ``fast`` so selection/discard notifications keep firing.
        """
        if self._observer is not None:
            for position in range(lo, hi):
                index = base_index + position
                self.offer(values[position], index, _slice_timestamp(timestamps, position, index))
            return
        rng_random = self._rng.random
        count = self._count
        candidate = self._candidate
        if fast:
            position = lo
            if count == 0 and position < hi:
                # The first offer is accepted with probability 1/1.
                index = base_index + position
                candidate = SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_slice_timestamp(timestamps, position, index),
                )
                count = 1
                position += 1
            ceil = math.ceil
            while position < hi:
                u = rng_random()
                if u <= 0.0:
                    count += hi - position
                    break
                accept_at = ceil(count / u)  # offer number of the next acceptance
                target = position + (accept_at - count - 1)  # its slice position
                if target >= hi:
                    count += hi - position  # whole remainder skipped
                    break
                count = accept_at
                position = target
                index = base_index + position
                candidate = SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_slice_timestamp(timestamps, position, index),
                )
                position += 1
        else:
            for position in range(lo, hi):
                count += 1
                if rng_random() < 1.0 / count:
                    index = base_index + position
                    candidate = SampleCandidate(
                        value=values[position],
                        index=index,
                        timestamp=_slice_timestamp(timestamps, position, index),
                    )
        self._count = count
        self._candidate = candidate

    def sample(self) -> SampleCandidate:
        """The current uniform sample of all offered elements."""
        if self._candidate is None:
            raise EmptyWindowError("reservoir is empty")
        return self._candidate

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        if self._candidate is not None:
            yield self._candidate

    def memory_words(self) -> int:
        """Footprint under the paper's word model: the stored candidate
        (value, index, timestamp) plus the offer counter."""
        meter = MemoryMeter(WORD_MODEL)
        if self._candidate is not None:
            meter.add_elements().add_indexes().add_timestamps()
        meter.add_counters()
        return meter.total

    def reset(self) -> None:
        """Forget everything (used when a bucket is discarded)."""
        if self._candidate is not None and self._observer is not None:
            self._observer.on_discard(self._candidate)
        self._candidate = None
        self._count = 0

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot: offer count, retained candidate, generator position."""
        return {
            "count": self._count,
            "candidate": encode_optional_candidate(self._candidate),
            "rng": encode_rng(self._rng),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        require_state_fields(state, ("count", "candidate", "rng"), "SingleReservoir")
        self._count = int(state["count"])
        self._candidate = decode_optional_candidate(state["candidate"])
        decode_rng_into(self._rng, state["rng"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SingleReservoir(count={self._count}, candidate={self._candidate})"


class ReservoirWithoutReplacement:
    """A uniform ``k``-subset of an append-only stream of offers.

    Classic Algorithm R: the first ``k`` offers fill the reservoir; the
    ``m``-th offer (``m > k``) enters with probability ``k/m``, evicting a
    uniformly chosen slot.  When fewer than ``k`` elements have been offered
    the reservoir simply holds all of them — exactly the behaviour §2.2 relies
    on for partial buckets ("either X_B = C, if |C| < k, or X_B is a k-sample
    of C").
    """

    def __init__(
        self,
        k: int,
        rng: Optional[random.Random] = None,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self._k = int(k)
        self._rng = ensure_rng(rng)
        self._observer = observer
        self._count = 0
        self._slots: List[SampleCandidate] = []

    @property
    def k(self) -> int:
        return self._k

    @property
    def count(self) -> int:
        """Number of elements offered so far."""
        return self._count

    @property
    def size(self) -> int:
        """Number of candidates currently held (``min(k, count)``)."""
        return len(self._slots)

    def offer(self, value: Any, index: int, timestamp: float = 0.0) -> None:
        """Offer one element to the reservoir."""
        self._count += 1
        candidate = SampleCandidate(value=value, index=index, timestamp=timestamp)
        if len(self._slots) < self._k:
            self._slots.append(candidate)
            if self._observer is not None:
                self._observer.on_select(candidate)
            return
        if self._rng.random() < self._k / self._count:
            victim = self._rng.randrange(self._k)
            if self._observer is not None:
                self._observer.on_discard(self._slots[victim])
                self._observer.on_select(candidate)
            self._slots[victim] = candidate

    def offer_slice(
        self,
        values: Sequence[Any],
        base_index: int,
        lo: int,
        hi: int,
        timestamps: Optional[Sequence[Optional[float]]] = None,
        fast: bool = False,
    ) -> None:
        """Offer ``values[lo:hi]`` (stream indexes ``base_index + lo`` on) in
        one call — the batched form of :meth:`offer`.

        The default mode consumes the generator exactly like per-element
        :meth:`offer` calls (one coin per offer past the fill phase, plus one
        victim draw per acceptance), so the resulting state is bit-identical
        to the per-element path.  ``fast=True`` draws one skip per
        *acceptance* instead (the skip-counting of Vitter's Algorithm Z
        lineage): the number of rejected offers before the next acceptance
        has survival function ``q(j) = prod_{i=m+1}^{j} (1 - k/i)``, inverted
        here by an exponential-then-binary search on its log-gamma closed
        form.  Distributionally exact, but the generator advances
        differently.  Skips that overshoot the slice are discarded, which is
        exact because the skip law is memoryless across redraws.

        With an observer attached the per-element path is used regardless of
        ``fast`` so selection/discard notifications keep firing.
        """
        if self._observer is not None:
            for position in range(lo, hi):
                index = base_index + position
                self.offer(values[position], index, _slice_timestamp(timestamps, position, index))
            return
        slots = self._slots
        k = self._k
        count = self._count
        position = lo
        # Fill phase: the first k offers enter without randomness, exactly as
        # in :meth:`offer`.
        while position < hi and len(slots) < k:
            count += 1
            index = base_index + position
            slots.append(
                SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_slice_timestamp(timestamps, position, index),
                )
            )
            position += 1
        if position >= hi:
            # The slice ended inside the fill phase (count may still be < k,
            # where the survival function below is undefined).
            self._count = count
            return
        rng_random = self._rng.random
        randrange = self._rng.randrange
        if fast:
            log = math.log
            lgamma = math.lgamma
            # G(x) = ln Gamma(x+1-k) - ln Gamma(x+1); q(j) = exp(G(j) - G(m)).
            g_count = lgamma(count + 1 - k) - lgamma(count + 1)
            while position < hi:
                u = rng_random()
                if u <= 0.0:
                    count += hi - position
                    break
                target_log = g_count + log(u)
                # Smallest j > count with G(j) < target_log: exponential
                # bracketing then bisection (G is strictly decreasing).
                low = count
                high = count + 1
                step = 1
                while lgamma(high + 1 - k) - lgamma(high + 1) >= target_log:
                    low = high
                    step += step
                    high = count + step
                while high - low > 1:
                    mid = (low + high) >> 1
                    if lgamma(mid + 1 - k) - lgamma(mid + 1) >= target_log:
                        low = mid
                    else:
                        high = mid
                target = position + (high - count - 1)  # slice position of acceptance
                if target >= hi:
                    count += hi - position  # whole remainder skipped
                    break
                count = high
                position = target
                index = base_index + position
                slots[randrange(k)] = SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_slice_timestamp(timestamps, position, index),
                )
                position += 1
                g_count = lgamma(count + 1 - k) - lgamma(count + 1)
        else:
            for position in range(position, hi):
                count += 1
                if rng_random() < k / count:
                    index = base_index + position
                    slots[randrange(k)] = SampleCandidate(
                        value=values[position],
                        index=index,
                        timestamp=_slice_timestamp(timestamps, position, index),
                    )
        self._count = count

    def sample(self) -> List[SampleCandidate]:
        """The current uniform k-subset (or everything, if count < k)."""
        return list(self._slots)

    def subsample(self, size: int, rng: Optional[random.Random] = None) -> List[SampleCandidate]:
        """A uniform ``size``-subset of the held k-subset.

        A uniform subset of a uniform-without-replacement sample is itself a
        uniform without-replacement sample of the underlying population — the
        fact §2.2 uses to draw ``X_V^i`` from ``X_V``.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if size > len(self._slots):
            raise EmptyWindowError(
                f"cannot draw {size} elements from a reservoir holding {len(self._slots)}"
            )
        chooser = rng if rng is not None else self._rng
        return chooser.sample(self._slots, size)

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self._slots

    def memory_words(self) -> int:
        """Footprint: 3 words per held candidate plus the offer counter."""
        meter = MemoryMeter(WORD_MODEL)
        held = len(self._slots)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        meter.add_counters()
        return meter.total

    def reset(self) -> None:
        if self._observer is not None:
            for candidate in self._slots:
                self._observer.on_discard(candidate)
        self._slots.clear()
        self._count = 0

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot: offer count, held slots (in order), generator position."""
        return {
            "k": self._k,
            "count": self._count,
            "slots": [encode_candidate(candidate) for candidate in self._slots],
            "rng": encode_rng(self._rng),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        require_state_fields(state, ("k", "count", "slots", "rng"), "ReservoirWithoutReplacement")
        if int(state["k"]) != self._k:
            raise ConfigurationError(f"snapshot has k={state['k']}, reservoir has k={self._k}")
        self._count = int(state["count"])
        self._slots = [decode_candidate(encoded) for encoded in state["slots"]]
        decode_rng_into(self._rng, state["rng"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReservoirWithoutReplacement(k={self._k}, count={self._count}, held={len(self._slots)})"
