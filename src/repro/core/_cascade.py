"""The ``Incr`` merge cascade (Lemma 3.4) as a compile-friendly module.

This is the innermost loop of :meth:`~repro.core.covering.WindowCoverage.
observe_batch`, factored out so it can optionally be compiled with
`mypyc <https://mypyc.readthedocs.io/>`_ — the module deliberately sticks to
the mypyc-supported subset (plain functions, a ``__slots__``-free final class,
no dynamic attribute tricks, fully annotated signatures) so that

.. code-block:: console

   $ python -m mypyc src/repro/core/_cascade.py

produces a drop-in extension.  Nothing in the repository *requires* the
compiled form: the interpreted module is the reference, and
:data:`COMPILED` reports which one is active (surfaced by the engine's
``transport_report()``).

Both entry points mutate the bucket list **in place** and consume randomness
exactly as the historical inline loop did, preserving the batched path's
bit-identity contract:

* :func:`merge_cascade` draws two ``rng_random() < 0.5`` coins per merge, in
  cascade order — byte-identical to the per-element ``Incr`` walk;
* :func:`merge_cascade_fast` takes its coins from a :class:`CoinSlab`
  (one ``randbytes(512)`` slab buys 512 fair coins, the high bit of each
  byte), matching the ``fast=True`` trajectory.

The callers keep the O(1) "does this arrival merge at all?" probe inline —
``n >= 3 and buckets[n - 3].start == index - 3`` — because most arrivals fail
it and a cross-module call would dominate the cost of the probe itself.
"""

from __future__ import annotations

from typing import Callable, List

from .bucket_structure import BucketStructure

__all__ = ["COMPILED", "CoinSlab", "merge_cascade", "merge_cascade_fast"]

#: True when this module is running as a compiled (mypyc) extension.
COMPILED = not __file__.endswith((".py", ".pyc"))


class CoinSlab:
    """Fair coins carved out of 512-byte ``randbytes`` slabs.

    Each byte of generator output is one coin (its high bit: ``byte < 128``),
    refilled lazily so the unconsumed tail of the final slab is simply
    discarded — exact, because the coins are i.i.d.  One instance lives for
    one ``observe_batch`` chunk so consecutive merge runs share a slab.
    """

    def __init__(self, randbytes: Callable[[int], bytes]) -> None:
        self._randbytes = randbytes
        self._slab = b""
        self._pos = 0

    def flip(self) -> bool:
        """One fair coin; ``True`` keeps the left bucket's sample."""
        if self._pos == len(self._slab):
            self._slab = self._randbytes(512)
            self._pos = 0
        coin = self._slab[self._pos] < 128
        self._pos += 1
        return coin


def _run_start(buckets: List[BucketStructure], index: int) -> int:
    """Front of the merge run ending at the third-from-last bucket.

    The walk merges exactly where ``⌊log(b+2-a)⌋`` steps — where ``b+2-a`` is
    a power of two — and in a canonical decomposition those positions always
    form a stride-2 run (pinned exhaustively against the reference walk in
    ``tests/test_covering_decomposition.py``).  The caller has already probed
    that the run is non-empty.
    """
    first = len(buckets) - 3
    while first >= 2:
        gap = index + 1 - buckets[first - 2].start
        if gap & (gap - 1):
            break
        first -= 2
    return first


def merge_cascade(
    buckets: List[BucketStructure],
    index: int,
    rng_random: Callable[[], float],
) -> None:
    """Run the in-place merge cascade for arrival ``index`` (default coins).

    Draws two ``rng_random() < 0.5`` coins per merge in front-to-back cascade
    order, exactly as the per-element ``Incr`` walk does, so the resulting
    bucket list *and* generator position are bit-identical to the reference.
    """
    n = len(buckets)
    first = _run_start(buckets, index)
    merged = BucketStructure.merge_fast
    read = first
    write = first
    while read <= n - 3:
        bucket = buckets[read]
        right = buckets[read + 1]
        r_sample = bucket.r_sample if rng_random() < 0.5 else right.r_sample
        q_sample = bucket.q_sample if rng_random() < 0.5 else right.q_sample
        buckets[write] = merged(bucket, right, r_sample, q_sample)
        read += 2
        write += 1
    buckets[write] = buckets[n - 1]
    del buckets[write + 1 :]


def merge_cascade_fast(
    buckets: List[BucketStructure],
    index: int,
    coins: CoinSlab,
) -> None:
    """Run the in-place merge cascade for arrival ``index`` (slab coins).

    Identical structure to :func:`merge_cascade` but takes its fair coins
    from a chunk-lived :class:`CoinSlab`, matching the ``fast=True`` path's
    randomness trajectory byte for byte.
    """
    n = len(buckets)
    first = _run_start(buckets, index)
    merged = BucketStructure.merge_fast
    read = first
    write = first
    while read <= n - 3:
        bucket = buckets[read]
        right = buckets[read + 1]
        r_sample = bucket.r_sample if coins.flip() else right.r_sample
        q_sample = bucket.q_sample if coins.flip() else right.q_sample
        buckets[write] = merged(bucket, right, r_sample, q_sample)
        read += 2
        write += 1
    buckets[write] = buckets[n - 1]
    del buckets[write + 1 :]
