"""Black-box reduction: sampling without replacement from independent single
samples (§4, Lemmas 4.2 and 4.3).

Notation: ``S^j_i`` is a uniform ``i``-subset (sample without replacement) of
the domain ``{1, ..., j}`` — or, in our setting, of the ``j`` oldest active
elements of the window.

* Lemma 4.2 (:func:`extend_without_replacement`): given an ``a``-subset
  ``S^b_a`` of the first ``b`` elements and an *independent* single sample
  ``S^{b+1}_1`` of the first ``b+1`` elements, a uniform ``(a+1)``-subset of
  the first ``b+1`` elements is obtained by adding element ``b+1`` when the
  single sample collides with the current subset and adding the single sample
  otherwise.

* Lemma 4.3 (:func:`build_k_sample`): chaining the rule over the independent
  single samples ``S^{n-k+1}_1, ..., S^n_1`` (which is exactly what the k
  delayed window samplers of §4 provide) produces a uniform k-subset ``S^n_k``
  of the whole window.  The elements ``n-k+2, ..., n`` — the last ``k-1``
  active elements — must be known explicitly, which is why the algorithm also
  stores an auxiliary array of the last ``k`` elements.

The functions are written over arbitrary hashable element keys so they can be
unit-tested on literal integer domains (as in the paper's notation) and reused
verbatim by :class:`~repro.core.timestamp_wor.TimestampSamplerWOR`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

__all__ = ["extend_without_replacement", "build_k_sample"]

T = TypeVar("T")


def extend_without_replacement(
    current: Sequence[T],
    new_single: T,
    newest_element: T,
    key: Callable[[T], object] = lambda item: item,
) -> List[T]:
    """Lemma 4.2: extend ``S^b_a`` to ``S^{b+1}_{a+1}``.

    Parameters
    ----------
    current:
        The current subset ``S^b_a`` (``a`` distinct elements of the first
        ``b``).
    new_single:
        ``S^{b+1}_1`` — a uniform single sample of the first ``b+1`` elements,
        independent of ``current``.
    newest_element:
        The element ``b+1`` itself (the only element of the larger domain that
        ``current`` can never contain).
    key:
        Identity function used for the collision test (defaults to the element
        itself; the window samplers pass the stream index).
    """
    current_keys = {key(item) for item in current}
    if len(current_keys) != len(current):
        raise ValueError("current sample contains duplicate elements")
    if key(new_single) in current_keys:
        if key(newest_element) in current_keys:
            raise ValueError("newest element already present in the current sample")
        return list(current) + [newest_element]
    return list(current) + [new_single]


def build_k_sample(
    singles: Sequence[T],
    newest_elements: Sequence[T],
    key: Callable[[T], object] = lambda item: item,
) -> List[T]:
    """Lemma 4.3: build ``S^n_k`` from independent single samples of nested domains.

    Parameters
    ----------
    singles:
        ``[S^{n-k+1}_1, S^{n-k+2}_1, ..., S^n_1]`` — independent single
        samples of the ``k`` nested domains, smallest domain first.  In the
        window setting ``singles[j]`` is the sample that ignores the last
        ``k-1-j`` active elements.
    newest_elements:
        ``[element n-k+2, ..., element n]`` — the newest element of each
        successive domain (length ``len(singles) - 1``).  In the window
        setting these are the last ``k-1`` active elements, oldest first.
    key:
        Identity function used for collision tests.

    Returns a uniform ``k``-subset of the largest domain, ordered as built.
    """
    if not singles:
        return []
    if len(newest_elements) != len(singles) - 1:
        raise ValueError(
            f"need exactly {len(singles) - 1} newest elements, got {len(newest_elements)}"
        )
    result: List[T] = [singles[0]]
    for step, single in enumerate(singles[1:]):
        result = extend_without_replacement(result, single, newest_elements[step], key=key)
    return result
