"""Sample candidates and observer hooks.

A *candidate* is an element currently retained by a sampler: the content of a
reservoir slot, the ``R``/``Q`` samples of a bucket structure, or a chain /
priority entry in the baselines.  Candidates matter for two reasons:

1. Memory accounting — a sampler's footprint in the paper's word model is
   essentially the number of retained candidates.
2. The Section-5 applications (AMS frequency moments, CCM entropy, Buriol
   triangle counting) must *continue observing the stream* after a position is
   sampled: they count subsequent occurrences of the sampled value or watch
   for specific subsequent edges.  :class:`CandidateObserver` lets estimator
   state ride along with every retained candidate; when the sampler discards a
   candidate the state is discarded with it, so the memory bounds are
   preserved.

This is exactly the mechanism Theorem 5.1 needs: a sampling-based algorithm is
transferred to sliding windows by pointing it at our samplers' candidates
instead of at a whole-stream reservoir.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

__all__ = ["SampleCandidate", "CandidateObserver", "NullObserver", "OccurrenceCounter"]


@dataclass
class SampleCandidate:
    """An element currently retained by a sampler.

    ``state`` is a scratch dictionary owned by the observer attached to the
    sampler (if any); the samplers themselves never read it.
    """

    value: Any
    index: int
    timestamp: float
    state: Dict[str, Any] = field(default_factory=dict)

    def clone(self) -> "SampleCandidate":
        """A shallow copy sharing nothing with the original (state is copied)."""
        return SampleCandidate(
            value=self.value, index=self.index, timestamp=self.timestamp, state=dict(self.state)
        )


class CandidateObserver:
    """Base class for application hooks attached to a sampler.

    Sub-classes override some of the three callbacks.  All callbacks must be
    O(1) so they do not change the samplers' time bounds.
    """

    def on_select(self, candidate: SampleCandidate) -> None:
        """Called once when ``candidate`` becomes retained by the sampler."""

    def on_arrival(self, candidate: SampleCandidate, value: Any, index: int, timestamp: float) -> None:
        """Called for every retained candidate whenever a *later* element
        arrives (``index`` is strictly greater than ``candidate.index``)."""

    def on_discard(self, candidate: SampleCandidate) -> None:
        """Called when the sampler permanently drops ``candidate``."""


class NullObserver(CandidateObserver):
    """The default observer: does nothing."""


class OccurrenceCounter(CandidateObserver):
    """Counts, for each candidate, the occurrences of its value after its
    position.

    This is the statistic ``r`` of the AMS frequency-moment estimator and of
    the CCM entropy estimator: if position ``j`` holding value ``v`` is
    sampled, ``r = 1 + |{j' > j in the window : value(j') == v}|``.  Because
    the counter is attached to the candidate, it is maintained online while
    the candidate is retained and costs one word per candidate.
    """

    STATE_KEY = "occurrences_after"

    def on_select(self, candidate: SampleCandidate) -> None:
        candidate.state[self.STATE_KEY] = 0

    def on_arrival(self, candidate: SampleCandidate, value: Any, index: int, timestamp: float) -> None:
        if value == candidate.value:
            candidate.state[self.STATE_KEY] = candidate.state.get(self.STATE_KEY, 0) + 1

    @classmethod
    def count_of(cls, candidate: SampleCandidate) -> int:
        """The ``r`` statistic of a candidate: itself plus later occurrences."""
        return 1 + int(candidate.state.get(cls.STATE_KEY, 0))


def notify_arrival(
    observer: Optional[CandidateObserver],
    candidates: Iterable[SampleCandidate],
    value: Any,
    index: int,
    timestamp: float,
) -> None:
    """Deliver an arrival to every retained candidate older than it."""
    if observer is None:
        return
    for candidate in candidates:
        if candidate.index != index:
            observer.on_arrival(candidate, value, index, timestamp)
