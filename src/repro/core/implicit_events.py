"""Generating implicit events (§3.3, Lemmas 3.6–3.8).

The timestamp-based window has an *unknown* size: when the straddling bucket
``B1 = B(a, b)`` partially overlaps the window, the number ``γ`` of its still
active elements is not stored anywhere (storing it would require Ω(n) bits in
the worst case).  The sampling rule of Lemma 3.8 nevertheless needs an event
of probability ``α / (β + γ)`` where ``α = |B1|`` and ``β = |B2|`` is the size
of the covered suffix.  The paper's trick:

* Lemma 3.6 — from the stored uniform sample ``Q1`` of ``B1``, generate a
  *non-uniform* random element ``Y`` of ``B1`` whose probability of being one
  of the last ``i`` elements of ``B1`` telescopes to ``i / (β + i)``... more
  precisely ``P(Y = p_{b-i}) = β / ((β+i)(β+i-1))`` and the leftover mass sits
  on the (expired) first element ``p_a``.
* Lemma 3.7 — then ``P(Y is expired) = β / (β + γ)`` *without knowing γ*, and
  AND-ing with an independent coin of known bias ``α / β`` gives the event
  ``X`` with ``P(X = 1) = α / (β + γ)``.
* Lemma 3.8 — output the straddler's other sample ``R1`` when ``R1`` is active
  and ``X = 1``, otherwise a uniform sample ``R2`` of the suffix ``B2``; the
  result is uniform over the ``β + γ`` active elements.

All three steps cost O(1) time and memory and consume only stored quantities
(``Q1``, ``R1``, timestamps) plus fresh coins of *known* bias.
"""

from __future__ import annotations

import random
from typing import Callable

from ..rng import bernoulli
from .bucket_structure import BucketStructure
from .tracking import SampleCandidate

__all__ = ["generate_y", "generate_x", "combine_straddler_and_suffix"]


def generate_y(
    straddler: BucketStructure,
    suffix_width: int,
    rng: random.Random,
) -> SampleCandidate:
    """Lemma 3.6: a non-uniform random element ``Y`` of the straddling bucket.

    Parameters
    ----------
    straddler:
        The bucket structure ``BS(a, b)`` whose first element is expired; its
        stored ``Q`` sample supplies the base randomness.
    suffix_width:
        ``β = |B2|``, the number of elements covered by the suffix
        decomposition (all of them active).
    rng:
        Source for the auxiliary coin ``H_i``.

    Returns the chosen element (as a candidate record): either the ``Q``
    sample's element ``p_{b-i}`` (kept with probability
    ``α·β / ((β+i)(β+i-1))``) or the bucket's first element ``p_a``.
    """
    alpha = straddler.width
    beta = int(suffix_width)
    if beta <= 0:
        raise ValueError("suffix width must be positive")
    q_sample = straddler.q_sample
    # The paper indexes elements of B(a, b) from the right: p_{b-i}, 1 <= i <= α.
    offset = straddler.end - q_sample.index
    if offset < 1 or offset > alpha:
        raise ValueError(
            f"Q sample index {q_sample.index} lies outside bucket [{straddler.start}, {straddler.end})"
        )
    if offset < alpha:
        keep_probability = (alpha * beta) / ((beta + offset) * (beta + offset - 1))
        if bernoulli(rng, keep_probability):
            return q_sample
    return straddler.first_candidate()


def generate_x(
    straddler: BucketStructure,
    suffix_width: int,
    now: float,
    t0: float,
    rng: random.Random,
) -> bool:
    """Lemma 3.7: an event of (unknown) probability ``α / (β + γ)``.

    ``γ`` — the number of active elements inside the straddling bucket — never
    appears in the computation: the expiry status of ``Y`` encodes it.
    Requires ``α <= β`` (guaranteed by the Lemma 3.5 invariant), so that the
    auxiliary coin bias ``α/β`` is a valid probability.
    """
    alpha = straddler.width
    beta = int(suffix_width)
    if alpha > beta:
        raise ValueError(f"Lemma 3.7 requires |B1| <= |B2|, got alpha={alpha}, beta={beta}")
    y = generate_y(straddler, beta, rng)
    y_expired = (now - y.timestamp) >= t0
    if not y_expired:
        return False
    return bernoulli(rng, alpha / beta)


def combine_straddler_and_suffix(
    straddler: BucketStructure,
    suffix_width: int,
    draw_suffix_sample: Callable[[], SampleCandidate],
    now: float,
    t0: float,
    rng: random.Random,
) -> SampleCandidate:
    """Lemma 3.8: a uniform sample of all active elements.

    Combines the straddling bucket's ``R1`` sample (taken when it is active
    and the implicit event ``X`` fires) with a uniform sample ``R2`` of the
    covered suffix, drawn lazily via ``draw_suffix_sample`` (only called when
    needed, keeping the procedure O(1) beyond the suffix draw).
    """
    x = generate_x(straddler, suffix_width, now, t0, rng)
    r1 = straddler.r_sample
    r1_active = (now - r1.timestamp) < t0
    if r1_active and x:
        return r1
    return draw_suffix_sample()
