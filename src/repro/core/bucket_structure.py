"""Bucket structures — the unit of the covering decomposition (§3.1).

A bucket ``B(x, y)`` is the set of stream elements with indexes in
``[x, y-1]``.  A *bucket structure* ``BS(x, y)`` is the constant-size summary
the timestamp algorithms keep for such a bucket:

    ``{p_x, x, y, T(p_x), R_{x,y}, Q_{x,y}, r, q}``

i.e. the bucket's first element and timestamp, its boundaries, and two
independent uniform random samples ``R`` and ``Q`` of the bucket together with
the indexes of the picked elements.  ``R`` is used to build the output sample
(Lemma 3.8); ``Q`` fuels the implicit-event generation (Lemmas 3.6–3.7);
keeping them independent is what makes the final combination uniform.

Two bucket structures of equal width can be *merged* (used by the ``Incr``
operator): the merged sample is either constituent's sample with probability
1/2, which is again uniform because the widths are equal.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, Optional

from ..memory import MemoryMeter, WORD_MODEL
from .serialization import decode_candidate, encode_candidate, require_state_fields
from .tracking import CandidateObserver, SampleCandidate

__all__ = ["BucketStructure"]


class BucketStructure:
    """The summary ``BS(start, end)`` of bucket ``B(start, end)`` (elements
    ``start .. end-1``)."""

    __slots__ = ("start", "end", "first_value", "first_timestamp", "r_sample", "q_sample")

    def __init__(
        self,
        start: int,
        end: int,
        first_value: Any,
        first_timestamp: float,
        r_sample: SampleCandidate,
        q_sample: SampleCandidate,
    ) -> None:
        if end <= start:
            raise ValueError(f"bucket must be non-empty: start={start}, end={end}")
        self.start = int(start)
        self.end = int(end)
        self.first_value = first_value
        self.first_timestamp = float(first_timestamp)
        self.r_sample = r_sample
        self.q_sample = q_sample

    # -- constructors --------------------------------------------------------

    @classmethod
    def singleton(
        cls,
        value: Any,
        index: int,
        timestamp: float,
        observer: Optional[CandidateObserver] = None,
    ) -> "BucketStructure":
        """``BS(index, index+1)``: a bucket holding exactly one element, whose
        R and Q samples are necessarily that element."""
        r_candidate = SampleCandidate(value=value, index=index, timestamp=timestamp)
        q_candidate = SampleCandidate(value=value, index=index, timestamp=timestamp)
        if observer is not None:
            observer.on_select(r_candidate)
            observer.on_select(q_candidate)
        return cls(
            start=index,
            end=index + 1,
            first_value=value,
            first_timestamp=timestamp,
            r_sample=r_candidate,
            q_sample=q_candidate,
        )

    @classmethod
    def merge_fast(
        cls,
        left: "BucketStructure",
        right: "BucketStructure",
        r_sample: SampleCandidate,
        q_sample: SampleCandidate,
    ) -> "BucketStructure":
        """Merge two adjacent equal-width buckets whose R/Q samples the caller
        has already chosen (the batched ingest path draws the coins itself).

        Skips the adjacency/width validation — the ``Incr`` cascade only
        merges buckets Lemma 3.4 proves adjacent and equal-width — and the
        observer notifications (batched ingest only runs observer-free).
        """
        bucket = cls.__new__(cls)
        bucket.start = left.start
        bucket.end = right.end
        bucket.first_value = left.first_value
        bucket.first_timestamp = left.first_timestamp
        bucket.r_sample = r_sample
        bucket.q_sample = q_sample
        return bucket

    @classmethod
    def merge(
        cls,
        left: "BucketStructure",
        right: "BucketStructure",
        rng: random.Random,
        observer: Optional[CandidateObserver] = None,
    ) -> "BucketStructure":
        """Merge two adjacent, equal-width bucket structures into one.

        Implements the unification step of the ``Incr`` operator: because
        ``|B(a,c)| == |B(c,d)|``, picking either constituent's uniform sample
        with probability 1/2 yields a uniform sample of ``B(a,d)``.  The R and
        Q choices use independent coins so the merged samples stay independent.
        """
        if left.end != right.start:
            raise ValueError(f"buckets are not adjacent: {left} and {right}")
        if left.width != right.width:
            raise ValueError(
                f"only equal-width buckets may be merged: widths {left.width} and {right.width}"
            )
        keep_left_r = rng.random() < 0.5
        keep_left_q = rng.random() < 0.5
        r_sample = left.r_sample if keep_left_r else right.r_sample
        q_sample = left.q_sample if keep_left_q else right.q_sample
        if observer is not None:
            if not keep_left_r:
                observer.on_discard(left.r_sample)
            else:
                observer.on_discard(right.r_sample)
            if not keep_left_q:
                observer.on_discard(left.q_sample)
            else:
                observer.on_discard(right.q_sample)
        return cls(
            start=left.start,
            end=right.end,
            first_value=left.first_value,
            first_timestamp=left.first_timestamp,
            r_sample=r_sample,
            q_sample=q_sample,
        )

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot: boundaries, first element, and the R/Q samples."""
        return {
            "start": self.start,
            "end": self.end,
            "first_value": self.first_value,
            "first_timestamp": self.first_timestamp,
            "r_sample": encode_candidate(self.r_sample),
            "q_sample": encode_candidate(self.q_sample),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "BucketStructure":
        """Rebuild a bucket structure captured by :meth:`state_dict`."""
        require_state_fields(
            state,
            ("start", "end", "first_value", "first_timestamp", "r_sample", "q_sample"),
            "BucketStructure",
        )
        return cls(
            start=int(state["start"]),
            end=int(state["end"]),
            first_value=state["first_value"],
            first_timestamp=float(state["first_timestamp"]),
            r_sample=decode_candidate(state["r_sample"]),
            q_sample=decode_candidate(state["q_sample"]),
        )

    # -- geometry ---------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of stream elements summarised by this structure."""
        return self.end - self.start

    def covers(self, index: int) -> bool:
        """Whether the element with the given stream index lies in this bucket."""
        return self.start <= index < self.end

    # -- expiry -------------------------------------------------------------------

    def first_expired(self, now: float, t0: float) -> bool:
        """Whether the bucket's first element has expired at time ``now``."""
        return now - self.first_timestamp >= t0

    # -- bookkeeping -----------------------------------------------------------------

    def first_candidate(self) -> SampleCandidate:
        """The bucket's first element ``p_start`` as a candidate record
        (needed by Lemma 3.6, where ``Y`` may land on ``p_a``)."""
        return SampleCandidate(
            value=self.first_value, index=self.start, timestamp=self.first_timestamp
        )

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield self.r_sample
        yield self.q_sample

    def discard(self, observer: Optional[CandidateObserver]) -> None:
        """Notify the observer that this structure's samples are being dropped."""
        if observer is not None:
            observer.on_discard(self.r_sample)
            observer.on_discard(self.q_sample)

    def memory_words(self) -> int:
        """Footprint under the paper's model: first element + two boundaries +
        timestamp + the two stored samples (value, index, timestamp each)."""
        meter = MemoryMeter(WORD_MODEL)
        meter.add_elements()  # p_x
        meter.add_indexes(2)  # x, y
        meter.add_timestamps()  # T(p_x)
        meter.add_elements(2).add_indexes(2).add_timestamps(2)  # R and Q samples
        return meter.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BS({self.start},{self.end}; first_t={self.first_timestamp}, "
            f"r@{self.r_sample.index}, q@{self.q_sample.index})"
        )
