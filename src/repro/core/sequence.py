"""Optimal sampling from sequence-based (fixed-size) sliding windows.

Implements Section 2 of the paper — the *equivalent-width partition* method:

* the stream is (logically) partitioned into disjoint buckets
  ``B(i*n, (i+1)*n)`` of exactly the window size ``n``;
* one reservoir sample is maintained per bucket that can still matter (the
  most recent *full* bucket, called the *active* bucket ``U``, and the bucket
  currently being filled, the *partial* bucket ``V``);
* the window sample is stitched from the two bucket samples:

  - with replacement (§2.1, Theorem 2.1): output the active bucket's sample if
    it has not expired, otherwise the partial bucket's sample;
  - without replacement (§2.2, Theorem 2.2): keep the non-expired part of the
    active bucket's k-sample and top it up with a uniform subsample of the
    partial bucket's k-sample.

Both samplers use a deterministic Θ(k) words — the paper's optimal bound —
and never fail: a valid sample is available whenever the window is non-empty.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..exceptions import ConfigurationError, EmptyWindowError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng, spawn
from .base import SequenceWindowSampler, check_batch_lengths, init_sampler_kernel
from .reservoir import ReservoirWithoutReplacement, SingleReservoir
from .serialization import (
    decode_candidate,
    decode_optional_candidate,
    decode_rng_into,
    encode_candidate,
    encode_optional_candidate,
    encode_rng,
    require_state_fields,
)
from .tracking import CandidateObserver, SampleCandidate

__all__ = ["SequenceSamplerWR", "SequenceSamplerWOR"]


class _SingleSampleLane:
    """The state of one independent single-sample scheme of §2.1.

    Holds at most two candidates: the final sample of the most recent full
    bucket (``active_sample``) and the running reservoir over the bucket
    currently being filled (``partial``).
    """

    __slots__ = ("rng", "observer", "active_sample", "active_bucket", "partial", "partial_bucket")

    def __init__(self, rng: random.Random, observer: Optional[CandidateObserver]) -> None:
        self.rng = rng
        self.observer = observer
        self.active_sample: Optional[SampleCandidate] = None
        self.active_bucket: Optional[int] = None
        self.partial = SingleReservoir(rng=rng, observer=observer)
        self.partial_bucket: Optional[int] = None

    def roll_over(self, new_bucket: int) -> None:
        """The partial bucket completed; it becomes the active bucket."""
        if self.active_sample is not None and self.observer is not None:
            self.observer.on_discard(self.active_sample)
        self.active_sample = self.partial.candidate
        self.active_bucket = self.partial_bucket
        # A fresh reservoir for the new bucket.  The observer must NOT see the
        # retained active candidate as discarded, so we do not reset().
        self.partial = SingleReservoir(rng=self.rng, observer=self.observer)
        self.partial_bucket = new_bucket

    def offer(self, value: Any, index: int, timestamp: float, bucket: int) -> None:
        if self.partial_bucket is None:
            self.partial_bucket = bucket
        elif bucket != self.partial_bucket:
            self.roll_over(bucket)
        self.partial.offer(value, index, timestamp)

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        if self.active_sample is not None:
            yield self.active_sample
        yield from self.partial.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        if self.active_sample is not None:
            meter.add_elements().add_indexes().add_timestamps()
        meter.add_counters()  # active bucket id
        meter.add_words(self.partial.memory_words())
        meter.add_counters()  # partial bucket id
        return meter.total

    def state_dict(self) -> Dict[str, Any]:
        # The lane's generator is the partial reservoir's generator (the same
        # object), so it travels inside the reservoir's snapshot.
        return {
            "active_sample": encode_optional_candidate(self.active_sample),
            "active_bucket": self.active_bucket,
            "partial": self.partial.state_dict(),
            "partial_bucket": self.partial_bucket,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        require_state_fields(
            state, ("active_sample", "active_bucket", "partial", "partial_bucket"), "_SingleSampleLane"
        )
        self.active_sample = decode_optional_candidate(state["active_sample"])
        self.active_bucket = None if state["active_bucket"] is None else int(state["active_bucket"])
        self.partial = SingleReservoir(rng=self.rng, observer=self.observer)
        self.partial.load_state_dict(state["partial"])
        self.partial_bucket = None if state["partial_bucket"] is None else int(state["partial_bucket"])


class SequenceSamplerWR(SequenceWindowSampler):
    """k samples *with replacement* from a fixed-size window (Theorem 2.1).

    The sampler maintains ``k`` independent copies of the single-sample scheme
    ("to create a k-random sample, we repeat the procedure k times,
    independently"), for a total of Θ(k) memory words — deterministically, at
    every point of the stream.
    """

    algorithm = "boz-seq-wr"
    with_replacement = True
    deterministic_memory = True

    def __init__(
        self,
        n: int,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        fast: bool = False,
        kernel: str = "python",
    ) -> None:
        super().__init__(n, k, observer)
        root = ensure_rng(rng)
        self._fast = bool(fast)
        self._lanes = [_SingleSampleLane(spawn(root, lane), observer) for lane in range(self._k)]
        self._query_rng = spawn(root, self._k + 1)
        # Resolved last: the numpy generator seed is drawn from the root
        # *after* every spawn, so kernel choice never perturbs the lanes.
        self._kernel, self._np_gen = init_sampler_kernel(kernel, root)

    # -- ingestion ----------------------------------------------------------

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        ts = float(timestamp) if timestamp is not None else float(index)
        bucket = index // self._n
        for lane in self._lanes:
            lane.offer(value, index, ts, bucket)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def process_batch(
        self,
        values: Sequence[Any],
        timestamps: Optional[Sequence[Optional[float]]] = None,
    ) -> int:
        """Batched :meth:`append`: lane-major, with per-bucket slices.

        Each lane owns an independent generator, so feeding the whole batch
        through lane 0, then lane 1, ... consumes every generator exactly as
        the element-major ``append`` loop would — the default path is
        bit-identical to it.  With ``fast=True`` each lane's reservoir draws
        geometric skips instead of per-element coins (see
        :meth:`SingleReservoir.offer_slice`).  Observer-carrying samplers
        fall back to the per-element loop so arrival notifications keep
        their element-major order.
        """
        check_batch_lengths(values, timestamps)
        count = len(values)
        if count == 0:
            return 0
        if self._observer is not None:
            return super().process_batch(values, timestamps)
        fast = self._fast
        if fast and self._np_gen is not None:
            # Vectorized kernel: whole-batch closed-form lane updates
            # (distributionally exact, like the python fast path; see
            # repro.engine.kernels.seq_wr_process_batch).
            from ..engine.kernels import seq_wr_process_batch

            seq_wr_process_batch(self, values, timestamps, count)
            return count
        n = self._n
        start = self._arrivals
        for lane in self._lanes:
            position = 0
            while position < count:
                index = start + position
                bucket = index // n
                if lane.partial_bucket is None:
                    lane.partial_bucket = bucket
                elif bucket != lane.partial_bucket:
                    lane.roll_over(bucket)
                segment_end = min(count, position + n - index % n)
                lane.partial.offer_slice(values, start, position, segment_end, timestamps, fast)
                position = segment_end
        self._arrivals = start + count
        return count

    # -- sampling -----------------------------------------------------------

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        return [self._sample_lane(lane) for lane in self._lanes]

    def _sample_lane(self, lane: _SingleSampleLane) -> SampleCandidate:
        arrivals = self._arrivals
        window_start = max(0, arrivals - self._n)
        in_partial = arrivals % self._n
        if in_partial == 0 or arrivals <= self._n:
            # The window coincides with the bucket currently held by the
            # partial reservoir (either the bucket just completed, or the very
            # first — still filling — bucket).
            candidate = lane.partial.candidate
            if candidate is None:  # pragma: no cover - defensive; cannot happen
                raise EmptyWindowError("internal error: empty partial reservoir")
            return candidate
        active = lane.active_sample
        if active is not None and active.index >= window_start:
            return active
        candidate = lane.partial.candidate
        if candidate is None:  # pragma: no cover - defensive; cannot happen
            raise EmptyWindowError("internal error: empty partial reservoir")
        return candidate

    # -- introspection --------------------------------------------------------

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for lane in self._lanes:
            yield from lane.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # n and k
        meter.add_counters()  # arrival counter
        for lane in self._lanes:
            meter.add_words(lane.memory_words())
        return meter.total

    # -- checkpointing --------------------------------------------------------

    def _encode_state(self) -> Dict[str, Any]:
        return {
            "n": self._n,
            "lanes": [lane.state_dict() for lane in self._lanes],
            "query_rng": encode_rng(self._query_rng),
        }

    def _decode_state(self, payload: Dict[str, Any]) -> None:
        require_state_fields(payload, ("n", "lanes", "query_rng"), type(self).__name__)
        if int(payload["n"]) != self._n:
            raise ConfigurationError(f"snapshot has n={payload['n']}, sampler has n={self._n}")
        if len(payload["lanes"]) != len(self._lanes):
            raise ConfigurationError(
                f"snapshot has {len(payload['lanes'])} lanes, sampler has {len(self._lanes)}"
            )
        for lane, lane_state in zip(self._lanes, payload["lanes"]):
            lane.load_state_dict(lane_state)
        decode_rng_into(self._query_rng, payload["query_rng"])


class SequenceSamplerWOR(SequenceWindowSampler):
    """k samples *without replacement* from a fixed-size window (Theorem 2.2).

    A single pair of bucket k-reservoirs suffices.  At query time, if ``i``
    candidates of the active bucket's k-sample have expired, they are replaced
    by a uniform ``i``-subsample of the partial bucket's k-sample — the paper
    proves the result is a uniform k-subset of the window.  Memory is Θ(k)
    words, deterministically.

    When the window holds fewer than ``k`` elements the sampler returns all of
    them (``allow_partial=True``, the default) or raises
    :class:`~repro.exceptions.InsufficientSampleError`.
    """

    algorithm = "boz-seq-wor"
    with_replacement = False
    deterministic_memory = True

    def __init__(
        self,
        n: int,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        allow_partial: bool = True,
        fast: bool = False,
        kernel: str = "python",
    ) -> None:
        super().__init__(n, k, observer)
        root = ensure_rng(rng)
        self._allow_partial = bool(allow_partial)
        self._fast = bool(fast)
        self._reservoir_rng = spawn(root, 0)
        self._query_rng = spawn(root, 1)
        # Resolved after both spawns so kernel choice never perturbs them.
        self._kernel, self._np_gen = init_sampler_kernel(kernel, root)
        self._active_slots: List[SampleCandidate] = []
        self._active_bucket: Optional[int] = None
        self._partial = ReservoirWithoutReplacement(self._k, rng=self._reservoir_rng, observer=observer)
        self._partial_bucket: Optional[int] = None

    # -- ingestion -------------------------------------------------------------

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        ts = float(timestamp) if timestamp is not None else float(index)
        bucket = index // self._n
        if self._partial_bucket is None:
            self._partial_bucket = bucket
        elif bucket != self._partial_bucket:
            self._roll_over(bucket)
        self._partial.offer(value, index, ts)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def process_batch(
        self,
        values: Sequence[Any],
        timestamps: Optional[Sequence[Optional[float]]] = None,
    ) -> int:
        """Batched :meth:`append` over per-bucket slices of the batch.

        The default path is bit-identical to the ``append`` loop (same coins,
        same victims, same generator position); ``fast=True`` switches the
        bucket reservoir to skip-counting (see
        :meth:`ReservoirWithoutReplacement.offer_slice`).  Observer-carrying
        samplers fall back to the per-element loop.
        """
        check_batch_lengths(values, timestamps)
        count = len(values)
        if count == 0:
            return 0
        if self._observer is not None:
            return super().process_batch(values, timestamps)
        fast = self._fast
        if fast and self._np_gen is not None:
            # Vectorized kernel: one hypergeometric split per reservoir
            # transition instead of per-element/per-skip loops (see
            # repro.engine.kernels.seq_wor_process_batch).
            from ..engine.kernels import seq_wor_process_batch

            seq_wor_process_batch(self, values, timestamps, count)
            return count
        n = self._n
        start = self._arrivals
        position = 0
        while position < count:
            index = start + position
            bucket = index // n
            if self._partial_bucket is None:
                self._partial_bucket = bucket
            elif bucket != self._partial_bucket:
                self._roll_over(bucket)
            segment_end = min(count, position + n - index % n)
            self._partial.offer_slice(values, start, position, segment_end, timestamps, fast)
            position = segment_end
        self._arrivals = start + count
        return count

    def _roll_over(self, new_bucket: int) -> None:
        if self._observer is not None:
            for candidate in self._active_slots:
                self._observer.on_discard(candidate)
        self._active_slots = self._partial.sample()
        self._active_bucket = self._partial_bucket
        self._partial = ReservoirWithoutReplacement(
            self._k, rng=self._reservoir_rng, observer=self._observer
        )
        self._partial_bucket = new_bucket

    # -- sampling ---------------------------------------------------------------

    def sample_candidates(self) -> List[SampleCandidate]:
        if self._arrivals == 0:
            raise EmptyWindowError("no element has arrived yet")
        candidates = self._select_candidates()
        if len(candidates) < self._k and not self._allow_partial:
            from ..exceptions import InsufficientSampleError

            raise InsufficientSampleError(
                f"window holds only {len(candidates)} elements, k={self._k} requested"
            )
        return candidates

    def _select_candidates(self) -> List[SampleCandidate]:
        arrivals = self._arrivals
        window_start = max(0, arrivals - self._n)
        in_partial = arrivals % self._n
        if in_partial == 0 or arrivals <= self._n:
            # Window equals the bucket held by the partial reservoir.
            return self._partial.sample()
        surviving = [candidate for candidate in self._active_slots if candidate.index >= window_start]
        expired_count = len(self._active_slots) - len(surviving)
        if expired_count == 0:
            return list(self._active_slots)
        replacement = self._partial.subsample(expired_count, rng=self._query_rng)
        return surviving + replacement

    # -- introspection -------------------------------------------------------------

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        yield from self._active_slots
        yield from self._partial.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # n and k
        meter.add_counters()  # arrival counter
        held = len(self._active_slots)
        meter.add_elements(held).add_indexes(held).add_timestamps(held)
        meter.add_counters(2)  # bucket ids
        meter.add_words(self._partial.memory_words())
        return meter.total

    # -- checkpointing --------------------------------------------------------------

    def _encode_state(self) -> Dict[str, Any]:
        return {
            "n": self._n,
            "active_slots": [encode_candidate(candidate) for candidate in self._active_slots],
            "active_bucket": self._active_bucket,
            "partial": self._partial.state_dict(),
            "partial_bucket": self._partial_bucket,
            "query_rng": encode_rng(self._query_rng),
        }

    def _decode_state(self, payload: Dict[str, Any]) -> None:
        require_state_fields(
            payload,
            ("n", "active_slots", "active_bucket", "partial", "partial_bucket", "query_rng"),
            type(self).__name__,
        )
        if int(payload["n"]) != self._n:
            raise ConfigurationError(f"snapshot has n={payload['n']}, sampler has n={self._n}")
        self._active_slots = [decode_candidate(encoded) for encoded in payload["active_slots"]]
        self._active_bucket = (
            None if payload["active_bucket"] is None else int(payload["active_bucket"])
        )
        # The partial reservoir shares ``_reservoir_rng``; loading its snapshot
        # also restores that shared generator's position.
        self._partial = ReservoirWithoutReplacement(
            self._k, rng=self._reservoir_rng, observer=self._observer
        )
        self._partial.load_state_dict(payload["partial"])
        self._partial_bucket = (
            None if payload["partial_bucket"] is None else int(payload["partial_bucket"])
        )
        decode_rng_into(self._query_rng, payload["query_rng"])
