"""Snapshot encoding helpers shared by every checkpointable structure.

Samplers expose ``state_dict()`` / ``load_state_dict()`` (mirroring the
familiar torch convention) so that a keyed engine can checkpoint thousands of
per-key samplers and a restarted process can resume with *identical* sample
state — including the exact position of every pseudo-random generator, so the
restored sampler's future coin flips match the original's flip for flip.

The helpers below encode the two primitives every snapshot is built from:

* ``random.Random`` generator states (a Mersenne-Twister state vector), and
* :class:`~repro.core.tracking.SampleCandidate` records, including the
  observer scratch ``state`` dict so application estimators (occurrence
  counters, triangle watchers) survive a restore.

Encoded states are plain Python containers (lists, dicts, numbers, plus the
stream element values themselves), so a snapshot can be pickled, msgpacked or
JSON-encoded by whatever persistence layer sits on top.  Observers themselves
are *not* part of a snapshot — they are wiring, reattached by the caller that
rebuilds the sampler — only the per-candidate state they accumulated is.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..exceptions import ConfigurationError
from .tracking import SampleCandidate

__all__ = [
    "STATE_FORMAT",
    "encode_rng",
    "decode_rng_into",
    "encode_candidate",
    "decode_candidate",
    "encode_optional_candidate",
    "decode_optional_candidate",
    "require_state_fields",
]

#: Version tag stamped into every ``state_dict`` (bump on incompatible change).
STATE_FORMAT = 1


def encode_rng(rng: random.Random) -> List[Any]:
    """Encode a generator's internal state as plain lists."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def decode_rng_into(rng: random.Random, encoded: List[Any]) -> None:
    """Restore a generator's state in place from :func:`encode_rng` output."""
    try:
        version, internal, gauss_next = encoded
        rng.setstate((version, tuple(internal), gauss_next))
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"invalid rng state in snapshot: {error}") from error


def encode_candidate(candidate: SampleCandidate) -> Dict[str, Any]:
    """Encode a retained candidate, including its observer scratch state."""
    return {
        "value": candidate.value,
        "index": candidate.index,
        "timestamp": candidate.timestamp,
        "state": dict(candidate.state),
    }


def decode_candidate(encoded: Dict[str, Any]) -> SampleCandidate:
    """Rebuild a candidate from :func:`encode_candidate` output."""
    return SampleCandidate(
        value=encoded["value"],
        index=int(encoded["index"]),
        timestamp=float(encoded["timestamp"]),
        state=dict(encoded.get("state", {})),
    )


def encode_optional_candidate(candidate: Optional[SampleCandidate]) -> Optional[Dict[str, Any]]:
    return None if candidate is None else encode_candidate(candidate)


def decode_optional_candidate(encoded: Optional[Dict[str, Any]]) -> Optional[SampleCandidate]:
    return None if encoded is None else decode_candidate(encoded)


def require_state_fields(state: Dict[str, Any], fields: tuple, context: str) -> None:
    """Validate that a snapshot dict carries every expected field."""
    if not isinstance(state, dict):
        raise ConfigurationError(f"{context}: snapshot must be a dict, got {type(state).__name__}")
    missing = [name for name in fields if name not in state]
    if missing:
        raise ConfigurationError(f"{context}: snapshot is missing fields {missing}")
