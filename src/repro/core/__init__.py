"""The paper's algorithms: optimal sampling from sliding windows.

Public entry points
-------------------
* :class:`SequenceSamplerWR` / :class:`SequenceSamplerWOR` — Theorems 2.1/2.2,
  Θ(k) words for fixed-size windows.
* :class:`TimestampSamplerWR` / :class:`TimestampSamplerWOR` — Theorems 3.9/4.4,
  Θ(k log n) words for timestamp-based windows.
* :func:`sliding_window_sampler` — factory covering the paper's algorithms and
  every baseline.
* The building blocks (reservoirs, bucket structures, covering decompositions,
  implicit events, the black-box reduction) are exported for reuse and for the
  white-box tests that verify each lemma separately.
"""

from .base import SequenceWindowSampler, TimestampWindowSampler, WindowSampler
from .bucket_structure import BucketStructure
from .covering import CoveringDecomposition, WindowCoverage, canonical_boundaries, floor_log2
from .facade import ALGORITHMS, algorithm_catalog, sliding_window_sampler
from .implicit_events import combine_straddler_and_suffix, generate_x, generate_y
from .reduction import build_k_sample, extend_without_replacement
from .reservoir import ReservoirWithoutReplacement, SingleReservoir
from .sequence import SequenceSamplerWOR, SequenceSamplerWR
from .timestamp import TimestampSamplerWR
from .timestamp_wor import TimestampSamplerWOR
from .tracking import CandidateObserver, NullObserver, OccurrenceCounter, SampleCandidate

__all__ = [
    "WindowSampler",
    "SequenceWindowSampler",
    "TimestampWindowSampler",
    "SequenceSamplerWR",
    "SequenceSamplerWOR",
    "TimestampSamplerWR",
    "TimestampSamplerWOR",
    "SingleReservoir",
    "ReservoirWithoutReplacement",
    "BucketStructure",
    "CoveringDecomposition",
    "WindowCoverage",
    "canonical_boundaries",
    "floor_log2",
    "generate_y",
    "generate_x",
    "combine_straddler_and_suffix",
    "extend_without_replacement",
    "build_k_sample",
    "SampleCandidate",
    "CandidateObserver",
    "NullObserver",
    "OccurrenceCounter",
    "sliding_window_sampler",
    "algorithm_catalog",
    "ALGORITHMS",
]
