"""Covering decompositions and their maintenance (§3.2, Lemmas 3.4 and 3.5).

A *covering decomposition* ``ζ(a, b)`` is an ordered list of bucket structures
that together cover the index range ``[a, b]``, defined inductively
(Definition 3.1):

    ``ζ(b, b) = ⟨BS(b, b+1)⟩``
    ``ζ(a, b) = ⟨BS(a, c), ζ(c, b)⟩``   with ``c = a + 2^(⌊log(b+1-a)⌋ - 1)``

so the bucket widths shrink roughly geometrically towards the most recent
element and there are ``O(log(b - a))`` of them.  The ``Incr`` operator
extends ``ζ(a, b)`` to ``ζ(a, b+1)`` when element ``p_{b+1}`` arrives, merging
the first two buckets when the widths call for it (Lemma 3.4 proves the result
is exactly the canonical decomposition).

:class:`WindowCoverage` implements the Lemma 3.5 maintenance automaton on top:
at any time it holds either

1. ``ζ(l(t), N(t))`` — a decomposition starting exactly at the earliest active
   element, or
2. a *straddling* bucket structure ``BS(y, z)`` (whose first element is
   expired but which may contain active elements) followed by
   ``ζ(z, N(t))``, with the key invariant ``z - y <= N(t) + 1 - z`` needed by
   the implicit-event generation of §3.3.

Both states use ``O(log n(t))`` memory words.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import EmptyWindowError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import ensure_rng
from ._cascade import CoinSlab, merge_cascade, merge_cascade_fast
from .bucket_structure import BucketStructure
from .serialization import decode_rng_into, encode_rng, require_state_fields
from .tracking import CandidateObserver, SampleCandidate

__all__ = [
    "floor_log2",
    "canonical_boundaries",
    "estimate_active_count",
    "CoveringDecomposition",
    "WindowCoverage",
]


def estimate_active_count(coverage: "WindowCoverage", now: float) -> int:
    """Estimated number of active elements ``n(t)`` from one coverage automaton.

    Exact in case 1 of Lemma 3.5 (the decomposition starts at the earliest
    active element); in case 2 the straddling bucket holds an unknown number
    of active elements, so half its width is added — the error is at most
    half the straddler width, itself at most half the total.  Exact tracking
    is impossible in sublinear space for timestamp windows; this bound is the
    per-key weight used by the engine's merged cross-key estimates.
    """
    if now != float("-inf"):
        coverage.advance_time(now)
    if coverage.is_empty:
        return 0
    count = coverage.decomposition.covered_width
    if coverage.straddler is not None:
        count += coverage.straddler.width // 2
    return count


def floor_log2(x: int) -> int:
    """``⌊log2(x)⌋`` for a positive integer ``x``."""
    if x <= 0:
        raise ValueError("floor_log2 requires a positive integer")
    return x.bit_length() - 1


def canonical_boundaries(a: int, b: int) -> List[Tuple[int, int]]:
    """The bucket boundaries of the canonical decomposition ``ζ(a, b)``.

    Returns the list of ``(start, end)`` pairs prescribed by Definition 3.1;
    used by tests to check that ``Incr`` maintains exactly this structure
    (Lemma 3.4).
    """
    if b < a:
        raise ValueError("require a <= b")
    pairs: List[Tuple[int, int]] = []
    current = a
    while current < b:
        step = 2 ** (floor_log2(b + 1 - current) - 1)
        pairs.append((current, current + step))
        current += step
    pairs.append((b, b + 1))
    return pairs


class CoveringDecomposition:
    """A covering decomposition ``ζ(a, b)`` with its ``Incr`` operator.

    The decomposition is stored as a list of :class:`BucketStructure`, oldest
    first.  ``incr`` must be called with consecutive stream elements
    (index ``covered_end + 1``); ``Incr`` costs ``O(log(b - a))`` time.
    """

    def __init__(self, rng: random.Random, observer: Optional[CandidateObserver] = None) -> None:
        self._rng = rng
        self._observer = observer
        self._buckets: List[BucketStructure] = []

    # -- construction ---------------------------------------------------------

    @classmethod
    def fresh(
        cls,
        value: Any,
        index: int,
        timestamp: float,
        rng: random.Random,
        observer: Optional[CandidateObserver] = None,
    ) -> "CoveringDecomposition":
        """``ζ(index, index)``: a decomposition holding a single element."""
        decomposition = cls(rng, observer)
        decomposition._buckets = [BucketStructure.singleton(value, index, timestamp, observer)]
        return decomposition

    @classmethod
    def from_buckets(
        cls,
        buckets: List[BucketStructure],
        rng: random.Random,
        observer: Optional[CandidateObserver] = None,
    ) -> "CoveringDecomposition":
        """Wrap an existing (already canonical) suffix of bucket structures."""
        decomposition = cls(rng, observer)
        decomposition._buckets = list(buckets)
        return decomposition

    # -- geometry --------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._buckets

    @property
    def buckets(self) -> List[BucketStructure]:
        """The bucket structures, oldest first (read-only view)."""
        return list(self._buckets)

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def covered_start(self) -> int:
        """Index ``a`` of the first covered element."""
        if not self._buckets:
            raise EmptyWindowError("decomposition is empty")
        return self._buckets[0].start

    @property
    def covered_end(self) -> int:
        """Index ``b`` of the last covered element (the newest stream element)."""
        if not self._buckets:
            raise EmptyWindowError("decomposition is empty")
        return self._buckets[-1].end - 1

    @property
    def covered_width(self) -> int:
        """Number of covered elements, ``b + 1 - a``."""
        return self.covered_end + 1 - self.covered_start

    def boundaries(self) -> List[Tuple[int, int]]:
        return [(bucket.start, bucket.end) for bucket in self._buckets]

    # -- the Incr operator --------------------------------------------------------

    def incr(self, value: Any, index: int, timestamp: float) -> None:
        """Extend ``ζ(a, b)`` to ``ζ(a, b+1)`` with the newly arrived element.

        Follows the inductive definition: walk the list front-to-back; at each
        level either keep the leading bucket (when ``⌊log(b+2-a)⌋`` does not
        change) or merge the two leading equal-width buckets; finally append a
        singleton bucket for the new element.
        """
        if not self._buckets:
            self._buckets = [BucketStructure.singleton(value, index, timestamp, self._observer)]
            return
        expected = self.covered_end + 1
        if index != expected:
            raise StreamOrderError(f"Incr expects element index {expected}, got {index}")
        new_bucket = BucketStructure.singleton(value, index, timestamp, self._observer)
        old = self._buckets
        result: List[BucketStructure] = []
        position = 0
        last_index = old[-1].start  # the paper's b: the last bucket is BS(b, b+1)
        while True:
            remaining = len(old) - position
            if remaining == 1:
                result.append(old[position])
                result.append(new_bucket)
                break
            a = old[position].start
            if floor_log2(last_index + 2 - a) == floor_log2(last_index + 1 - a):
                result.append(old[position])
                position += 1
            else:
                merged = BucketStructure.merge(
                    old[position], old[position + 1], self._rng, self._observer
                )
                result.append(merged)
                position += 2
        self._buckets = result

    # -- splitting (used by the Lemma 3.5 automaton) ----------------------------------

    def split_at_straddler(
        self, now: float, t0: float
    ) -> Tuple[Optional[BucketStructure], List[BucketStructure], List[BucketStructure]]:
        """Locate the unique bucket whose first element is expired while the
        next bucket's first element is active.

        Returns ``(straddler, discarded_prefix, suffix)`` where ``suffix`` is
        the (still canonical) decomposition that follows the straddler.
        Requires that the first bucket's first element is expired and the last
        bucket's first element is active.
        """
        if not self._buckets:
            raise EmptyWindowError("decomposition is empty")
        buckets = self._buckets
        if not buckets[0].first_expired(now, t0):
            return None, [], list(buckets)
        for position in range(len(buckets) - 1):
            if buckets[position].first_expired(now, t0) and not buckets[position + 1].first_expired(
                now, t0
            ):
                return (
                    buckets[position],
                    buckets[:position],
                    buckets[position + 1 :],
                )
        raise EmptyWindowError("all covered elements are expired")

    # -- sampling ----------------------------------------------------------------------

    def draw_uniform(self, rng: Optional[random.Random] = None) -> SampleCandidate:
        """A uniform sample of all covered elements.

        Chooses a bucket with probability proportional to its width and
        returns that bucket's ``R`` sample — uniform because each bucket's
        sample is uniform within the bucket and buckets are disjoint.
        """
        if not self._buckets:
            raise EmptyWindowError("decomposition is empty")
        chooser = rng if rng is not None else self._rng
        total = self.covered_width
        pick = chooser.randrange(total)
        running = 0
        for bucket in self._buckets:
            running += bucket.width
            if pick < running:
                return bucket.r_sample
        return self._buckets[-1].r_sample  # pragma: no cover - numerical safety net

    # -- bookkeeping -------------------------------------------------------------------

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for bucket in self._buckets:
            yield from bucket.iter_candidates()

    def discard_all(self) -> None:
        for bucket in self._buckets:
            bucket.discard(self._observer)
        self._buckets = []

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        for bucket in self._buckets:
            meter.add_words(bucket.memory_words())
        return meter.total

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot: the bucket structures, oldest first.

        The generator is owned by the enclosing :class:`WindowCoverage` (or
        sampler) and is serialised there, not here.
        """
        return {"buckets": [bucket.state_dict() for bucket in self._buckets]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        require_state_fields(state, ("buckets",), "CoveringDecomposition")
        self._buckets = [BucketStructure.from_state_dict(encoded) for encoded in state["buckets"]]

    def is_canonical(self) -> bool:
        """Whether the stored boundaries equal Definition 3.1's (test helper)."""
        if not self._buckets:
            return True
        return self.boundaries() == canonical_boundaries(self.covered_start, self.covered_end)

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoveringDecomposition({self.boundaries() if self._buckets else []})"


class WindowCoverage:
    """The Lemma 3.5 maintenance automaton for one independent sample.

    Feeds arriving elements into a covering decomposition and tracks window
    expiry, keeping either ``ζ(l(t), N(t))`` (case 1) or a straddling bucket
    plus ``ζ(z_t, N(t))`` (case 2).  Exposes the raw material needed by the
    §3.3 sampling rule: the straddler (if any) and the suffix decomposition.
    """

    def __init__(
        self,
        t0: float,
        rng: random.Random,
        observer: Optional[CandidateObserver] = None,
    ) -> None:
        if t0 <= 0:
            raise ValueError("window span t0 must be positive")
        self._t0 = float(t0)
        self._rng = ensure_rng(rng)
        self._observer = observer
        self._straddler: Optional[BucketStructure] = None
        self._decomposition = CoveringDecomposition(self._rng, observer)
        self._now = float("-inf")

    # -- state inspection -----------------------------------------------------------

    @property
    def t0(self) -> float:
        return self._t0

    @property
    def now(self) -> float:
        return self._now

    @property
    def straddler(self) -> Optional[BucketStructure]:
        return self._straddler

    @property
    def decomposition(self) -> CoveringDecomposition:
        return self._decomposition

    @property
    def is_empty(self) -> bool:
        """Whether no stored element is active (after the last refresh)."""
        return self._decomposition.is_empty

    @property
    def case(self) -> int:
        """1 or 2, matching Lemma 3.5's two states (0 when empty)."""
        if self._decomposition.is_empty:
            return 0
        return 2 if self._straddler is not None else 1

    def _expired(self, timestamp: float) -> bool:
        return self._now - timestamp >= self._t0

    # -- clock and ingestion ------------------------------------------------------------

    def advance_time(self, now: float) -> None:
        """Move the clock forward and apply the Lemma 3.5 expiry transitions."""
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        self._refresh()

    def observe(self, value: Any, index: int, timestamp: float) -> None:
        """Process the arrival of element ``p_index``.

        The element's timestamp advances the clock if it is ahead of it.  An
        element that is already expired on arrival (possible only in the
        delayed feeds of §4, and only while the coverage is empty) is skipped,
        exactly as prescribed by Lemma 4.1.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        self._refresh()
        if self._expired(timestamp):
            # Lemma 4.1: skip already-expired (delayed) elements; they can only
            # occur while no active element is stored.
            return
        if self._decomposition.is_empty:
            self._decomposition = CoveringDecomposition.fresh(
                value, index, timestamp, self._rng, self._observer
            )
        else:
            self._decomposition.incr(value, index, timestamp)

    def observe_batch(
        self,
        values: Sequence[Any],
        base_index: int,
        stamps: Sequence[float],
        clocks: Optional[Sequence[float]] = None,
        fast: bool = False,
    ) -> None:
        """Process a whole chunk of arrivals: element ``p`` has stream index
        ``base_index + p`` and timestamp ``stamps[p]``; ``clocks[p]`` (default
        ``stamps[p]``) is the clock value advanced *before* observing it — the
        delayed feeds of §4 observe old elements at the current arrival time.

        Semantically this is exactly ``advance_time(clocks[p])`` followed by
        ``observe(values[p], base_index + p, stamps[p])`` for every ``p``, but
        the per-element costs are amortised across the chunk:

        * **batched expiry** — the Lemma 3.5 transition can only fire once the
          clock passes the front bucket's first timestamp plus ``t0``, so the
          chunk pays one cached-threshold comparison per element and a full
          expiry scan only when the threshold is actually crossed (one scan
          per transition, not one per arrival);
        * **in-place ``Incr``** — the merge cascade mutates the bucket list
          directly instead of rebuilding it, and the "did ``⌊log(b+2-a)⌋``
          step?" test collapses to a single power-of-two bit trick per bucket;
        * observer/attribute lookups are hoisted out of the loop.

        With ``fast=False`` the generator is consumed exactly as the
        per-element path consumes it (two coins per merge, in cascade order),
        so the resulting state — buckets, straddler, clock *and* generator
        position — is bit-identical.  ``fast=True`` replaces the per-merge
        coins with skip-sampling (the counterpart of PR 4's reservoir fast
        path, specialised to the merge coin's ``p = 1/2``: the geometric skip
        between right-keeps is exactly the run length of a fair-coin stream,
        so one generator draw buys a whole slab of merge coins) and shares
        one candidate record between a fresh singleton's R and Q slots (they
        are deterministically the same element): distributionally exact,
        memoryless per-chunk redraws, but a different generator trajectory.

        Observer-carrying coverages fall back to the per-element path so the
        selection/discard callbacks keep firing.
        """
        count = len(values)
        if count == 0:
            return
        if self._observer is not None:
            clock_track = stamps if clocks is None else clocks
            for position in range(count):
                self.advance_time(clock_track[position])
                self.observe(values[position], base_index + position, stamps[position])
            return
        t0 = self._t0
        now = self._now
        rng_random = self._rng.random
        new_bucket = BucketStructure.__new__
        bucket_cls = BucketStructure
        candidate_cls = SampleCandidate
        buckets = self._decomposition._buckets
        # Cached expiry threshold: no Lemma 3.5 transition can fire while
        # ``now - front_first_ts < t0`` (the exact per-element comparison, so
        # float rounding matches the reference path bit for bit).
        front_ts = buckets[0].first_timestamp if buckets else math.inf
        # Fast-mode coin slab: each byte of ``randbytes`` output is one fair
        # merge coin (its high bit), so one generator call buys 512 coins.
        # The unconsumed tail is discarded at the end of the chunk, which is
        # exact because the coins are i.i.d.
        if fast:
            coins = CoinSlab(self._rng.randbytes)
        for position in range(count):
            ts = stamps[position]
            clock = ts if clocks is None else clocks[position]
            if clock > now:
                now = clock
            if now - front_ts >= t0:
                # Threshold crossed: run the full Lemma 3.5 transition (which
                # may re-anchor on a straddler or empty the decomposition),
                # then re-cache the bucket list and threshold.
                self._now = now
                self._refresh()
                buckets = self._decomposition._buckets
                front_ts = buckets[0].first_timestamp if buckets else math.inf
            if now - ts >= t0:
                # Lemma 4.1: a delayed element already expired on arrival is
                # skipped (only possible while nothing active is stored).
                continue
            value = values[position]
            index = base_index + position
            if buckets:
                # In-place Incr (Lemma 3.4).  The walk merges exactly where
                # ``⌊log(b+2-a)⌋`` steps — where ``b+2-a`` is a power of two —
                # and in a canonical decomposition those positions always form
                # a stride-2 run ending at the third-from-last bucket (pinned
                # exhaustively against the reference walk in
                # tests/test_covering_decomposition.py).  One O(1) probe of
                # that bucket therefore decides whether this arrival merges at
                # all; most arrivals reduce to a plain append.  ``b`` is the
                # previous newest index, so ``b + 1 == index``.
                n = len(buckets)
                if n >= 3 and buckets[n - 3].start == index - 3:
                    # Delegate the cascade itself to repro.core._cascade
                    # (optionally mypyc-compiled); both variants consume the
                    # generator exactly as the historical inline loop did.
                    if fast:
                        merge_cascade_fast(buckets, index, coins)
                    else:
                        merge_cascade(buckets, index, rng_random)
            else:
                front_ts = ts
            # Append the new singleton BS(index, index+1), inlined (this runs
            # once per active arrival — the hottest allocation in the path).
            # The default mode creates distinct R and Q candidates exactly
            # like BucketStructure.singleton; fast mode shares one record.
            appended = new_bucket(bucket_cls)
            appended.start = index
            appended.end = index + 1
            appended.first_value = value
            appended.first_timestamp = ts
            if fast:
                appended.r_sample = appended.q_sample = candidate_cls(value, index, ts)
            else:
                appended.r_sample = candidate_cls(value, index, ts)
                appended.q_sample = candidate_cls(value, index, ts)
            buckets.append(appended)
        self._now = now

    # -- the Lemma 3.5 transitions ----------------------------------------------------------

    def _refresh(self) -> None:
        if self._decomposition.is_empty:
            return
        newest_first_timestamp = self._decomposition.buckets[-1].first_timestamp
        if self._expired(newest_first_timestamp):
            # Cases 2(b)/3(b): even the most recent element expired — the
            # window is empty; drop everything and start afresh later.
            if self._straddler is not None:
                self._straddler.discard(self._observer)
                self._straddler = None
            self._decomposition.discard_all()
            return
        first_bucket = self._decomposition.buckets[0]
        if not first_bucket.first_expired(self._now, self._t0):
            # Cases 2(a)/3(a): nothing expired at the front; state unchanged.
            return
        # Cases 2(c)/3(c): the front of the decomposition expired but the
        # newest element is active — re-anchor on the straddling bucket.
        straddler, discarded, suffix = self._decomposition.split_at_straddler(self._now, self._t0)
        if self._straddler is not None:
            self._straddler.discard(self._observer)
        for bucket in discarded:
            bucket.discard(self._observer)
        self._straddler = straddler
        self._decomposition = CoveringDecomposition.from_buckets(suffix, self._rng, self._observer)
        self._check_invariant()

    def _check_invariant(self) -> None:
        """Case-2 invariant ``z - y <= N + 1 - z`` (needed by Lemma 3.8)."""
        if self._straddler is None or self._decomposition.is_empty:
            return
        alpha = self._straddler.width
        beta = self._decomposition.covered_end + 1 - self._decomposition.covered_start
        if alpha > beta:  # pragma: no cover - would indicate a logic error
            raise AssertionError(
                f"covering invariant violated: straddler width {alpha} > suffix width {beta}"
            )

    # -- sampling ---------------------------------------------------------------------------------

    def draw_sample(self, rng: Optional[random.Random] = None) -> SampleCandidate:
        """A uniform sample of the currently active elements (Theorem 3.9's rule).

        In case 1 the decomposition covers exactly the active elements, so a
        width-weighted choice among bucket ``R`` samples is uniform.  In case 2
        the straddling bucket is combined with the covered suffix through the
        implicit-event machinery of §3.3 (Lemma 3.8).
        """
        from .implicit_events import combine_straddler_and_suffix

        if self._decomposition.is_empty:
            raise EmptyWindowError("no active element in the window")
        chooser = rng if rng is not None else self._rng
        if self._straddler is None:
            return self._decomposition.draw_uniform(chooser)
        suffix_width = self._decomposition.covered_width
        return combine_straddler_and_suffix(
            self._straddler,
            suffix_width,
            lambda: self._decomposition.draw_uniform(chooser),
            now=self._now,
            t0=self._t0,
            rng=chooser,
        )

    # -- bookkeeping ------------------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot: clock, straddler, suffix decomposition, generator."""
        return {
            "now": self._now,
            "straddler": None if self._straddler is None else self._straddler.state_dict(),
            "decomposition": self._decomposition.state_dict(),
            "rng": encode_rng(self._rng),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        require_state_fields(state, ("now", "straddler", "decomposition", "rng"), "WindowCoverage")
        self._now = float(state["now"])
        self._straddler = (
            None if state["straddler"] is None else BucketStructure.from_state_dict(state["straddler"])
        )
        decode_rng_into(self._rng, state["rng"])
        self._decomposition = CoveringDecomposition(self._rng, self._observer)
        self._decomposition.load_state_dict(state["decomposition"])

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        if self._straddler is not None:
            yield from self._straddler.iter_candidates()
        yield from self._decomposition.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants()  # t0
        meter.add_timestamps()  # the clock
        if self._straddler is not None:
            meter.add_words(self._straddler.memory_words())
        meter.add_words(self._decomposition.memory_words())
        return meter.total
