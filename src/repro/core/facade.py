"""One-call factory for every sampler in the library.

``sliding_window_sampler`` builds the right sampler from three orthogonal
choices — window type, replacement, algorithm family — so that applications,
benchmarks and the CLI can switch between the paper's algorithms and the
baselines with a single string.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from ..exceptions import ConfigurationError
from ..rng import RngLike
from .base import WindowSampler
from .sequence import SequenceSamplerWOR, SequenceSamplerWR
from .timestamp import TimestampSamplerWR
from .timestamp_wor import TimestampSamplerWOR
from .tracking import CandidateObserver

__all__ = ["sliding_window_sampler", "ALGORITHMS", "algorithm_catalog"]


def _optimal_sampler_class(window: str, replacement: bool) -> Type[WindowSampler]:
    table: Dict[tuple, Type[WindowSampler]] = {
        ("sequence", True): SequenceSamplerWR,
        ("sequence", False): SequenceSamplerWOR,
        ("timestamp", True): TimestampSamplerWR,
        ("timestamp", False): TimestampSamplerWOR,
    }
    return table[(window, replacement)]


def _baseline_classes() -> Dict[str, Type[WindowSampler]]:
    # Imported lazily to keep ``repro.core`` free of a hard dependency on the
    # baselines package (and to avoid circular imports).
    from ..baselines.chain import ChainSamplerWR
    from ..baselines.oversampling import OversamplingSamplerSeqWOR, OversamplingSamplerTsWOR
    from ..baselines.priority import PrioritySamplerWR
    from ..baselines.priority_wor import PrioritySamplerWOR
    from ..baselines.vanilla_reservoir import WholeStreamReservoir
    from ..baselines.window_buffer import BufferSamplerSeq, BufferSamplerTs

    return {
        "chain": ChainSamplerWR,
        "priority": PrioritySamplerWR,
        "priority-wor": PrioritySamplerWOR,
        "oversampling-seq": OversamplingSamplerSeqWOR,
        "oversampling-ts": OversamplingSamplerTsWOR,
        "buffer-seq": BufferSamplerSeq,
        "buffer-ts": BufferSamplerTs,
        "whole-stream": WholeStreamReservoir,
    }


#: Public names of the paper's algorithms accepted by :func:`sliding_window_sampler`.
ALGORITHMS = ("optimal", "chain", "priority", "priority-wor", "oversampling", "buffer", "whole-stream")


def algorithm_catalog() -> Dict[str, str]:
    """Mapping of algorithm name -> one-line description (for the CLI)."""
    return {
        "optimal": "Braverman-Ostrovsky-Zaniolo optimal sampler (this paper)",
        "chain": "Chain sampling, Babcock-Datar-Motwani (sequence windows, WR)",
        "priority": "Priority sampling, Babcock-Datar-Motwani (timestamp windows, WR)",
        "priority-wor": "k-highest-priority sampling, Gemulla-Lehner (timestamp windows, WoR)",
        "oversampling": "Bernoulli over-sampling baseline (WoR, randomized memory, may fail)",
        "buffer": "Exact window buffer (O(n) memory ground truth)",
        "whole-stream": "Plain whole-stream reservoir (ignores expiry; intentionally wrong)",
    }


def sliding_window_sampler(
    window: str,
    *,
    k: int = 1,
    n: Optional[int] = None,
    t0: Optional[float] = None,
    replacement: bool = True,
    algorithm: str = "optimal",
    rng: RngLike = None,
    observer: Optional[CandidateObserver] = None,
    fast: bool = False,
    kernel: str = "python",
    **kwargs: Any,
) -> WindowSampler:
    """Create a sliding-window sampler.

    Parameters
    ----------
    window:
        ``"sequence"`` (fixed-size window of the last ``n`` elements) or
        ``"timestamp"`` (window of the last ``t0`` time units).
    k:
        Number of samples to maintain.
    n, t0:
        The window parameter matching the window type.
    replacement:
        ``True`` for k independent samples, ``False`` for a uniform k-subset.
    algorithm:
        ``"optimal"`` (the paper's algorithms) or one of the baseline names in
        :data:`ALGORITHMS`.
    rng:
        Seed or ``random.Random`` for reproducibility.
    observer:
        Optional :class:`~repro.core.tracking.CandidateObserver` for the
        Section-5 applications.
    fast:
        Enable the skip-sampling batched ingest mode on the optimal samplers
        (``process_batch`` draws geometric skips instead of per-element
        coins — distributionally exact, but not bit-identical to the default
        path).  Baselines do not support it and raise
        :class:`~repro.exceptions.ConfigurationError`.
    kernel:
        Batched-ingest kernel for the optimal samplers: ``"python"`` (the
        default bit-identity reference), ``"numpy"`` (the vectorized
        ``fast``-path kernels of :mod:`repro.engine.kernels`; requires the
        optional ``[fast]`` extra and fails loudly without it), or
        ``"auto"`` (numpy when available, python otherwise).  Only the
        ``fast=True`` batched path changes behaviour — ``fast=False`` stays
        bit-identical regardless of kernel.  Baselines support only
        ``"python"``.
    kwargs:
        Extra keyword arguments passed to the concrete sampler (for example
        ``allow_partial`` or a baseline's over-sampling factor).
    """
    window = window.lower()
    if window not in ("sequence", "timestamp"):
        raise ConfigurationError(f"window must be 'sequence' or 'timestamp', got {window!r}")
    if window == "sequence":
        if n is None:
            raise ConfigurationError("sequence windows require the window size n")
    else:
        if t0 is None:
            raise ConfigurationError("timestamp windows require the window span t0")

    algorithm = algorithm.lower()
    kernel = str(kernel).lower()
    if algorithm == "optimal":
        sampler_class = _optimal_sampler_class(window, replacement)
        if window == "sequence":
            return sampler_class(
                n=n, k=k, rng=rng, observer=observer, fast=fast, kernel=kernel, **kwargs
            )
        return sampler_class(
            t0=t0, k=k, rng=rng, observer=observer, fast=fast, kernel=kernel, **kwargs
        )

    if fast:
        raise ConfigurationError(
            f"fast (skip-sampling) batched ingest is only supported by the optimal"
            f" samplers, not by algorithm={algorithm!r}"
        )
    if kernel not in ("python", "auto"):
        raise ConfigurationError(
            f"kernel={kernel!r} is only supported by the optimal samplers,"
            f" not by algorithm={algorithm!r}"
        )
    baselines = _baseline_classes()
    if algorithm == "chain":
        if window != "sequence" or not replacement:
            raise ConfigurationError("chain sampling supports sequence windows with replacement only")
        return baselines["chain"](n=n, k=k, rng=rng, observer=observer, **kwargs)
    if algorithm == "priority":
        if window != "timestamp" or not replacement:
            raise ConfigurationError("priority sampling supports timestamp windows with replacement only")
        return baselines["priority"](t0=t0, k=k, rng=rng, observer=observer, **kwargs)
    if algorithm == "priority-wor":
        if window != "timestamp" or replacement:
            raise ConfigurationError("priority-wor supports timestamp windows without replacement only")
        return baselines["priority-wor"](t0=t0, k=k, rng=rng, observer=observer, **kwargs)
    if algorithm == "oversampling":
        if replacement:
            raise ConfigurationError("the over-sampling baseline is a without-replacement scheme")
        if window == "sequence":
            return baselines["oversampling-seq"](n=n, k=k, rng=rng, observer=observer, **kwargs)
        return baselines["oversampling-ts"](t0=t0, k=k, rng=rng, observer=observer, **kwargs)
    if algorithm == "buffer":
        if window == "sequence":
            return baselines["buffer-seq"](n=n, k=k, replacement=replacement, rng=rng, **kwargs)
        return baselines["buffer-ts"](t0=t0, k=k, replacement=replacement, rng=rng, **kwargs)
    if algorithm == "whole-stream":
        if window != "sequence":
            raise ConfigurationError("the whole-stream reservoir baseline is exposed as a sequence sampler")
        return baselines["whole-stream"](n=n, k=k, replacement=replacement, rng=rng, **kwargs)
    raise ConfigurationError(
        f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
    )
