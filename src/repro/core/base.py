"""Abstract sampler interfaces shared by the paper's algorithms and the baselines.

Two axes define the four problem variants of the paper:

* **window type** — sequence-based (last ``n`` arrivals) vs timestamp-based
  (last ``t0`` time units);
* **replacement** — samples drawn with replacement (k independent uniform
  samples) vs without replacement (a uniform k-subset).

Every concrete sampler implements :class:`WindowSampler`.  Sequence-based
samplers additionally derive from :class:`SequenceWindowSampler` (they expose
``n``); timestamp-based ones derive from :class:`TimestampWindowSampler`
(they expose ``t0`` and accept ``advance_time``).

The uniform contract:

* ``append(value, timestamp)`` — process one arriving stream element.
* ``sample()`` — return the current window sample as a list of
  :class:`~repro.streams.element.StreamElement`:  length ``k`` for
  with-replacement samplers (duplicates possible), ``min(k, window size)``
  distinct elements for without-replacement samplers.  Raises
  :class:`~repro.exceptions.EmptyWindowError` when the window is empty.
* ``memory_words()`` — the current footprint in the paper's word-RAM model.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from ..exceptions import ConfigurationError, StreamOrderError
from ..streams.element import StreamElement
from .serialization import STATE_FORMAT, require_state_fields
from .tracking import CandidateObserver, SampleCandidate, notify_arrival

__all__ = [
    "WindowSampler",
    "SequenceWindowSampler",
    "TimestampWindowSampler",
    "candidate_to_element",
    "check_batch_lengths",
    "coerce_batch_timestamps",
    "init_sampler_kernel",
]


def init_sampler_kernel(kernel: str, root: Any) -> tuple:
    """Resolve a sampler's ``kernel`` argument into ``(name, numpy_gen)``.

    ``"python"`` (the default) resolves without touching
    :mod:`repro.engine.kernels` at all — the stdlib-only path stays free of
    any engine/numpy import.  ``"numpy"`` and ``"auto"`` are resolved there
    (``"numpy"`` raises :class:`~repro.exceptions.ConfigurationError` on a
    numpy-free host; ``"auto"`` downgrades) and, when numpy wins, a
    dedicated ``numpy.random.Generator`` is seeded from the sampler's root
    generator.  Callers must invoke this *after* every stdlib ``spawn`` so
    the python lanes' streams are unchanged by the kernel choice.
    """
    name = str(kernel).lower()
    if name == "python":
        return "python", None
    from ..engine.kernels import make_generator, resolve_kernel

    name = resolve_kernel(name)
    if name == "python":
        return "python", None
    return "numpy", make_generator(root)


def check_batch_lengths(
    values: Sequence[Any], timestamps: Optional[Sequence[Optional[float]]]
) -> None:
    """Reject a batch whose timestamp column does not match its values.

    Shared by every ``process_batch`` implementation so the misuse fails
    loudly and identically everywhere, instead of a silent ``zip``
    truncation (base path) or a bare ``IndexError`` (batched paths).
    """
    if timestamps is not None and len(timestamps) != len(values):
        raise ConfigurationError(
            f"process_batch timestamps must match values in length:"
            f" {len(timestamps)} != {len(values)}"
        )


def coerce_batch_timestamps(
    count: int,
    timestamps: Optional[Sequence[Optional[float]]],
    now: float,
) -> List[float]:
    """Validate and normalise one batch's timestamps for a clocked sampler.

    Applies the per-element ``append`` contract to a whole batch: a missing
    timestamp means "now" (zero before any timestamped element), explicit
    timestamps must be numeric and non-decreasing starting from the
    sampler's current clock ``now``.  Unlike the per-element path, the whole
    batch is validated *before* any element is applied, so a mid-batch
    :class:`~repro.exceptions.StreamOrderError` leaves the sampler untouched.
    """
    stamps = [0.0] * count
    previous = now
    if timestamps is None:
        fill = previous if previous != float("-inf") else 0.0
        for position in range(count):
            stamps[position] = fill
        return stamps
    for position in range(count):
        raw = timestamps[position]
        if raw is None:
            ts = previous if previous != float("-inf") else 0.0
        else:
            try:
                ts = float(raw)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"batch timestamp must be a number, got {raw!r}"
                ) from None
            if ts < previous:
                raise StreamOrderError(
                    f"timestamps must be non-decreasing: {ts} < {previous}"
                )
        stamps[position] = ts
        previous = ts
    return stamps


def candidate_to_element(candidate: SampleCandidate) -> StreamElement:
    """Convert an internal candidate into the public element record."""
    return StreamElement(value=candidate.value, index=candidate.index, timestamp=candidate.timestamp)


class WindowSampler(abc.ABC):
    """Common interface of every sliding-window sampler in the library."""

    #: Human-readable algorithm name (used by the harness and the CLI).
    algorithm: str = "abstract"
    #: Whether samples are drawn with replacement.
    with_replacement: bool = True
    #: Whether the memory footprint is deterministic (the paper's algorithms)
    #: or a random variable (the baselines it improves upon).
    deterministic_memory: bool = True

    def __init__(self, k: int, observer: Optional[CandidateObserver] = None) -> None:
        if k <= 0:
            raise ConfigurationError("sample size k must be positive")
        self._k = int(k)
        self._observer = observer
        self._arrivals = 0

    @property
    def k(self) -> int:
        """Number of samples maintained."""
        return self._k

    @property
    def total_arrivals(self) -> int:
        """Number of elements appended so far."""
        return self._arrivals

    @property
    def observer(self) -> Optional[CandidateObserver]:
        return self._observer

    @property
    def kernel(self) -> str:
        """The active batched-ingest kernel: ``"python"`` (the bit-identity
        reference; all baselines) or ``"numpy"`` (the vectorized ``fast``
        path of the optimal samplers, see :mod:`repro.engine.kernels`)."""
        return getattr(self, "_kernel", "python")

    # -- stream ingestion -------------------------------------------------

    @abc.abstractmethod
    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one arriving element.

        For sequence-based samplers the timestamp is optional metadata; for
        timestamp-based samplers a missing timestamp means "now" (the current
        logical clock).
        """

    def extend(self, elements: Iterable[Any], *, time_value_pairs: bool = False) -> None:
        """Append many elements.

        Accepts raw values or :class:`StreamElement` records (whose timestamps
        are honoured).  With ``time_value_pairs=True`` every item must instead
        be a ``(timestamp, value)`` pair — the keyword spells out the order
        because it is the reverse of ``append(value, timestamp)`` — so
        timestamp-window samplers can be batch-fed from ``(time, payload)``
        feeds without wrapping each record in a :class:`StreamElement`.  The
        pair interpretation is opt-in because tuples are legitimate stream
        *values* (e.g. graph edges).
        """
        if time_value_pairs:
            for timestamp, value in elements:
                self.append(value, timestamp)
            return
        for element in elements:
            if isinstance(element, StreamElement):
                self.append(element.value, element.timestamp)
            else:
                self.append(element)

    def process_batch(
        self,
        values: Sequence[Any],
        timestamps: Optional[Sequence[Optional[float]]] = None,
    ) -> int:
        """Append a whole batch of elements; returns the number appended.

        ``values`` is a sequence of payloads; ``timestamps`` is either
        ``None`` (every element uses the per-element default) or a sequence
        of the same length whose entries may individually be ``None``.

        This base implementation simply loops :meth:`append`; the optimal
        samplers override it with a batched fast path that hoists attribute
        lookups out of the inner loop (and, for the timestamp samplers,
        amortises the covering automata's merge walks and expiry scans
        across the batch) and — with ``fast=True`` at construction —
        replaces per-element coin flips with geometric skip draws.  The
        default (``fast=False``) overrides are **bit-identical** to the
        equivalent ``append`` loop: same retained candidates, same
        generator positions, same checkpoints.
        """
        check_batch_lengths(values, timestamps)
        if timestamps is None:
            append = self.append
            for value in values:
                append(value)
        else:
            append = self.append
            for value, timestamp in zip(values, timestamps):
                append(value, timestamp)
        return len(values)

    # -- sampling ----------------------------------------------------------

    @abc.abstractmethod
    def sample_candidates(self) -> List[SampleCandidate]:
        """Draw the current window sample as retained candidate records.

        The returned objects are the sampler's internal candidates (not
        copies), so any observer state attached to them — occurrence counters,
        triangle watchers — is visible to the caller.  Most users should call
        :meth:`sample` instead.
        """

    def sample(self) -> List[StreamElement]:
        """Draw the current window sample (see module docstring for shape)."""
        return [candidate_to_element(candidate) for candidate in self.sample_candidates()]

    def sample_values(self) -> List[Any]:
        """Values only, for callers that do not need indexes/timestamps."""
        return [element.value for element in self.sample()]

    def sample_one(self) -> StreamElement:
        """Convenience accessor for ``k == 1`` samplers."""
        drawn = self.sample()
        if not drawn:
            raise ConfigurationError("sampler returned an empty sample")
        return drawn[0]

    # -- introspection ------------------------------------------------------

    @abc.abstractmethod
    def memory_words(self) -> int:
        """Current footprint in the paper's word-RAM model."""

    @abc.abstractmethod
    def iter_candidates(self) -> Iterator[SampleCandidate]:
        """All candidates currently retained (used by observers, memory audits
        and the Section-5 applications)."""

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the sampler's full state as plain Python containers.

        The snapshot captures every retained candidate (including observer
        scratch state) and the exact position of every internal random
        generator, so a sampler restored via :meth:`load_state_dict` produces
        *identical* samples and identical future behaviour under an identical
        suffix of the stream.  Observers are wiring, not state: they are not
        serialised and stay attached to whatever sampler loads the snapshot.
        """
        return {
            "format": STATE_FORMAT,
            "type": type(self).__name__,
            "algorithm": self.algorithm,
            "k": self._k,
            "arrivals": self._arrivals,
            "payload": self._encode_state(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`state_dict` in place.

        The receiving sampler must have been constructed with the same shape
        (class and ``k``; subclasses additionally check ``n`` / ``t0``);
        mismatches raise :class:`~repro.exceptions.ConfigurationError`.
        """
        require_state_fields(state, ("format", "type", "k", "arrivals", "payload"), type(self).__name__)
        if state["format"] != STATE_FORMAT:
            raise ConfigurationError(
                f"unsupported snapshot format {state['format']!r} (expected {STATE_FORMAT})"
            )
        if state["type"] != type(self).__name__:
            raise ConfigurationError(
                f"snapshot was taken from {state['type']}, cannot load into {type(self).__name__}"
            )
        if int(state["k"]) != self._k:
            raise ConfigurationError(f"snapshot has k={state['k']}, sampler has k={self._k}")
        self._decode_state(state["payload"])
        self._arrivals = int(state["arrivals"])

    def _encode_state(self) -> Dict[str, Any]:
        """Subclass hook: encode algorithm-specific state (see state_dict)."""
        raise NotImplementedError(f"{type(self).__name__} does not support checkpointing")

    def _decode_state(self, payload: Dict[str, Any]) -> None:
        """Subclass hook: restore algorithm-specific state in place."""
        raise NotImplementedError(f"{type(self).__name__} does not support checkpointing")

    # -- observer plumbing ---------------------------------------------------

    def _notify_arrival(self, value: Any, index: int, timestamp: float) -> None:
        """Deliver an arrival to the attached observer for every retained
        candidate strictly older than the arrival."""
        notify_arrival(self._observer, self.iter_candidates(), value, index, timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(k={self._k}, arrivals={self._arrivals})"


class SequenceWindowSampler(WindowSampler):
    """Sampler over a sequence-based (fixed-size) window of the last ``n`` arrivals."""

    def __init__(self, n: int, k: int, observer: Optional[CandidateObserver] = None) -> None:
        super().__init__(k, observer)
        if n <= 0:
            raise ConfigurationError("window size n must be positive")
        self._n = int(n)

    @property
    def n(self) -> int:
        """Configured window size (number of most recent elements considered active)."""
        return self._n

    @property
    def window_size(self) -> int:
        """Number of currently active elements: ``min(n, arrivals)``."""
        return min(self._n, self._arrivals)


class TimestampWindowSampler(WindowSampler):
    """Sampler over a timestamp-based window of span ``t0``.

    An element with timestamp ``T(p)`` is active at time ``now`` iff
    ``now - T(p) < t0``.  The logical clock advances via ``advance_time`` or
    implicitly when an element with a larger timestamp is appended.
    """

    def __init__(self, t0: float, k: int, observer: Optional[CandidateObserver] = None) -> None:
        super().__init__(k, observer)
        if t0 <= 0:
            raise ConfigurationError("window span t0 must be positive")
        self._t0 = float(t0)

    @property
    def t0(self) -> float:
        """Configured window span."""
        return self._t0

    @abc.abstractmethod
    def advance_time(self, now: float) -> None:
        """Move the logical clock forward to ``now`` (expiring old elements)."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current logical time."""
