"""Optimal sampling with replacement from timestamp-based windows (§3, Theorem 3.9).

Each of the ``k`` independent samples is maintained by one
:class:`~repro.core.covering.WindowCoverage` automaton (Lemma 3.5).  At query
time the window sample is produced from the automaton's state:

* **case 1** — the covering decomposition starts exactly at the earliest
  active element: pick a bucket with probability proportional to its width and
  output that bucket's ``R`` sample;
* **case 2** — a straddling bucket precedes the decomposition: apply the
  implicit-event machinery of §3.3 (Lemma 3.8) to combine the straddler's
  sample with a uniform sample of the covered suffix.

The memory footprint is Θ(k · log n(t)) words and is a deterministic function
of the arrival pattern — never of the algorithm's coin flips — which is the
paper's improvement over priority sampling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..exceptions import ConfigurationError, EmptyWindowError, StreamOrderError
from ..memory import MemoryMeter, WORD_MODEL
from ..rng import RngLike, ensure_rng, spawn
from .base import (
    TimestampWindowSampler,
    check_batch_lengths,
    coerce_batch_timestamps,
    init_sampler_kernel,
)
from .covering import WindowCoverage, estimate_active_count
from .serialization import decode_rng_into, encode_rng, require_state_fields
from .tracking import CandidateObserver, SampleCandidate

__all__ = ["TimestampSamplerWR"]


class TimestampSamplerWR(TimestampWindowSampler):
    """k samples *with replacement* from a timestamp window (Theorem 3.9).

    ``append(value, timestamp)`` processes an arrival (the timestamp defaults
    to the current clock); ``advance_time(now)`` moves the clock without an
    arrival; ``sample()`` returns ``k`` elements, each uniform over the active
    elements and mutually independent.
    """

    algorithm = "boz-ts-wr"
    with_replacement = True
    deterministic_memory = True

    def __init__(
        self,
        t0: float,
        k: int = 1,
        rng: RngLike = None,
        observer: Optional[CandidateObserver] = None,
        fast: bool = False,
        kernel: str = "python",
    ) -> None:
        super().__init__(t0, k, observer)
        root = ensure_rng(rng)
        #: ``fast=True`` switches the batched path's bucket-merge coins to
        #: geometric skip draws (distributionally exact, not bit-identical to
        #: the ``append`` loop); the default consumes randomness exactly like
        #: per-element appends.
        self._fast = bool(fast)
        self._coverages = [WindowCoverage(self._t0, spawn(root, lane), observer) for lane in range(self._k)]
        self._query_rng = spawn(root, self._k + 1)
        # Resolved after every spawn so kernel choice never perturbs them.
        self._kernel, self._np_gen = init_sampler_kernel(kernel, root)
        self._now = float("-inf")

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        for coverage in self._coverages:
            coverage.advance_time(self._now)

    # -- ingestion ----------------------------------------------------------------

    def append(self, value: Any, timestamp: Optional[float] = None) -> None:
        index = self._arrivals
        if timestamp is None:
            ts = self._now if self._now != float("-inf") else 0.0
        else:
            ts = float(timestamp)
        if ts < self._now:
            raise StreamOrderError(f"timestamps must be non-decreasing: {ts} < {self._now}")
        self._now = ts
        for coverage in self._coverages:
            coverage.observe(value, index, ts)
        self._arrivals += 1
        self._notify_arrival(value, index, ts)

    def process_batch(
        self,
        values: Sequence[Any],
        timestamps: Optional[Sequence[Optional[float]]] = None,
    ) -> int:
        """Batched :meth:`append`: timestamps are validated up front, then the
        batch is fed lane-major through
        :meth:`~repro.core.covering.WindowCoverage.observe_batch` (each
        covering automaton owns an independent generator, so the default mode
        is bit-identical to the ``append`` loop; ``fast=True`` switches the
        merge coins to geometric skip draws — distributionally exact, but a
        different generator trajectory).

        Unlike per-element appends, an out-of-order timestamp raises
        *before* any element is applied.  Observer-carrying samplers fall
        back to the per-element loop.
        """
        check_batch_lengths(values, timestamps)
        count = len(values)
        if count == 0:
            return 0
        if self._observer is not None:
            return super().process_batch(values, timestamps)
        stamps = coerce_batch_timestamps(count, timestamps, self._now)
        start = self._arrivals
        fast = self._fast
        if fast and self._np_gen is not None:
            # Vectorized kernel: per expiry run, the covering decomposition
            # is rebuilt structurally instead of cascading per element (see
            # repro.engine.kernels.coverage_observe_batch).
            from ..engine.kernels import as_float_array, coverage_observe_batch

            stamp_array = as_float_array(stamps)
            for coverage in self._coverages:
                coverage_observe_batch(
                    coverage, values, 0, start, stamp_array, stamp_array, self._np_gen
                )
        else:
            for coverage in self._coverages:
                coverage.observe_batch(values, start, stamps, fast=fast)
        self._now = stamps[-1]
        self._arrivals = start + count
        return count

    # -- sampling -------------------------------------------------------------------

    def sample_candidates(self) -> List[SampleCandidate]:
        return [self._sample_coverage(coverage) for coverage in self._coverages]

    def _sample_coverage(self, coverage: WindowCoverage) -> SampleCandidate:
        if self._now != float("-inf"):
            coverage.advance_time(self._now)
        if coverage.is_empty:
            raise EmptyWindowError("no active element in the window")
        return coverage.draw_sample(self._query_rng)

    @property
    def window_is_empty(self) -> bool:
        """Whether no stored element is currently active."""
        if self._arrivals == 0:
            return True
        coverage = self._coverages[0]
        coverage.advance_time(self._now)
        return coverage.is_empty

    def active_count_estimate(self) -> int:
        """Estimated number of currently active elements ``n(t)``
        (:func:`~repro.core.covering.estimate_active_count` on the first
        automaton's covering decomposition)."""
        return estimate_active_count(self._coverages[0], self._now)

    # -- introspection ------------------------------------------------------------------

    def iter_candidates(self) -> Iterator[SampleCandidate]:
        for coverage in self._coverages:
            yield from coverage.iter_candidates()

    def memory_words(self) -> int:
        meter = MemoryMeter(WORD_MODEL)
        meter.add_constants(2)  # t0 and k
        meter.add_counters()  # arrival counter
        meter.add_timestamps()  # the clock
        for coverage in self._coverages:
            meter.add_words(coverage.memory_words())
        return meter.total

    # -- checkpointing ------------------------------------------------------------------

    def _encode_state(self) -> Dict[str, Any]:
        return {
            "t0": self._t0,
            "now": self._now,
            "coverages": [coverage.state_dict() for coverage in self._coverages],
            "query_rng": encode_rng(self._query_rng),
        }

    def _decode_state(self, payload: Dict[str, Any]) -> None:
        require_state_fields(payload, ("t0", "now", "coverages", "query_rng"), type(self).__name__)
        if float(payload["t0"]) != self._t0:
            raise ConfigurationError(f"snapshot has t0={payload['t0']}, sampler has t0={self._t0}")
        if len(payload["coverages"]) != len(self._coverages):
            raise ConfigurationError(
                f"snapshot has {len(payload['coverages'])} coverages, sampler has {len(self._coverages)}"
            )
        self._now = float(payload["now"])
        for coverage, coverage_state in zip(self._coverages, payload["coverages"]):
            coverage.load_state_dict(coverage_state)
        decode_rng_into(self._query_rng, payload["query_rng"])
