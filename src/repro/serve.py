"""``swsample serve`` — the standing async ingest/query daemon.

The engine so far lives for one CLI invocation; this module keeps it alive.
:class:`ServeApp` is an asyncio front-end over the existing transport-agnostic
pieces — :mod:`repro.engine.source` parses records, any engine flavour
(:class:`~repro.engine.ShardedEngine`, :class:`~repro.engine.ParallelEngine`,
:class:`~repro.engine.ProcessEngine`) ingests them, :mod:`repro.obs` renders
telemetry, and the checkpoint layer persists the fleet across restarts.

Surface
-------
* **HTTP ingest** — ``POST /v1/<tenant>/ingest`` with a JSONL body (the same
  line grammar as ``swsample engine --input``).  Admission is bounded: when a
  tenant's pending backlog would exceed ``max_pending_records`` the request is
  refused with ``429`` and a ``Retry-After`` header instead of buffering
  without bound.
* **Raw-socket ingest** — a line-per-record TCP listener (``--socket-port``).
  ``#tenant NAME`` lines switch tenants mid-stream; backpressure here is
  *blocking* (the reader simply stops consuming until the engine drains),
  which propagates to the sender via TCP — the right behaviour for a pipe.
* **Query API** — ``GET /v1/<tenant>/sample?key=K`` (``key`` is a JSON
  document, or a bare string when it does not parse as JSON), ``/hottest``,
  ``/frequent``, ``/moments``, ``/stats``; plus fleet-wide ``/healthz``
  (loop-side only — never blocks on an engine), ``/v1/tenants`` and
  ``/metrics`` (Prometheus text: server-level counters via
  :func:`~repro.obs.to_prometheus_text` plus every tenant's fleet-merged
  engine snapshot via :func:`~repro.obs.labeled_prometheus_text`, one
  ``tenant="..."`` label per namespace).
* **Batched queries** — ``POST /v1/<tenant>/query`` with a JSON body
  ``{"ops": [{"op": "sample", "key": ...}, {"op": "hottest", "top": 5},
  ...]}`` resolves the whole list through the engine's
  :meth:`~repro.engine.ShardedEngine.query_batch` in one engine-thread trip
  (one request/reply round per worker on a :class:`ProcessEngine` fleet).
  Each op yields ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``
  independently — one missing key never fails the batch.
* **Result caching** — every tenant engine gets a
  :class:`~repro.engine.QueryCache` stamped with per-shard generations, so
  repeated dashboard queries between ingest batches are cache hits
  (``querycache.*`` counters surface per tenant in ``/metrics``).
* **Continuous queries** — ``POST /v1/<tenant>/subscribe`` registers a
  standing query (typically ``hottest`` or ``frequent``) plus an
  ``interval``; the response streams JSONL deltas (close-delimited, no
  Content-Length) whenever the re-evaluated answer changes, with a final
  ``{"event": "end"}`` line when the daemon drains on SIGTERM.
* **Multi-tenant namespaces** — one engine recipe instantiated per tenant
  name, each with an isolated :class:`~repro.obs.MetricsRegistry` and its own
  single-thread executor, so tenants cannot observe each other's state.
* **Graceful shutdown** — SIGTERM/SIGINT stop accepting connections, drain
  in-flight batches through the engine's ``flush`` barrier, write one
  checkpoint directory per tenant (``<checkpoint_dir>/<tenant>``) and close
  the engines.  ``--resume`` restores those checkpoints losslessly on the
  next start (stable-hash routing makes the restored fleet bit-identical).

Threading model
---------------
Every engine — including the serial :class:`~repro.engine.ShardedEngine`,
which is single-caller by contract — is only ever touched from its tenant's
one-thread executor.  Ingests and queries are submitted to that executor from
the event loop, so they serialise in arrival order and the loop itself never
blocks on sampler work.  The pending-records ledger that drives 429s is
mutated only on the event loop (``run_in_executor`` completion callbacks run
there), so it needs no lock.

The module is stdlib-only (``asyncio`` + the existing package layers): no
web framework, by design — the wire surface is small and the dependency
budget is zero.
"""

from __future__ import annotations

import asyncio
import io
import json
import math
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from .engine import (
    ParallelEngine,
    ProcessEngine,
    QueryCache,
    RestartPolicy,
    SamplerSpec,
    ShardedEngine,
    checkpoint_shards,
    freeze_key,
    ingest_jsonl,
    load_checkpoint,
    write_checkpoint,
)
from .engine.source import DEFAULT_BATCH_SIZE
from .exceptions import (
    ConfigurationError,
    EmptyWindowError,
    InsufficientSampleError,
    SamplingFailureError,
    ShardRecovering,
    StreamOrderError,
    SWSampleError,
    WorkerFailure,
)
from .obs import MetricsRegistry, labeled_prometheus_text, to_prometheus_text

__all__ = ["EngineSettings", "ServeConfig", "ServeApp", "ServeThread"]

#: Default per-tenant backlog bound (records) before ingest returns 429.
DEFAULT_MAX_PENDING_RECORDS = 100_000

#: Largest accepted HTTP body; a JSONL batch bigger than this should be
#: split by the client (or streamed over the raw socket instead).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: ``Retry-After`` clamp for 429 responses: never tell a client to come back
#: sooner than 1s, never make it sit out longer than 30s even when the drain
#: estimate says the backlog needs minutes.
RETRY_AFTER_MIN_SECONDS = 1
RETRY_AFTER_MAX_SECONDS = 30

#: Default re-evaluation interval (seconds) for ``/subscribe`` standing
#: queries when the request does not name one.
DEFAULT_SUBSCRIBE_INTERVAL = 1.0

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: unwind request handling into an error response."""

    def __init__(self, status: int, message: str, headers: Sequence[Tuple[str, str]] = ()):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = tuple(headers)


def _degraded_error(error: ShardRecovering) -> _HttpError:
    """503 for a query that needs a mid-recovery shard: unlike the sticky
    ``WorkerFailure`` 503, this one carries ``Retry-After`` — the fleet is
    healing itself and the same request will succeed shortly."""
    retry = max(
        RETRY_AFTER_MIN_SECONDS,
        min(RETRY_AFTER_MAX_SECONDS, math.ceil(error.retry_after)),
    )
    return _HttpError(503, str(error), headers=(("Retry-After", str(retry)),))


@dataclass
class EngineSettings:
    """The per-tenant engine recipe: which sampler fleet each tenant gets.

    ``build`` constructs a fresh engine (serial by default; thread or process
    workers when ``workers`` is set), ``resume`` restores one from a
    checkpoint directory — under *any* worker count, which the manifest is
    validated against before paying for the restore, mirroring the CLI.
    """

    spec: SamplerSpec
    shards: int = 4
    seed: int = 0
    max_keys_per_shard: Optional[int] = None
    idle_ttl: Optional[int] = None
    track_occurrences: bool = False
    workers: Optional[int] = None
    executor: str = "thread"
    max_batch: Optional[int] = None
    supervise: bool = False
    wal_dir: Optional[str] = None
    wal_fsync: str = "batch"
    max_restarts: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.supervise or self.wal_dir is not None) and (
            self.workers is None or self.executor != "process"
        ):
            raise ConfigurationError(
                "supervise/wal_dir need process workers"
                " (set workers=N and executor='process')"
            )
        if self.supervise and self.wal_dir is None:
            raise ConfigurationError(
                "supervise needs a wal_dir — recovery replays the journal"
            )
        if self.max_restarts is not None and not self.supervise:
            raise ConfigurationError("max_restarts only applies with supervise")

    def _restart_policy(self) -> Optional[RestartPolicy]:
        if self.max_restarts is None:
            return None
        return RestartPolicy(max_restarts=self.max_restarts)

    def _durability(self, wal_dir: Optional[str]) -> Dict[str, Any]:
        """Supervision kwargs for one tenant; ``wal_dir`` is the per-tenant
        journal path (each tenant fleet needs its own shard files), falling
        back to the recipe's own ``wal_dir`` for direct single-fleet use."""
        if wal_dir is None:
            wal_dir = self.wal_dir
        if wal_dir is None:
            return {}
        return dict(
            supervise=self.supervise,
            wal_dir=wal_dir,
            wal_fsync=self.wal_fsync,
            restart_policy=self._restart_policy(),
        )

    def build(self, registry: Any, wal_dir: Optional[str] = None) -> Any:
        config = dict(
            shards=self.shards,
            seed=self.seed,
            max_keys_per_shard=self.max_keys_per_shard,
            idle_ttl=self.idle_ttl,
            track_occurrences=self.track_occurrences,
            registry=registry,
        )
        if self.workers is not None:
            engine_class = ProcessEngine if self.executor == "process" else ParallelEngine
            if self.max_batch is not None:
                config["max_batch"] = self.max_batch
            if engine_class is ProcessEngine:
                config.update(self._durability(wal_dir))
            return engine_class(self.spec, workers=self.workers, **config)
        return ShardedEngine(self.spec, **config)

    def resume(self, path: str, registry: Any, wal_dir: Optional[str] = None) -> Any:
        if self.workers is not None:
            known_shards = checkpoint_shards(path)
            if known_shards is not None and self.workers > known_shards:
                raise ConfigurationError(
                    f"workers={self.workers} exceeds the checkpoint's"
                    f" {known_shards} shards (each worker owns at least one shard)"
                )
        return load_checkpoint(
            path,
            workers=self.workers,
            executor=self.executor,
            max_batch=self.max_batch,
            registry=registry,
            **self._durability(wal_dir),
        )


@dataclass
class ServeConfig:
    """Everything :class:`ServeApp` needs to stand up a daemon."""

    engine: EngineSettings
    host: str = "127.0.0.1"
    http_port: int = 0
    socket_port: Optional[int] = None
    tenants: Sequence[str] = ("default",)
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    checkpoint_interval: Optional[float] = None
    max_pending_records: int = DEFAULT_MAX_PENDING_RECORDS
    batch_size: int = DEFAULT_BATCH_SIZE
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    drain_timeout: float = 10.0
    ready_file: Optional[str] = None
    metrics_out: Optional[str] = None
    metrics_format: str = "json"
    #: Test hook: ``(tenant_name, registry) -> engine`` overrides
    #: ``engine.build``/``engine.resume`` entirely.
    engine_factory: Optional[Callable[[str, Any], Any]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError("serve needs at least one tenant")
        if len(set(self.tenants)) != len(self.tenants):
            raise ConfigurationError("tenant names must be unique")
        if self.max_pending_records <= 0:
            raise ConfigurationError("max_pending_records must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        if self.resume and not self.checkpoint_dir:
            raise ConfigurationError("resume requires a checkpoint_dir")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        if self.metrics_format not in ("json", "prom"):
            raise ConfigurationError("metrics_format must be 'json' or 'prom'")


class _Tenant:
    """One tenant's engine plus its single-thread access discipline.

    All engine calls — ingest, queries, flush, checkpoint, close — go through
    ``self._executor`` (one thread), which makes the serial engine safe under
    concurrent HTTP traffic and gives worker-backed engines a single caller
    for their public surface.  ``pending_records`` and ``_waiters`` are
    event-loop state: touched only on the loop thread.
    """

    def __init__(
        self,
        name: str,
        engine: Any,
        registry: MetricsRegistry,
        loop: asyncio.AbstractEventLoop,
        *,
        max_pending: int,
        batch_size: int,
    ) -> None:
        self.name = name
        self.engine = engine
        self.registry = registry
        self._loop = loop
        self._max_pending = max_pending
        self._batch_size = batch_size
        self.pending_records = 0
        self.ingested_records = 0
        self._waiters: List[asyncio.Future] = []
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"swsample-serve-{name}"
        )
        # EWMA of the engine's drain throughput (records/second), fed by
        # batch completions; drives the 429 Retry-After estimate.  Zero
        # until the first batch settles — i.e. "no evidence it drains".
        self._drain_rate = 0.0
        self._last_settled: Optional[float] = None
        self._accepted = registry.counter("serve.ingest.accepted.records")
        self._rejected = registry.counter("serve.ingest.rejected.batches")
        self.checkpoint_failures = registry.counter("serve.checkpoint.failures")
        registry.register_callback("serve.pending.records", lambda: self.pending_records)

    # -- ingest ----------------------------------------------------------------

    def _ingest_sync(self, text: str) -> int:
        return ingest_jsonl(self.engine, io.StringIO(text), batch_size=self._batch_size)

    def try_ingest(self, text: str) -> Optional["asyncio.Future[int]"]:
        """Admit a JSONL body, or return ``None`` when the backlog is full.

        The estimate is the body's line count — exact for well-formed JSONL,
        close enough for admission control otherwise.  A batch larger than
        the whole budget is still admitted when the tenant is idle, so one
        oversized client cannot deadlock itself.
        """
        estimate = text.count("\n") + (0 if text.endswith("\n") else 1)
        if self.pending_records > 0 and self.pending_records + estimate > self._max_pending:
            self._rejected.inc()
            return None
        self.pending_records += estimate
        future = self._loop.run_in_executor(self._executor, self._ingest_sync, text)

        def _settled(done: "asyncio.Future[int]", estimate: int = estimate) -> None:
            self.pending_records -= estimate
            self._observe_drain(estimate)
            if not done.cancelled() and done.exception() is None:
                count = done.result()
                self.ingested_records += count
                self._accepted.inc(count)
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_result(None)

        future.add_done_callback(_settled)
        return future

    def _observe_drain(self, records: int) -> None:
        """Fold one settled batch into the drain-rate EWMA.

        A batch that settles counts as drained regardless of outcome — a
        failed parse also leaves the backlog.  Runs on the event loop (done
        callbacks), so no lock.
        """
        now = time.monotonic()
        if self._last_settled is not None:
            elapsed = now - self._last_settled
            if elapsed > 0:
                rate = records / elapsed
                if self._drain_rate > 0:
                    self._drain_rate = 0.7 * self._drain_rate + 0.3 * rate
                else:
                    self._drain_rate = rate
        self._last_settled = now

    def retry_after(self) -> int:
        """Seconds a 429'd client should wait: backlog over observed drain
        rate, clamped to [1, 30].  A tenant with no drain evidence yet — a
        stalled engine, or a first oversized burst — gets the upper clamp
        rather than an optimistic ``1``."""
        if self._drain_rate <= 0:
            return RETRY_AFTER_MAX_SECONDS
        estimate = math.ceil(self.pending_records / self._drain_rate)
        return max(RETRY_AFTER_MIN_SECONDS, min(RETRY_AFTER_MAX_SECONDS, estimate))

    async def admit(self, text: str) -> "asyncio.Future[int]":
        """Blocking admission for the raw-socket path: wait for the backlog
        to drain instead of refusing, then return the in-flight future.

        The caller awaits *admission* before reading more input — that stalls
        the TCP receive window, pushing backpressure to the sender — while
        admitted batches still pipeline through the engine thread.
        """
        while True:
            future = self.try_ingest(text)
            if future is not None:
                return future
            waiter: asyncio.Future = self._loop.create_future()
            self._waiters.append(waiter)
            await waiter

    async def ingest_wait(self, text: str) -> int:
        """Blocking-admission ingest: admit, then await completion."""
        return await (await self.admit(text))

    # -- serialized engine access ---------------------------------------------

    async def query(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the tenant's engine thread, after any queued
        ingests (single executor thread ⇒ strict arrival order)."""
        return await self._loop.run_in_executor(self._executor, fn, *args)

    async def drain(self) -> None:
        await self.query(self.engine.flush)

    async def checkpoint(self, path: str) -> Any:
        return await self.query(lambda: write_checkpoint(self.engine, path))

    async def metrics_snapshot(self) -> Dict[str, Any]:
        return await self.query(self.engine.metrics_snapshot)

    async def aclose(self) -> None:
        close = getattr(self.engine, "close", None)
        if close is not None:
            await self.query(close)
        self._executor.shutdown(wait=False)


def _element_payload(element: Any) -> Dict[str, Any]:
    return {
        "index": element.index,
        "timestamp": element.timestamp,
        "value": element.value,
    }


def _parse_key(raw: str) -> Any:
    """A query-string key: a JSON document, or a bare string when it isn't.

    ``key=7`` is the integer key ``7``; the *string* ``"7"`` must be sent
    JSON-quoted (``key=%227%22``).  Nested array keys arrive as JSON arrays
    and are frozen recursively, exactly like ingest does.
    """
    try:
        document = json.loads(raw)
    except ValueError:
        return raw
    return freeze_key(document)


#: Sentinel for "the standing query has not produced a first answer yet" —
#: distinct from every real outcome, so the first evaluation always pushes.
_UNEVALUATED = object()


def _json_document(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise _HttpError(400, f"body is not valid JSON: {error}") from None


def _query_op_from_json(document: Any) -> Tuple[Any, ...]:
    """One wire-format op document → the engine's canonical op tuple.

    ``{"op": "sample", "key": K}`` / ``{"op": "contains", "key": K}`` /
    ``{"op": "hottest", "top": N}`` / ``{"op": "frequent", "threshold": T,
    "top": N?}`` / ``{"op": "moments", "order": P}`` / ``{"op": "stats"}``.
    Keys are frozen exactly like ingest keys (JSON arrays become tuples).
    Argument *values* are validated engine-side; this only maps shapes.
    """
    if not isinstance(document, dict) or not isinstance(document.get("op"), str):
        raise ConfigurationError(
            f'each op must be an object with an "op" name, got {document!r}'
        )
    kind = document["op"]
    if kind in ("sample", "contains"):
        if "key" not in document:
            raise ConfigurationError(f'{kind!r} needs a "key"')
        return (kind, freeze_key(document["key"]))
    if kind == "hottest":
        return ("hottest", document.get("top", 10))
    if kind == "frequent":
        return ("frequent", document.get("threshold", 0.01), document.get("top"))
    if kind == "moments":
        return ("moments", document.get("order", 2.0))
    if kind == "stats":
        return ("stats",)
    raise ConfigurationError(f"unknown query op {kind!r}")


def _query_outcome_payload(op: Tuple[Any, ...], outcome: Tuple[Any, ...]) -> Dict[str, Any]:
    """One ``query_batch`` outcome → its JSON wire shape, mirroring the
    scalar endpoints' payloads (samples as element objects, hottest as
    key/arrivals pairs, ...)."""
    if outcome[0] == "error":
        return {"ok": False, "error": outcome[1], "message": outcome[2]}
    value = outcome[1]
    kind = op[0]
    if kind == "sample":
        return {"ok": True, "sample": [_element_payload(element) for element in value]}
    if kind == "contains":
        return {"ok": True, "contains": bool(value)}
    if kind == "hottest":
        return {
            "ok": True,
            "hottest": [{"key": key, "arrivals": arrivals} for key, arrivals in value],
        }
    if kind == "frequent":
        return {
            "ok": True,
            "frequent": [
                {"value": item, "frequency": frequency} for item, frequency in value
            ],
        }
    if kind == "moments":
        return {
            "ok": True,
            "moments": [
                {"key": key, "moment": moment}
                for key, moment in sorted(value.items(), key=lambda item: repr(item[0]))
            ],
        }
    return {"ok": True, "stats": value}


class ServeApp:
    """The daemon: tenants, listeners, lifecycle.  See the module docstring.

    ``await start()`` inside a running loop (tests, :class:`ServeThread`);
    ``run()`` from a main thread for the real daemon (installs SIGTERM/SIGINT
    handlers, blocks until stopped, shuts down cleanly, returns an exit
    code).
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.http_port: Optional[int] = None
        self.socket_port: Optional[int] = None
        self._tenants: Dict[str, _Tenant] = {}
        self._registry = MetricsRegistry()
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._socket_server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._checkpoint_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._subs_stop: Optional[asyncio.Event] = None
        self._shutdown_started = False
        self._http_requests = self._registry.counter("serve.http.requests")
        self._http_errors = self._registry.counter("serve.http.errors")
        self._socket_conns = self._registry.counter("serve.socket.connections")
        self._sub_conns = self._registry.counter("serve.subscribe.connections")
        self._sub_deltas = self._registry.counter("serve.subscribe.deltas")

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Build the tenant engines (resuming when configured), bind the
        listeners and write the ready file.  Idempotency is not attempted —
        one app, one start."""
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._subs_stop = asyncio.Event()
        if config.checkpoint_dir:
            os.makedirs(config.checkpoint_dir, exist_ok=True)
        for name in config.tenants:
            registry = MetricsRegistry()
            if config.engine_factory is not None:
                engine = config.engine_factory(name, registry)
            else:
                checkpoint_path = self._tenant_checkpoint_path(name)
                wal_path = self._tenant_wal_path(name)
                if (
                    config.resume
                    and checkpoint_path is not None
                    and os.path.exists(checkpoint_path)
                ):
                    engine = config.engine.resume(
                        checkpoint_path, registry, wal_dir=wal_path
                    )
                    # Records journaled after the checkpoint the daemon died
                    # on are re-applied here; the journal stays on disk until
                    # the next committed save truncates it.
                    engine.replay_wal()
                else:
                    engine = config.engine.build(registry, wal_dir=wal_path)
                    # Fresh start: any journal a previous daemon left covers
                    # state this fleet never held — drop it, loudly.
                    engine.discard_wal()
            # Every tenant queries through a generation-invalidated result
            # cache: repeated dashboard hits between ingest batches never
            # touch the pools, and the hit/miss counters land in this
            # tenant's registry (visible under /metrics).  Factory-built
            # stubs without the property simply go uncached.
            if hasattr(type(engine), "query_cache") and engine.query_cache is None:
                engine.query_cache = QueryCache(registry=registry)
            self._tenants[name] = _Tenant(
                name,
                engine,
                registry,
                self._loop,
                max_pending=config.max_pending_records,
                batch_size=config.batch_size,
            )
        self._http_server = await asyncio.start_server(
            self._on_http_connection, config.host, config.http_port
        )
        self.http_port = self._http_server.sockets[0].getsockname()[1]
        if config.socket_port is not None:
            self._socket_server = await asyncio.start_server(
                self._on_socket_connection,
                config.host,
                config.socket_port,
                limit=1 << 20,
            )
            self.socket_port = self._socket_server.sockets[0].getsockname()[1]
        if config.checkpoint_interval is not None and config.checkpoint_dir:
            self._checkpoint_task = self._loop.create_task(self._checkpoint_periodically())
        self._write_ready_file()

    def _tenant_checkpoint_path(self, name: str) -> Optional[str]:
        if not self.config.checkpoint_dir:
            return None
        return os.path.join(self.config.checkpoint_dir, name)

    def _tenant_wal_path(self, name: str) -> Optional[str]:
        wal_dir = getattr(self.config.engine, "wal_dir", None)
        if not wal_dir:
            return None
        return os.path.join(wal_dir, name)

    def _write_ready_file(self) -> None:
        path = self.config.ready_file
        if not path:
            return
        payload = {
            "pid": os.getpid(),
            "host": self.config.host,
            "http_port": self.http_port,
            "socket_port": self.socket_port,
            "tenants": list(self.config.tenants),
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)

    async def _checkpoint_periodically(self) -> None:
        """The periodic-checkpoint loop.  Deliberately unkillable short of
        cancellation: *any* per-tenant failure — transient
        ``CheckpointError``, full disk, even a bug in the checkpoint layer —
        is logged, counted in that tenant's registry
        (``serve.checkpoint.failures``), and survived.  A loop that dies
        silently means no further checkpoints with no signal, which is the
        one unacceptable outcome."""
        assert self.config.checkpoint_interval is not None
        while True:
            await asyncio.sleep(self.config.checkpoint_interval)
            for name, tenant in self._tenants.items():
                path = self._tenant_checkpoint_path(name)
                if path is None:  # pragma: no cover - task only starts with a dir
                    continue
                try:
                    await tenant.drain()
                    await tenant.checkpoint(path)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - loop must stay alive
                    tenant.checkpoint_failures.inc()
                    print(
                        f"warning: periodic checkpoint for tenant {name!r}"
                        f" failed: {type(error).__name__}: {error}",
                        file=sys.stderr,
                    )

    def request_stop(self) -> None:
        """Thread-safe stop signal (what SIGTERM/SIGINT hook into)."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    async def shutdown(self) -> None:
        """Stop listening, drain, checkpoint, persist metrics, close.

        Safe to call twice (the second call is a no-op) and safe to call
        even if ``start`` only partially completed.
        """
        if self._shutdown_started:
            return
        self._shutdown_started = True
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
        for server in (self._http_server, self._socket_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        # Release standing subscriptions *before* waiting on connection
        # tasks: each subscriber writes its final "end" line and closes, so
        # the wait below is a real drain rather than a timeout.
        if self._subs_stop is not None:
            self._subs_stop.set()
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
        # Drain, snapshot, checkpoint, close — best-effort per tenant, so one
        # dead worker fleet cannot keep the others from persisting cleanly.
        for name, tenant in self._tenants.items():
            try:
                await tenant.drain()
            except SWSampleError as error:
                print(f"warning: tenant {name!r} drain failed: {error}", file=sys.stderr)
        snapshots: Optional[Dict[str, Dict[str, Any]]] = None
        if self.config.metrics_out:
            # Snapshot before closing: a ProcessEngine fleet cannot answer
            # metrics queries once its workers are gone.
            snapshots = {
                name: await tenant.metrics_snapshot()
                for name, tenant in self._tenants.items()
            }
        for name, tenant in self._tenants.items():
            path = self._tenant_checkpoint_path(name)
            if path is None:
                continue
            try:
                await tenant.checkpoint(path)
            except (SWSampleError, OSError) as error:
                print(
                    f"warning: tenant {name!r} shutdown checkpoint failed: {error}",
                    file=sys.stderr,
                )
        for tenant in self._tenants.values():
            try:
                await tenant.aclose()
            except SWSampleError as error:
                # close() re-raises a sticky WorkerFailure so callers cannot
                # miss it; at shutdown the fleet is already reaped — log it
                # and keep closing the other tenants.
                print(
                    f"warning: tenant {tenant.name!r} closed with a failure:"
                    f" {error}",
                    file=sys.stderr,
                )
        if snapshots is not None:
            self._write_metrics_out(snapshots)
        if self.config.ready_file:
            try:
                os.unlink(self.config.ready_file)
            except OSError:
                pass

    def _write_metrics_out(self, snapshots: Dict[str, Dict[str, Any]]) -> None:
        if self.config.metrics_format == "prom":
            rendered = to_prometheus_text(self._registry.snapshot())
            rendered += labeled_prometheus_text(snapshots, "tenant")
        else:
            rendered = (
                json.dumps(
                    {"server": self._registry.snapshot(), "tenants": snapshots},
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        assert self.config.metrics_out is not None
        if self.config.metrics_out == "-":
            sys.stdout.write(rendered)
            return
        try:
            with open(self.config.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        except OSError as error:
            print(
                f"error: cannot write metrics to {self.config.metrics_out}: {error}",
                file=sys.stderr,
            )

    async def _serve_until_stopped(self) -> int:
        await self.start()
        assert self._loop is not None and self._stop_event is not None
        installed: List[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
                pass
        listening = f"listening on http://{self.config.host}:{self.http_port}"
        if self.socket_port is not None:
            listening += f" (raw socket {self.config.host}:{self.socket_port})"
        print(listening, flush=True)
        try:
            await self._stop_event.wait()
        finally:
            for signum in installed:
                self._loop.remove_signal_handler(signum)
            await self.shutdown()
        return 0

    def run(self) -> int:
        """Run the daemon to completion on a fresh event loop (the CLI
        entry point; must be the main thread for signal handling)."""
        return asyncio.run(self._serve_until_stopped())

    # -- HTTP ------------------------------------------------------------------

    async def _on_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._handle_http(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._http_requests.inc()
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, body = request
            subscribe = self._subscribe_target(target)
            if subscribe is not None:
                # Streaming response: headers + JSONL deltas until shutdown
                # or disconnect, delimited by connection close (no
                # Content-Length).  Setup errors (_HttpError) raised before
                # the status line fall through to the normal error path.
                await self._handle_subscribe(method, subscribe, body, writer)
                return
            status, content_type, payload, headers = await self._route(method, target, body)
        except _HttpError as error:
            self._http_errors.inc()
            status, content_type, payload, headers = (
                error.status,
                "application/json",
                _json_body({"error": error.message}),
                error.headers,
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as error:  # noqa: BLE001 - the daemon must not die per-request
            self._http_errors.inc()
            status, content_type, payload, headers = (
                500,
                "application/json",
                _json_body({"error": f"{type(error).__name__}: {error}"}),
                (),
            )
        reason = _HTTP_REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(payload)}")
        for key, value in headers:
            head.append(f"{key}: {value}")
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(100):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" not in line:
                raise _HttpError(400, "malformed header line")
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        if "transfer-encoding" in headers:
            raise _HttpError(411, "chunked bodies are not supported; send Content-Length")
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length: {raw_length!r}") from None
        if length < 0:
            raise _HttpError(400, f"bad Content-Length: {raw_length!r}")
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                f"body of {length} bytes exceeds the {self.config.max_body_bytes}-byte"
                " limit; split the batch or use the raw-socket listener",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    def _tenant_or_404(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise _HttpError(404, f"unknown tenant {name!r}")
        return tenant

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        split = urlsplit(target)
        path = split.path
        params = parse_qs(split.query)
        if path == "/healthz":
            _require(method, "GET")
            return _json_response(200, self._health_payload())
        if path == "/metrics":
            _require(method, "GET")
            return await self._metrics_response()
        if path == "/v1/tenants":
            _require(method, "GET")
            return _json_response(200, {"tenants": sorted(self._tenants)})
        segments = [segment for segment in path.split("/") if segment]
        if len(segments) == 3 and segments[0] == "v1":
            _, tenant_name, action = segments
            tenant = self._tenant_or_404(tenant_name)
            if action == "ingest":
                _require(method, "POST")
                return await self._ingest_response(tenant, body)
            if action == "query":
                _require(method, "POST")
                return await self._query_response(tenant, body)
            if action == "checkpoint":
                _require(method, "POST")
                return await self._checkpoint_response(tenant)
            handler = {
                "sample": self._sample_response,
                "hottest": self._hottest_response,
                "frequent": self._frequent_response,
                "moments": self._moments_response,
                "stats": self._stats_response,
            }.get(action)
            if handler is not None:
                _require(method, "GET")
                return await handler(tenant, params)
        raise _HttpError(404, f"no route for {path!r}")

    def _health_payload(self) -> Dict[str, Any]:
        # Loop-side state only: health must answer even when every engine
        # thread is busy chewing a batch.  ``liveness()`` is explicitly
        # lock-free on every engine flavour, so a mid-recovery fleet — the
        # moment health matters most — still answers instantly.
        degraded = False
        tenants: Dict[str, Any] = {}
        for name, tenant in self._tenants.items():
            entry: Dict[str, Any] = {
                "pending_records": tenant.pending_records,
                "ingested_records": tenant.ingested_records,
            }
            liveness = getattr(tenant.engine, "liveness", None)
            if callable(liveness):
                try:
                    entry["liveness"] = liveness()
                except Exception:  # pragma: no cover - torn engine
                    entry["liveness"] = {"degraded": True, "error": "unavailable"}
                if entry["liveness"].get("degraded") or entry["liveness"].get("failed"):
                    degraded = True
            tenants[name] = entry
        status = "ok" if not self._shutdown_started else "stopping"
        if degraded and status == "ok":
            status = "degraded"
        return {"status": status, "degraded": degraded, "tenants": tenants}

    async def _metrics_response(self) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        snapshots = {
            name: await tenant.metrics_snapshot()
            for name, tenant in self._tenants.items()
        }
        text = to_prometheus_text(self._registry.snapshot())
        text += labeled_prometheus_text(snapshots, "tenant")
        return 200, "text/plain; version=0.0.4", text.encode("utf-8"), ()

    async def _ingest_response(
        self, tenant: _Tenant, body: bytes
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise _HttpError(400, f"body is not UTF-8: {error}") from None
        if not text.strip():
            return _json_response(200, {"tenant": tenant.name, "ingested": 0})
        future = tenant.try_ingest(text)
        if future is None:
            raise _HttpError(
                429,
                f"tenant {tenant.name!r} has {tenant.pending_records} records pending"
                f" (limit {self.config.max_pending_records}); retry later",
                headers=(("Retry-After", str(tenant.retry_after())),),
            )
        try:
            ingested = await future
        except (ConfigurationError, StreamOrderError) as error:
            raise _HttpError(400, str(error)) from None
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        return _json_response(200, {"tenant": tenant.name, "ingested": ingested})

    async def _query_response(
        self, tenant: _Tenant, body: bytes
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        """``POST /v1/<tenant>/query``: a multi-op batch in one engine trip.

        Body: ``{"ops": [...]}`` (or a bare JSON array of ops).  Shape
        errors fail the whole request with 400 — batches are all-or-nothing
        on shape — while per-op *runtime* failures (missing key, empty
        window) come back inline as ``{"ok": false, ...}`` results.
        """
        document = _json_document(body)
        ops_json = document.get("ops") if isinstance(document, dict) else document
        if not isinstance(ops_json, list) or not ops_json:
            raise _HttpError(400, 'query body needs a non-empty "ops" array')
        try:
            ops = [_query_op_from_json(item) for item in ops_json]
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        try:
            outcomes = await tenant.query(tenant.engine.query_batch, ops)
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        results = [
            _query_outcome_payload(op, outcome)
            for op, outcome in zip(ops, outcomes)
        ]
        return _json_response(200, {"tenant": tenant.name, "results": results})

    def _subscribe_target(self, target: str) -> Optional[str]:
        """The tenant name when ``target`` is ``/v1/<tenant>/subscribe``."""
        segments = [seg for seg in urlsplit(target).path.split("/") if seg]
        if len(segments) == 3 and segments[0] == "v1" and segments[2] == "subscribe":
            return segments[1]
        return None

    async def _handle_subscribe(
        self,
        method: str,
        tenant_name: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """``POST /v1/<tenant>/subscribe``: a standing query pushed as JSONL.

        Body: one op document (same vocabulary as ``/query``) plus an
        optional ``"interval"`` in seconds.  The first evaluation always
        pushes a snapshot delta; afterwards a line is pushed only when the
        re-evaluated answer *changes* — between ingest batches every
        re-evaluation is a pure cache hit.  The stream ends with an
        ``{"event": "end"}`` line on daemon shutdown (or silently when the
        consumer disconnects).  All validation happens before the status
        line goes out, so setup failures still produce clean HTTP errors.
        """
        _require(method, "POST")
        tenant = self._tenant_or_404(tenant_name)
        document = _json_document(body)
        if not isinstance(document, dict):
            raise _HttpError(400, "subscribe body must be a JSON object")
        interval = document.get("interval", DEFAULT_SUBSCRIBE_INTERVAL)
        if not isinstance(interval, (int, float)) or not interval > 0:
            raise _HttpError(400, f"interval must be a positive number, got {interval!r}")
        interval = float(interval)
        try:
            op = _query_op_from_json(document)
            # Validate shape now (coordinator-side, no pool access) so a
            # malformed op is a 400, not a mid-stream error line.
            tenant.engine._normalize_query_op(op)
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        except AttributeError:
            raise _HttpError(503, "tenant engine does not support batched queries") from None
        self._sub_conns.inc()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        stop = self._subs_stop
        assert stop is not None
        seq = 0
        last: Any = _UNEVALUATED
        while not stop.is_set() and not writer.is_closing():
            try:
                outcome = (await tenant.query(tenant.engine.query_batch, [op]))[0]
            except SWSampleError as error:
                # A sticky fleet failure ends the stream with an error line;
                # the consumer re-subscribes once the daemon is healthy.
                writer.write(_json_body({"event": "error", "error": str(error)}))
                await writer.drain()
                return
            if outcome != last:
                last = outcome
                seq += 1
                self._sub_deltas.inc()
                writer.write(
                    _json_body(
                        {
                            "seq": seq,
                            "tenant": tenant.name,
                            "result": _query_outcome_payload(op, outcome),
                        }
                    )
                )
                await writer.drain()
            try:
                await asyncio.wait_for(stop.wait(), timeout=interval)
            except asyncio.TimeoutError:
                pass
        writer.write(_json_body({"event": "end", "deltas": seq}))
        await writer.drain()

    async def _checkpoint_response(
        self, tenant: _Tenant
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        path = self._tenant_checkpoint_path(tenant.name)
        if path is None:
            raise _HttpError(400, "server started without --checkpoint-dir")
        await tenant.drain()
        result = await tenant.checkpoint(path)
        return _json_response(
            200,
            {
                "tenant": tenant.name,
                "path": str(result.path),
                "segments_written": result.segments_written,
                "segments_reused": result.segments_reused,
            },
        )

    async def _sample_response(
        self, tenant: _Tenant, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        raw = _single_param(params, "key")
        if raw is None:
            raise _HttpError(400, "sample needs a ?key= parameter")
        try:
            key = _parse_key(raw)
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        try:
            elements = await tenant.query(tenant.engine.sample, key)
        except KeyError:
            raise _HttpError(404, f"no live sampler for key {raw!r}") from None
        except EmptyWindowError:
            return _json_response(
                200, {"tenant": tenant.name, "key": key, "sample": [], "expired": True}
            )
        except (InsufficientSampleError, SamplingFailureError) as error:
            raise _HttpError(409, str(error)) from None
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        return _json_response(
            200,
            {
                "tenant": tenant.name,
                "key": key,
                "sample": [_element_payload(element) for element in elements],
                "expired": False,
            },
        )

    async def _hottest_response(
        self, tenant: _Tenant, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        top = _int_param(params, "top", 10)
        try:
            hottest = await tenant.query(tenant.engine.hottest_keys, top)
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        return _json_response(
            200,
            {
                "tenant": tenant.name,
                "hottest": [
                    {"key": key, "arrivals": arrivals} for key, arrivals in hottest
                ],
            },
        )

    async def _frequent_response(
        self, tenant: _Tenant, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        threshold = _float_param(params, "threshold", 0.01)
        top = _int_param(params, "top", None)
        try:
            frequent = await tenant.query(
                lambda: tenant.engine.merged_frequent_items(threshold, top=top)
            )
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        return _json_response(
            200,
            {
                "tenant": tenant.name,
                "threshold": threshold,
                "frequent": [
                    {"value": value, "frequency": frequency}
                    for value, frequency in frequent
                ],
            },
        )

    async def _moments_response(
        self, tenant: _Tenant, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        order = _float_param(params, "order", 2.0)
        try:
            moments = await tenant.query(tenant.engine.per_key_moments, order)
        except ConfigurationError as error:
            raise _HttpError(400, str(error)) from None
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        return _json_response(
            200,
            {
                "tenant": tenant.name,
                "order": order,
                "moments": [
                    {"key": key, "moment": moment} for key, moment in sorted(
                        moments.items(), key=lambda item: repr(item[0])
                    )
                ],
            },
        )

    async def _stats_response(
        self, tenant: _Tenant, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
        try:
            stats = await tenant.query(tenant.engine.stats)
        except ShardRecovering as error:
            raise _degraded_error(error) from None
        except WorkerFailure as error:
            raise _HttpError(503, str(error)) from None
        payload = dict(stats)
        payload["tenant"] = tenant.name
        payload["pending_records"] = tenant.pending_records
        return _json_response(200, payload)

    # -- raw socket ------------------------------------------------------------

    async def _on_socket_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._socket_conns.inc()
        try:
            await self._handle_socket(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _handle_socket(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Line-per-record ingest: buffer ``batch_size`` lines, push each
        batch with *blocking* admission, answer one JSON status line at EOF.

        ``#tenant NAME`` switches the target namespace (the pending buffer is
        flushed first, so records never leak across tenants).
        """
        tenant = self._tenants[self.config.tenants[0]]
        buffered: List[str] = []
        futures: List["asyncio.Future[int]"] = []
        error: Optional[str] = None

        async def _flush_buffer(target: _Tenant) -> None:
            if buffered:
                text = "\n".join(buffered) + "\n"
                buffered.clear()
                # Await *admission* (not completion): a full backlog stalls
                # the read loop here, so TCP pushes back on the sender.
                futures.append(await target.admit(text))

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.decode("utf-8").strip()
                if not stripped:
                    continue
                if stripped.startswith("#tenant "):
                    name = stripped[len("#tenant "):].strip()
                    next_tenant = self._tenants.get(name)
                    await _flush_buffer(tenant)
                    if next_tenant is None:
                        # The valid prefix still lands (ingested-prefix
                        # contract); everything after the bad directive dies.
                        error = f"unknown tenant {name!r}"
                        break
                    tenant = next_tenant
                    continue
                if stripped.startswith("#"):
                    continue
                buffered.append(stripped)
                if len(buffered) >= self.config.batch_size:
                    await _flush_buffer(tenant)
        except UnicodeDecodeError as decode_error:
            error = f"stream is not UTF-8: {decode_error}"
        if error is None:
            await _flush_buffer(tenant)
        ingested = 0
        for future in futures:
            try:
                ingested += await future
            except SWSampleError as ingest_error:
                if error is None:
                    error = str(ingest_error)
        payload: Dict[str, Any] = {"ok": error is None, "ingested": ingested}
        if error is not None:
            payload["error"] = error
        writer.write((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()


class ServeThread:
    """Host a :class:`ServeApp` on a private event loop in a daemon thread.

    The in-process harness for tests and examples: ``start()`` returns once
    the listeners are bound (raising whatever ``ServeApp.start`` raised),
    ``stop()`` triggers the same graceful shutdown as SIGTERM and joins the
    thread.  Also a context manager.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.app = ServeApp(config)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> "ServeThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="swsample-serve",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):  # pragma: no cover - hang guard
            raise RuntimeError("serve thread did not come up within 60s")
        if self._error is not None:
            self._thread.join(timeout=10)
            raise self._error
        return self

    async def _main(self) -> None:
        try:
            await self.app.start()
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        assert self.app._stop_event is not None
        await self.app._stop_event.wait()
        await self.app.shutdown()

    @property
    def http_port(self) -> int:
        assert self.app.http_port is not None
        return self.app.http_port

    @property
    def socket_port(self) -> Optional[int]:
        return self.app.socket_port

    def stop(self) -> None:
        if self._thread is None:
            return
        self.app.request_stop()
        self._thread.join(timeout=60)
        if self._thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("serve thread did not shut down within 60s")
        self._thread = None

    def __enter__(self) -> "ServeThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- small response helpers ---------------------------------------------------


def _json_body(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _json_response(
    status: int, payload: Any
) -> Tuple[int, str, bytes, Sequence[Tuple[str, str]]]:
    return status, "application/json", _json_body(payload), ()


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise _HttpError(405, f"use {expected} for this endpoint")


def _single_param(params: Dict[str, List[str]], name: str) -> Optional[str]:
    values = params.get(name)
    if not values:
        return None
    return values[-1]


def _int_param(params: Dict[str, List[str]], name: str, default: Optional[int]) -> Any:
    raw = _single_param(params, name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise _HttpError(400, f"{name} must be an integer, got {raw!r}") from None


def _float_param(params: Dict[str, List[str]], name: str, default: Optional[float]) -> Any:
    raw = _single_param(params, name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise _HttpError(400, f"{name} must be a number, got {raw!r}") from None
