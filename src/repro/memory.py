"""Word-RAM memory accounting used throughout the library.

The paper states every bound in *memory words*: "we assume that a single
memory word is sufficient to store a stream element or its index or a
timestamp" (§1.4).  Measuring Python object sizes would bury the asymptotic
behaviour under interpreter overhead, so every sampler instead reports its
footprint under the paper's model via ``memory_words()``.

:class:`MemoryModel` centralises the per-field charges so that the accounting
is identical across our algorithms and the baselines, and
:class:`MemoryMeter` offers a tiny helper for summing the charges of a
composite structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryModel", "MemoryMeter", "WORD_MODEL"]


@dataclass(frozen=True)
class MemoryModel:
    """Charges (in words) for each kind of stored quantity.

    The defaults implement the paper's model: one word per stored element
    value, index, timestamp, priority (random key) or counter.  Constant-size
    configuration (the window length ``n``, the sample size ``k``) is charged
    through :attr:`constant_words` exactly once per sampler.
    """

    element_words: int = 1
    index_words: int = 1
    timestamp_words: int = 1
    priority_words: int = 1
    counter_words: int = 1
    constant_words: int = 1

    def element(self, count: int = 1) -> int:
        """Words charged for ``count`` stored element values."""
        return self.element_words * count

    def index(self, count: int = 1) -> int:
        """Words charged for ``count`` stored indexes."""
        return self.index_words * count

    def timestamp(self, count: int = 1) -> int:
        """Words charged for ``count`` stored timestamps."""
        return self.timestamp_words * count

    def priority(self, count: int = 1) -> int:
        """Words charged for ``count`` stored priorities / random keys."""
        return self.priority_words * count

    def counter(self, count: int = 1) -> int:
        """Words charged for ``count`` live counters."""
        return self.counter_words * count

    def constant(self, count: int = 1) -> int:
        """Words charged for ``count`` constant configuration values."""
        return self.constant_words * count


#: The shared default model (all charges equal to one word).
WORD_MODEL = MemoryModel()


@dataclass
class MemoryMeter:
    """Accumulates word charges for a composite data structure.

    Example
    -------
    >>> meter = MemoryMeter()
    >>> meter.add_elements(2).add_indexes(2).add_timestamps(1)
    MemoryMeter(...)
    >>> meter.total
    5
    """

    model: MemoryModel = field(default_factory=lambda: WORD_MODEL)
    total: int = 0

    def add_elements(self, count: int = 1) -> "MemoryMeter":
        self.total += self.model.element(count)
        return self

    def add_indexes(self, count: int = 1) -> "MemoryMeter":
        self.total += self.model.index(count)
        return self

    def add_timestamps(self, count: int = 1) -> "MemoryMeter":
        self.total += self.model.timestamp(count)
        return self

    def add_priorities(self, count: int = 1) -> "MemoryMeter":
        self.total += self.model.priority(count)
        return self

    def add_counters(self, count: int = 1) -> "MemoryMeter":
        self.total += self.model.counter(count)
        return self

    def add_constants(self, count: int = 1) -> "MemoryMeter":
        self.total += self.model.constant(count)
        return self

    def add_words(self, count: int) -> "MemoryMeter":
        """Add a raw word count (for sub-structures that already report words)."""
        self.total += count
        return self
