"""Synthetic value generators.

The paper motivates sliding windows with sensor feeds, stock-market tickers
and network measurements (§1).  The generators below produce the value part of
such streams; arrival times are produced separately by
:mod:`repro.streams.arrivals` so that the same value process can be combined
with different arrival processes.

All generators are plain Python iterators over raw values.  They are infinite
unless a ``length`` is given, deterministic under a seed, and dependency-free.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from ..rng import RngLike, ensure_rng

__all__ = [
    "uniform_integers",
    "zipfian_cumulative",
    "zipfian_integers",
    "gaussian_walk",
    "sensor_drift",
    "categorical_bursts",
    "ascending_integers",
    "repeated_pattern",
    "mixture",
    "take",
]


def take(generator: Iterable[Any], count: int) -> List[Any]:
    """Materialise the first ``count`` values of a generator."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return list(itertools.islice(generator, count))


def uniform_integers(domain: int, rng: RngLike = None, length: Optional[int] = None) -> Iterator[int]:
    """Uniform integers from ``[0, domain)``.

    The workhorse workload for uniformity and memory experiments: every value
    is equally likely, so any bias observed in the sampler's output is a bias
    of the sampler, not of the data.
    """
    if domain <= 0:
        raise ValueError("domain must be positive")
    random_source = ensure_rng(rng)
    counter = itertools.count() if length is None else range(length)
    for _ in counter:
        yield random_source.randrange(domain)


def zipfian_cumulative(domain: int, skew: float) -> List[float]:
    """The normalised cumulative Zipf distribution over ``[0, domain)``.

    Shared by :func:`zipfian_integers` (per-draw binary search) and the keyed
    workload builders (batch draws via ``random.choices(cum_weights=...)``).
    """
    if domain <= 0:
        raise ValueError("domain must be positive")
    if skew <= 0:
        raise ValueError("skew must be positive")
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain)]
    total = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    cumulative[-1] = 1.0
    return cumulative


def zipfian_integers(
    domain: int,
    skew: float = 1.1,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[int]:
    """Zipf-distributed integers from ``[0, domain)`` with exponent ``skew``.

    Heavy-tailed value distributions are the standard workload for frequency
    moments and entropy estimation (Corollaries 5.2 and 5.4): a few values are
    very frequent, most are rare.
    """
    random_source = ensure_rng(rng)
    cumulative = zipfian_cumulative(domain, skew)

    def draw() -> int:
        u = random_source.random()
        # Binary search over the cumulative distribution.
        lo, hi = 0, domain - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    counter = itertools.count() if length is None else range(length)
    for _ in counter:
        yield draw()


def gaussian_walk(
    start: float = 100.0,
    volatility: float = 0.5,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[float]:
    """A Gaussian random walk — a toy model of a stock-price tick stream."""
    if volatility < 0:
        raise ValueError("volatility must be non-negative")
    random_source = ensure_rng(rng)
    price = float(start)
    counter = itertools.count() if length is None else range(length)
    for _ in counter:
        price += random_source.gauss(0.0, volatility)
        yield price


def sensor_drift(
    baseline: float = 20.0,
    drift_per_step: float = 0.001,
    noise: float = 0.2,
    spike_probability: float = 0.001,
    spike_magnitude: float = 15.0,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[float]:
    """A slowly drifting sensor reading with occasional spikes.

    Models the "sensor measurement" workload from the paper's introduction:
    the interesting statistics live in the recent window because the global
    distribution drifts over time.
    """
    random_source = ensure_rng(rng)
    counter = itertools.count() if length is None else range(length)
    for step in counter:
        value = baseline + drift_per_step * step + random_source.gauss(0.0, noise)
        if random_source.random() < spike_probability:
            value += spike_magnitude
        yield value


def categorical_bursts(
    categories: Sequence[Any],
    burst_length: int = 50,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[Any]:
    """Values arriving in bursts of a single category.

    Useful for stressing uniformity: a sampler that over-weights recent
    elements will over-represent the most recent burst.
    """
    if not categories:
        raise ValueError("categories must be non-empty")
    if burst_length <= 0:
        raise ValueError("burst_length must be positive")
    random_source = ensure_rng(rng)
    produced = 0
    while True:
        category = random_source.choice(list(categories))
        for _ in range(burst_length):
            if length is not None and produced >= length:
                return
            yield category
            produced += 1
        if length is not None and produced >= length:
            return


def ascending_integers(start: int = 0, length: Optional[int] = None) -> Iterator[int]:
    """The deterministic stream ``start, start+1, start+2, ...``.

    Because value equals arrival order, the empirical distribution of sampled
    *values* directly reveals the distribution over window *positions* — the
    primary tool of the uniformity experiments (E5).
    """
    counter = itertools.count(start) if length is None else range(start, start + length)
    for value in counter:
        yield value


def repeated_pattern(pattern: Sequence[Any], length: Optional[int] = None) -> Iterator[Any]:
    """Cycle through ``pattern`` forever (or for ``length`` values)."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    produced = 0
    for value in itertools.cycle(pattern):
        if length is not None and produced >= length:
            return
        yield value
        produced += 1


def mixture(
    generators: Sequence[Iterator[Any]],
    weights: Optional[Sequence[float]] = None,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[Any]:
    """Interleave several generators, picking the source of each element at
    random according to ``weights``."""
    if not generators:
        raise ValueError("generators must be non-empty")
    random_source = ensure_rng(rng)
    if weights is None:
        weights = [1.0] * len(generators)
    if len(weights) != len(generators):
        raise ValueError("weights must match generators")
    total = float(sum(weights))
    if total <= 0 or any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative and sum to a positive value")
    normalised = [w / total for w in weights]
    counter = itertools.count() if length is None else range(length)
    sources = list(generators)
    for _ in counter:
        u = random_source.random()
        cumulative = 0.0
        chosen = sources[-1]
        for source, weight in zip(sources, normalised):
            cumulative += weight
            if u < cumulative:
                chosen = source
                break
        try:
            yield next(chosen)
        except StopIteration:
            return
