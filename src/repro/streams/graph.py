"""Graph edge-stream generators for the triangle-counting application.

Corollary 5.3 transfers the Buriol et al. triangle estimator to sliding
windows.  The estimator consumes a stream of undirected edges ``(u, v)``;
the generators below produce such streams with a known (computable) number of
triangles so the estimator's error can be measured.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..rng import RngLike, ensure_rng

__all__ = [
    "Edge",
    "erdos_renyi_edges",
    "planted_triangles_edges",
    "power_law_edges",
    "count_triangles",
    "normalize_edge",
]

#: An undirected edge as an ordered pair of vertex ids.
Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Canonical (sorted) representation of an undirected edge."""
    if u == v:
        raise ValueError("self-loops are not allowed")
    return (u, v) if u < v else (v, u)


def erdos_renyi_edges(
    num_vertices: int,
    edge_probability: float,
    rng: RngLike = None,
    shuffle: bool = True,
) -> List[Edge]:
    """All edges of a G(n, p) random graph, in random arrival order."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if not 0 <= edge_probability <= 1:
        raise ValueError("edge_probability must lie in [0, 1]")
    random_source = ensure_rng(rng)
    edges: List[Edge] = []
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if random_source.random() < edge_probability:
                edges.append((u, v))
    if shuffle:
        random_source.shuffle(edges)
    return edges


def planted_triangles_edges(
    num_triangles: int,
    noise_edges: int = 0,
    num_noise_vertices: int = 100,
    rng: RngLike = None,
    shuffle: bool = True,
) -> List[Edge]:
    """A graph made of ``num_triangles`` vertex-disjoint triangles plus random
    noise edges among a separate vertex pool (noise edges may create a few
    extra triangles; use :func:`count_triangles` for the exact count)."""
    if num_triangles < 0:
        raise ValueError("num_triangles must be non-negative")
    random_source = ensure_rng(rng)
    edges: List[Edge] = []
    for t in range(num_triangles):
        a, b, c = 3 * t, 3 * t + 1, 3 * t + 2
        edges.extend([(a, b), (b, c), (a, c)])
    noise_base = 3 * num_triangles
    seen: Set[Edge] = set(edges)
    attempts = 0
    while len(edges) - 3 * num_triangles < noise_edges and attempts < noise_edges * 50 + 100:
        attempts += 1
        u = noise_base + random_source.randrange(num_noise_vertices)
        v = noise_base + random_source.randrange(num_noise_vertices)
        if u == v:
            continue
        edge = normalize_edge(u, v)
        if edge in seen:
            continue
        seen.add(edge)
        edges.append(edge)
    if shuffle:
        random_source.shuffle(edges)
    return edges


def power_law_edges(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.0,
    rng: RngLike = None,
) -> List[Edge]:
    """Edges whose endpoints are drawn from a power-law vertex distribution,
    producing a few hubs and many triangles through them."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    random_source = ensure_rng(rng)
    weights = [1.0 / (i + 1) ** exponent for i in range(num_vertices)]
    total = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for w in weights:
        running += w / total
        cumulative.append(running)
    cumulative[-1] = 1.0

    def draw_vertex() -> int:
        u = random_source.random()
        lo, hi = 0, num_vertices - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    edges: List[Edge] = []
    seen: Set[Edge] = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 100 * num_edges + 1000:
        attempts += 1
        u, v = draw_vertex(), draw_vertex()
        if u == v:
            continue
        edge = normalize_edge(u, v)
        if edge in seen:
            continue
        seen.add(edge)
        edges.append(edge)
    return edges


def count_triangles(edges: Sequence[Edge]) -> int:
    """Exact number of triangles in the undirected graph given by ``edges``.

    Uses the standard neighbour-intersection count; intended for the modest
    graph sizes used in tests and experiments.
    """
    adjacency: dict[int, Set[int]] = {}
    for u, v in edges:
        a, b = normalize_edge(u, v)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    triangles = 0
    for u, v in {normalize_edge(u, v) for u, v in edges}:
        common = adjacency.get(u, set()) & adjacency.get(v, set())
        triangles += len(common)
    # Every triangle is counted once per edge, i.e. three times.
    return triangles // 3
