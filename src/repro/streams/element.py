"""The stream element record shared by every component.

The paper's stream is a sequence ``p_0, p_1, ...`` where each element carries
an arrival index and, for timestamp-based windows, an arrival timestamp
``T(p_i)`` with ``T(p_i) <= T(p_{i+1})``.  :class:`StreamElement` bundles the
three pieces (value, index, timestamp) so that samplers, window trackers and
estimators all speak the same type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, NamedTuple, Optional, Sequence

__all__ = ["StreamElement", "KeyedRecord", "make_stream", "values_of", "indexes_of"]


@dataclass(frozen=True, slots=True)
class StreamElement:
    """One element of a data stream.

    Attributes
    ----------
    value:
        The payload carried by the element (an int, a tuple for graph edges,
        an arbitrary object for application streams).
    index:
        The 0-based arrival position in the stream (the paper's ``i`` in
        ``p_i``).
    timestamp:
        The arrival time ``T(p_i)``.  For sequence-based windows the timestamp
        is ignored and may simply equal the index.
    """

    value: Any
    index: int
    timestamp: float = 0.0

    def is_active(self, now: float, window_span: float) -> bool:
        """Whether the element is active at time ``now`` for a timestamp-based
        window of span ``window_span`` (the paper's ``t0``): active iff
        ``now - T(p) < t0``."""
        return now - self.timestamp < window_span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamElement(value={self.value!r}, index={self.index}, t={self.timestamp})"


class KeyedRecord(NamedTuple):
    """One record of a *keyed* stream: many logical streams multiplexed on one
    feed, distinguished by ``key`` (a user id, flow tuple, topic name, ...).

    :class:`~repro.engine.ShardedEngine` demultiplexes such records onto
    per-key sliding-window samplers.  Being a ``NamedTuple``, a record is
    interchangeable with a plain ``(key, value, timestamp)`` (or two-field
    ``(key, value)``) tuple, so high-volume producers can skip the class
    entirely.
    """

    key: Any
    value: Any
    timestamp: Optional[float] = None


def make_stream(
    values: Iterable[Any],
    timestamps: Iterable[float] | None = None,
    start_index: int = 0,
) -> List[StreamElement]:
    """Build a list of :class:`StreamElement` from raw values.

    When ``timestamps`` is omitted, the timestamp of each element equals its
    index, which turns a sequence-based window of size ``n`` and a
    timestamp-based window of span ``n`` into the same window — handy in tests.
    """
    elements: List[StreamElement] = []
    if timestamps is None:
        for offset, value in enumerate(values):
            index = start_index + offset
            elements.append(StreamElement(value=value, index=index, timestamp=float(index)))
        return elements

    ts_list = list(timestamps)
    values_list = list(values)
    if len(ts_list) != len(values_list):
        raise ValueError(
            f"values and timestamps must have equal length, got {len(values_list)} and {len(ts_list)}"
        )
    previous = float("-inf")
    for offset, (value, ts) in enumerate(zip(values_list, ts_list)):
        if ts < previous:
            raise ValueError("timestamps must be non-decreasing")
        previous = ts
        elements.append(StreamElement(value=value, index=start_index + offset, timestamp=float(ts)))
    return elements


def values_of(elements: Sequence[StreamElement]) -> List[Any]:
    """Extract the values of a sequence of elements (test/analysis helper)."""
    return [element.value for element in elements]


def indexes_of(elements: Sequence[StreamElement]) -> List[int]:
    """Extract the indexes of a sequence of elements (test/analysis helper)."""
    return [element.index for element in elements]


def iter_with_indexes(values: Iterable[Any], start_index: int = 0) -> Iterator[StreamElement]:
    """Lazily wrap raw values into :class:`StreamElement` records."""
    for offset, value in enumerate(values):
        index = start_index + offset
        yield StreamElement(value=value, index=index, timestamp=float(index))
