"""Stream substrates: elements, value generators, arrival processes, workloads.

The samplers in :mod:`repro.core` consume ``(value, timestamp)`` pairs one at
a time; this package provides everything needed to *produce* such streams for
examples, tests and benchmarks.
"""

from .element import StreamElement, make_stream, values_of, indexes_of
from . import arrivals, generators, graph, workloads
from .workloads import Workload, WORKLOADS, available_workloads, build_workload

__all__ = [
    "StreamElement",
    "make_stream",
    "values_of",
    "indexes_of",
    "arrivals",
    "generators",
    "graph",
    "workloads",
    "Workload",
    "WORKLOADS",
    "available_workloads",
    "build_workload",
]
