"""Arrival-time processes for timestamp-based windows.

Sequence-based windows only care about arrival order, but timestamp-based
windows (§3) are defined by arrival *times*: an element ``p`` is active at
time ``t`` iff ``t - T(p) < t0``.  The number of active elements ``n(t)`` is
therefore governed by the arrival process, and the paper's bounds are
functions of ``n``.  The processes below produce non-decreasing timestamp
sequences covering the regimes discussed in the paper:

* constant-rate arrivals (the sequence-based special case),
* Poisson arrivals (asynchronous network/database workloads),
* bursty on/off arrivals (many elements share one timestamp — the paper's
  "items can arrive in bursts at a single step"),
* a diurnal rate profile, and
* the exact doubling burst pattern used in the Ω(log n) lower bound proof of
  Lemma 3.10.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional

from ..rng import RngLike, ensure_rng

__all__ = [
    "constant_rate",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "lower_bound_burst",
]


def constant_rate(step: float = 1.0, start: float = 0.0, length: Optional[int] = None) -> Iterator[float]:
    """One arrival every ``step`` time units.

    With ``step=1`` a timestamp window of span ``t0`` holds exactly ``t0``
    elements, which makes the timestamp algorithms directly comparable to the
    sequence-based ones.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    counter = itertools.count() if length is None else range(length)
    for i in counter:
        yield start + i * step


def poisson_arrivals(
    rate: float = 1.0,
    start: float = 0.0,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[float]:
    """Poisson process arrivals with the given average ``rate`` per time unit."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    random_source = ensure_rng(rng)
    current = float(start)
    counter = itertools.count() if length is None else range(length)
    for _ in counter:
        current += random_source.expovariate(rate)
        yield current


def bursty_arrivals(
    burst_size_mean: float = 20.0,
    gap_mean: float = 10.0,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[float]:
    """On/off bursts: a geometric number of elements share a single timestamp,
    then the clock jumps forward by an exponential gap.

    This is the regime where timestamp-based windows genuinely differ from
    sequence-based ones: ``n(t)`` swings wildly and many elements are tied in
    time.
    """
    if burst_size_mean < 1:
        raise ValueError("burst_size_mean must be at least 1")
    if gap_mean <= 0:
        raise ValueError("gap_mean must be positive")
    random_source = ensure_rng(rng)
    current = 0.0
    produced = 0
    success_probability = 1.0 / burst_size_mean
    while True:
        burst = 1 + _geometric(random_source, success_probability)
        for _ in range(burst):
            if length is not None and produced >= length:
                return
            yield current
            produced += 1
        if length is not None and produced >= length:
            return
        current += random_source.expovariate(1.0 / gap_mean)


def _geometric(random_source, success_probability: float) -> int:
    """Number of failures before the first success of a Bernoulli trial."""
    failures = 0
    while random_source.random() > success_probability:
        failures += 1
        if failures > 10_000_000:  # pragma: no cover - numerical safety net
            break
    return failures


def diurnal_arrivals(
    base_rate: float = 1.0,
    amplitude: float = 0.8,
    period: float = 1000.0,
    rng: RngLike = None,
    length: Optional[int] = None,
) -> Iterator[float]:
    """A non-homogeneous Poisson process whose rate oscillates sinusoidally.

    Models day/night traffic patterns; the window population expands and
    contracts smoothly, exercising the covering-decomposition maintenance
    under both growth and shrinkage.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must lie in [0, 1)")
    if period <= 0:
        raise ValueError("period must be positive")
    random_source = ensure_rng(rng)
    current = 0.0
    counter = itertools.count() if length is None else range(length)
    for _ in counter:
        rate = base_rate * (1.0 + amplitude * math.sin(2 * math.pi * current / period))
        rate = max(rate, base_rate * (1.0 - amplitude) * 0.5)
        current += random_source.expovariate(rate)
        yield current


def lower_bound_burst(t0: int, tail_length: int = 0, scale: int = 1) -> List[float]:
    """The arrival pattern from the Lemma 3.10 lower-bound proof.

    For timestamps ``i = 0 .. 2*t0`` the stream delivers ``scale * 2**(2*t0-i)``
    elements at time ``i``; afterwards exactly one element per timestamp for
    ``tail_length`` further steps.  Any correct sampler must remember
    candidates from Ω(log n) distinct timestamps with constant probability.

    The exact pattern is exponentially large in ``t0``; keep ``t0`` small
    (≤ 10) and use ``scale`` to thin it while preserving the doubling shape.
    """
    if t0 <= 0:
        raise ValueError("t0 must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    timestamps: List[float] = []
    for i in range(2 * t0 + 1):
        count = max(1, scale * (2 ** (2 * t0 - i)) // (2 ** t0))
        timestamps.extend([float(i)] * count)
    next_time = float(2 * t0 + 1)
    for j in range(tail_length):
        timestamps.append(next_time + j)
    return timestamps
