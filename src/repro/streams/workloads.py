"""Named, reproducible workload presets.

A *workload* bundles a value generator with an arrival process and a length
into a list of :class:`~repro.streams.element.StreamElement`, ready to be fed
to a sampler.  Benchmarks, examples and tests refer to workloads by name so
that every experiment in EXPERIMENTS.md is reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..rng import RngLike, ensure_rng, spawn
from . import arrivals, generators
from .element import KeyedRecord, StreamElement, make_stream

__all__ = [
    "Workload",
    "WORKLOADS",
    "build_workload",
    "available_workloads",
    "KeyedWorkload",
    "KEYED_WORKLOADS",
    "build_keyed_workload",
    "available_keyed_workloads",
]


@dataclass(frozen=True)
class Workload:
    """A named recipe for generating a stream."""

    name: str
    description: str
    builder: Callable[[int, RngLike], List[StreamElement]]

    def build(self, length: int, rng: RngLike = None) -> List[StreamElement]:
        """Materialise ``length`` elements of this workload."""
        if length <= 0:
            raise ValueError("length must be positive")
        return self.builder(length, rng)


def _uniform_sequence(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.uniform_integers(1024, rng=source), length)
    return make_stream(values)


def _ascending_sequence(length: int, rng: RngLike) -> List[StreamElement]:
    values = generators.take(generators.ascending_integers(), length)
    return make_stream(values)


def _zipf_sequence(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.zipfian_integers(256, skew=1.2, rng=source), length)
    return make_stream(values)


def _stock_ticks(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.gaussian_walk(rng=spawn(source, 1)), length)
    timestamps = generators.take(arrivals.poisson_arrivals(rate=2.0, rng=spawn(source, 2)), length)
    return make_stream(values, timestamps)


def _sensor_poisson(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.sensor_drift(rng=spawn(source, 1)), length)
    timestamps = generators.take(arrivals.poisson_arrivals(rate=1.0, rng=spawn(source, 2)), length)
    return make_stream(values, timestamps)


def _network_bursts(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.zipfian_integers(512, skew=1.1, rng=spawn(source, 1)), length)
    timestamps = generators.take(
        arrivals.bursty_arrivals(burst_size_mean=25.0, gap_mean=8.0, rng=spawn(source, 2)), length
    )
    return make_stream(values, timestamps)


def _diurnal_categorical(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(
        generators.categorical_bursts(list(range(32)), burst_length=40, rng=spawn(source, 1)), length
    )
    timestamps = generators.take(
        arrivals.diurnal_arrivals(base_rate=1.0, amplitude=0.7, period=length / 4.0, rng=spawn(source, 2)),
        length,
    )
    return make_stream(values, timestamps)


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in [
        Workload(
            "uniform-sequence",
            "Uniform integers, one arrival per tick (sequence-window workhorse).",
            _uniform_sequence,
        ),
        Workload(
            "ascending-sequence",
            "Value equals arrival index; used for position-uniformity tests.",
            _ascending_sequence,
        ),
        Workload(
            "zipf-sequence",
            "Zipfian values, one arrival per tick (frequency-moment / entropy workload).",
            _zipf_sequence,
        ),
        Workload(
            "stock-ticks",
            "Gaussian-random-walk prices with Poisson arrival times.",
            _stock_ticks,
        ),
        Workload(
            "sensor-poisson",
            "Drifting sensor readings with Poisson arrival times.",
            _sensor_poisson,
        ),
        Workload(
            "network-bursts",
            "Zipfian packet sizes with bursty on/off arrivals (timestamp-window stress).",
            _network_bursts,
        ),
        Workload(
            "diurnal-categorical",
            "Categorical bursts with a diurnal arrival rate.",
            _diurnal_categorical,
        ),
    ]
}


def available_workloads() -> List[str]:
    """Names of all registered workloads."""
    return sorted(WORKLOADS)


# ---------------------------------------------------------------------------
# Keyed workloads — multiplexed streams for the engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyedWorkload:
    """A named recipe for a *keyed* stream (many logical streams on one feed).

    The builder receives ``(length, num_keys, rng)`` and returns a list of
    :class:`~repro.streams.element.KeyedRecord`, timestamps non-decreasing.
    The key-popularity profile is the interesting axis here: real keyed
    traffic (users, flows, topics) is rarely uniform, and the engine's
    eviction and aggregation behaviour depends on the skew.
    """

    name: str
    description: str
    builder: Callable[[int, int, RngLike], List[KeyedRecord]]

    def build(self, length: int, num_keys: int, rng: RngLike = None) -> List[KeyedRecord]:
        """Materialise ``length`` records spread over ``num_keys`` keys."""
        if length <= 0:
            raise ValueError("length must be positive")
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        return self.builder(length, num_keys, rng)


def _assemble(keys: List[int], values: List[int]) -> List[KeyedRecord]:
    return [
        KeyedRecord(key, value, float(index))
        for index, (key, value) in enumerate(zip(keys, values))
    ]


def _keyed_uniform(length: int, num_keys: int, rng: RngLike) -> List[KeyedRecord]:
    source = ensure_rng(rng)
    keys = source.choices(range(num_keys), k=length)
    values = source.choices(range(1024), k=length)
    return _assemble(keys, values)


def _keyed_zipf(length: int, num_keys: int, rng: RngLike) -> List[KeyedRecord]:
    source = ensure_rng(rng)
    keys = source.choices(
        range(num_keys), cum_weights=generators.zipfian_cumulative(num_keys, 1.1), k=length
    )
    values = source.choices(
        range(1024), cum_weights=generators.zipfian_cumulative(1024, 1.2), k=length
    )
    return _assemble(keys, values)


def _keyed_hotset(length: int, num_keys: int, rng: RngLike) -> List[KeyedRecord]:
    source = ensure_rng(rng)
    hot = max(1, num_keys // 10)
    # The hot tenth of the keyspace receives ~90% of the traffic.
    hot_weight = 9.0 * (num_keys - hot) / hot if num_keys > hot else 1.0
    cumulative: List[float] = []
    running = 0.0
    for key in range(num_keys):
        running += hot_weight if key < hot else 1.0
        cumulative.append(running)
    keys = source.choices(range(num_keys), cum_weights=cumulative, k=length)
    values = source.choices(range(1024), k=length)
    return _assemble(keys, values)


KEYED_WORKLOADS: Dict[str, KeyedWorkload] = {
    workload.name: workload
    for workload in [
        KeyedWorkload(
            "keyed-uniform",
            "Every key equally likely; uniform values (eviction-neutral baseline).",
            _keyed_uniform,
        ),
        KeyedWorkload(
            "keyed-zipf",
            "Zipfian key popularity and Zipfian values (realistic tenant skew).",
            _keyed_zipf,
        ),
        KeyedWorkload(
            "keyed-hotset",
            "A hot tenth of the keyspace takes ~90% of traffic (cache-adversarial).",
            _keyed_hotset,
        ),
    ]
}


def available_keyed_workloads() -> List[str]:
    """Names of all registered keyed workloads."""
    return sorted(KEYED_WORKLOADS)


def build_keyed_workload(
    name: str, length: int, *, num_keys: int, rng: RngLike = None
) -> List[KeyedRecord]:
    """Materialise ``length`` keyed records of the workload called ``name``."""
    try:
        workload = KEYED_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown keyed workload {name!r}; available: {', '.join(available_keyed_workloads())}"
        ) from None
    return workload.build(length, num_keys, rng)


def build_workload(name: str, length: int, rng: RngLike = None) -> List[StreamElement]:
    """Materialise ``length`` elements of the workload called ``name``."""
    try:
        workload = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {', '.join(available_workloads())}") from None
    return workload.build(length, rng)
