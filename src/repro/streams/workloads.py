"""Named, reproducible workload presets.

A *workload* bundles a value generator with an arrival process and a length
into a list of :class:`~repro.streams.element.StreamElement`, ready to be fed
to a sampler.  Benchmarks, examples and tests refer to workloads by name so
that every experiment in EXPERIMENTS.md is reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..rng import RngLike, ensure_rng, spawn
from . import arrivals, generators
from .element import StreamElement, make_stream

__all__ = ["Workload", "WORKLOADS", "build_workload", "available_workloads"]


@dataclass(frozen=True)
class Workload:
    """A named recipe for generating a stream."""

    name: str
    description: str
    builder: Callable[[int, RngLike], List[StreamElement]]

    def build(self, length: int, rng: RngLike = None) -> List[StreamElement]:
        """Materialise ``length`` elements of this workload."""
        if length <= 0:
            raise ValueError("length must be positive")
        return self.builder(length, rng)


def _uniform_sequence(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.uniform_integers(1024, rng=source), length)
    return make_stream(values)


def _ascending_sequence(length: int, rng: RngLike) -> List[StreamElement]:
    values = generators.take(generators.ascending_integers(), length)
    return make_stream(values)


def _zipf_sequence(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.zipfian_integers(256, skew=1.2, rng=source), length)
    return make_stream(values)


def _stock_ticks(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.gaussian_walk(rng=spawn(source, 1)), length)
    timestamps = generators.take(arrivals.poisson_arrivals(rate=2.0, rng=spawn(source, 2)), length)
    return make_stream(values, timestamps)


def _sensor_poisson(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.sensor_drift(rng=spawn(source, 1)), length)
    timestamps = generators.take(arrivals.poisson_arrivals(rate=1.0, rng=spawn(source, 2)), length)
    return make_stream(values, timestamps)


def _network_bursts(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(generators.zipfian_integers(512, skew=1.1, rng=spawn(source, 1)), length)
    timestamps = generators.take(
        arrivals.bursty_arrivals(burst_size_mean=25.0, gap_mean=8.0, rng=spawn(source, 2)), length
    )
    return make_stream(values, timestamps)


def _diurnal_categorical(length: int, rng: RngLike) -> List[StreamElement]:
    source = ensure_rng(rng)
    values = generators.take(
        generators.categorical_bursts(list(range(32)), burst_length=40, rng=spawn(source, 1)), length
    )
    timestamps = generators.take(
        arrivals.diurnal_arrivals(base_rate=1.0, amplitude=0.7, period=length / 4.0, rng=spawn(source, 2)),
        length,
    )
    return make_stream(values, timestamps)


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in [
        Workload(
            "uniform-sequence",
            "Uniform integers, one arrival per tick (sequence-window workhorse).",
            _uniform_sequence,
        ),
        Workload(
            "ascending-sequence",
            "Value equals arrival index; used for position-uniformity tests.",
            _ascending_sequence,
        ),
        Workload(
            "zipf-sequence",
            "Zipfian values, one arrival per tick (frequency-moment / entropy workload).",
            _zipf_sequence,
        ),
        Workload(
            "stock-ticks",
            "Gaussian-random-walk prices with Poisson arrival times.",
            _stock_ticks,
        ),
        Workload(
            "sensor-poisson",
            "Drifting sensor readings with Poisson arrival times.",
            _sensor_poisson,
        ),
        Workload(
            "network-bursts",
            "Zipfian packet sizes with bursty on/off arrivals (timestamp-window stress).",
            _network_bursts,
        ),
        Workload(
            "diurnal-categorical",
            "Categorical bursts with a diurnal arrival rate.",
            _diurnal_categorical,
        ),
    ]
}


def available_workloads() -> List[str]:
    """Names of all registered workloads."""
    return sorted(WORKLOADS)


def build_workload(name: str, length: int, rng: RngLike = None) -> List[StreamElement]:
    """Materialise ``length`` elements of the workload called ``name``."""
    try:
        workload = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {', '.join(available_workloads())}") from None
    return workload.build(length, rng)
