"""Command-line interface.

Installed as the ``swsample`` console script.  Five sub-commands:

* ``swsample list`` — show the available algorithms, workloads and experiments;
* ``swsample run`` — stream a workload through a sampler and print the sample
  and memory footprint (a quick way to eyeball behaviour);
* ``swsample engine`` — drive a keyed workload (or a JSONL stream from a file
  or stdin via ``--input``) through the sharded multi-stream engine, serially
  or on workers (``--workers N --executor thread|process``; process workers
  own their shards outright and scale across cores), print fleet statistics,
  resolve a batch of queries in one fleet pass (``--query-file`` with JSONL
  op documents, the same wire shapes as serve's ``POST /v1/<t>/query``),
  and optionally checkpoint/resume it (incremental checkpoint directories).
  Observability: ``--metrics-out PATH`` dumps a fleet-merged metrics snapshot
  (``--metrics-format json|prom``), and ``--log-level``/``--log-json``
  configure structured logging via :mod:`repro.obs` (worker processes
  inherit the configuration);
* ``swsample serve`` — the standing async daemon (:mod:`repro.serve`): HTTP
  and raw-socket JSONL ingest, a per-tenant query API, ``/healthz`` and
  Prometheus ``/metrics``, 429 backpressure, and graceful SIGTERM shutdown
  with checkpoint-on-exit / ``--resume`` on restart.  Shares the engine
  recipe flags with ``swsample engine``;
* ``swsample experiment E3 --scale default`` — run one of the E1–E10
  experiments and print its result table (add ``--markdown`` or ``--csv``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .core.facade import algorithm_catalog, sliding_window_sampler
from .engine.source import DEFAULT_BATCH_SIZE
from .serve import DEFAULT_MAX_PENDING_RECORDS, _query_op_from_json, _query_outcome_payload
from .exceptions import ConfigurationError, SWSampleError
from .harness import available_experiments, run_experiment
from .harness.experiments import EXPERIMENTS, SCALES
from .streams.workloads import (
    available_keyed_workloads,
    available_workloads,
    build_keyed_workload,
    build_workload,
)

__all__ = ["main", "build_parser"]


def _add_engine_recipe_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine recipe — sampler spec + sharding/worker layout — shared
    verbatim by ``swsample engine`` and ``swsample serve``."""
    parser.add_argument("--window", choices=["sequence", "timestamp"], default="sequence")
    parser.add_argument("--n", type=int, default=500, help="per-key window size (sequence)")
    parser.add_argument("--t0", type=float, default=500.0, help="per-key window span (timestamp)")
    parser.add_argument("-k", type=int, default=4, help="samples per key")
    parser.add_argument("--without-replacement", action="store_true")
    parser.add_argument("--algorithm", default="optimal", help="optimal or a baseline name")
    parser.add_argument("--shards", type=int, default=4, help="hash partitions")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="drive shards from N workers (default: serial engine)",
    )
    parser.add_argument(
        "--executor", choices=["thread", "process"], default=None,
        help="worker flavour for --workers: 'thread' (pipelining; the default)"
        " or 'process' (shards resident in worker processes — scales across cores)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=None, metavar="N",
        help="records per sub-batch dispatched to each shard worker (requires"
        " --workers; default 4096)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="use the skip-sampling batched ingest path (optimal algorithm only:"
        " geometric skips instead of per-element coins; statistically exact but"
        " not bit-identical to the default path)",
    )
    parser.add_argument(
        "--kernel", choices=["python", "numpy", "auto"], default="python",
        help="batched-ingest kernel for the optimal samplers: 'python' (the"
        " bit-identity reference), 'numpy' (vectorized fast-path kernels;"
        " requires the [fast] extra and fails loudly without it), or 'auto'"
        " (numpy when available)",
    )
    parser.add_argument("--max-keys-per-shard", type=int, default=None, help="LRU cap per shard")
    parser.add_argument("--idle-ttl", type=int, default=None, help="evict keys idle this many ticks")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help="journal every dispatched sub-batch to a per-shard write-ahead"
        " log under DIR before the worker applies it (requires --executor"
        " process with --workers; a committed checkpoint truncates it)",
    )
    parser.add_argument(
        "--wal-fsync", choices=["off", "batch", "always"], default=None,
        help="WAL durability (requires --wal-dir): 'off' (buffered; survives"
        " worker death), 'batch' (flush per append; survives coordinator"
        " crash — the default), 'always' (fsync per append; survives power"
        " loss)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="self-heal dead worker processes: restart with bounded backoff,"
        " restore their shards from the last checkpoint and replay the WAL"
        " tail (requires --wal-dir; queries touching a mid-recovery shard"
        " get a retryable error instead of a sticky failure)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="per-incident restart budget for --supervise before the fleet"
        " goes sticky-failed (default 3)",
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a fleet-merged metrics snapshot to PATH at the end"
        " ('-' for stdout); enables metrics collection for the run",
    )
    parser.add_argument(
        "--metrics-format", choices=["json", "prom"], default="json",
        help="snapshot format for --metrics-out: nested JSON or Prometheus"
        " text exposition (default json)",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default=None,
        help="enable structured logging on the 'repro' logger at this level"
        " (worker processes inherit the configuration)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines (implies --log-level info unless set)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="swsample",
        description="Optimal random sampling from sliding windows (Braverman-Ostrovsky-Zaniolo).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list algorithms, workloads and experiments")

    run_parser = subparsers.add_parser("run", help="stream a workload through a sampler")
    run_parser.add_argument("--window", choices=["sequence", "timestamp"], default="sequence")
    run_parser.add_argument("--n", type=int, default=1000, help="window size (sequence windows)")
    run_parser.add_argument("--t0", type=float, default=1000.0, help="window span (timestamp windows)")
    run_parser.add_argument("-k", type=int, default=8, help="number of samples")
    run_parser.add_argument("--without-replacement", action="store_true")
    run_parser.add_argument("--algorithm", default="optimal", help="optimal or a baseline name")
    run_parser.add_argument("--workload", default="uniform-sequence", choices=available_workloads())
    run_parser.add_argument("--length", type=int, default=10_000, help="number of stream elements")
    run_parser.add_argument("--seed", type=int, default=0)

    engine_parser = subparsers.add_parser(
        "engine", help="drive a keyed workload through the sharded multi-stream engine"
    )
    _add_engine_recipe_arguments(engine_parser)
    engine_parser.add_argument("--workload", default="keyed-zipf", choices=available_keyed_workloads())
    engine_parser.add_argument("--records", type=int, default=100_000, help="records to ingest")
    engine_parser.add_argument("--keys", type=int, default=1_000, help="size of the keyspace")
    engine_parser.add_argument(
        "--input", metavar="PATH",
        help="stream JSONL records from PATH ('-' for stdin) instead of a synthetic workload;"
        ' lines are {"key":..., "value":..., "timestamp":...} objects or [key, value, ts] arrays',
    )
    engine_parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="records per ingest batch for --input streams",
    )
    engine_parser.add_argument("--top", type=int, default=5, help="hottest keys to report")
    engine_parser.add_argument(
        "--query-file", metavar="PATH",
        help="after ingest, resolve a batch of queries in one fleet pass: JSONL op"
        ' documents ({"op": "sample", "key": ...}, {"op": "hottest", "top": 5}, ...;'
        " '-' for stdin), one JSON result line each",
    )
    engine_parser.add_argument("--checkpoint", metavar="PATH", help="write an engine checkpoint at the end")
    engine_parser.add_argument("--resume", metavar="PATH", help="resume from an engine checkpoint first")
    _add_observability_arguments(engine_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="run the standing async ingest/query daemon"
    )
    _add_engine_recipe_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=9500,
        help="HTTP port (0 picks an ephemeral port; default 9500)",
    )
    serve_parser.add_argument(
        "--socket-port", type=int, default=None, metavar="PORT",
        help="also listen for raw line-per-record TCP ingest on PORT"
        " (0 picks an ephemeral port; default: disabled)",
    )
    serve_parser.add_argument(
        "--tenant", action="append", default=None, metavar="NAME",
        help="tenant namespace (repeatable; default: one tenant named 'default')",
    )
    serve_parser.add_argument(
        "--track-occurrences", action="store_true",
        help="maintain per-candidate occurrence counts so /moments can answer",
    )
    serve_parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write one checkpoint directory per tenant under DIR on shutdown"
        " (and every --checkpoint-interval seconds)",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="restore each tenant from its --checkpoint-dir checkpoint at startup",
    )
    serve_parser.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SECONDS",
        help="also checkpoint every SECONDS while running (requires --checkpoint-dir)",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=DEFAULT_MAX_PENDING_RECORDS, metavar="N",
        help="per-tenant backlog bound in records before ingest answers 429"
        f" (default {DEFAULT_MAX_PENDING_RECORDS})",
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="records per engine ingest batch",
    )
    serve_parser.add_argument(
        "--ready-file", metavar="PATH",
        help="write a JSON readiness file (pid + bound ports) once listening",
    )
    _add_observability_arguments(serve_parser)

    experiment_parser = subparsers.add_parser("experiment", help="run one of the E1-E10 experiments")
    experiment_parser.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    experiment_parser.add_argument("--scale", choices=list(SCALES), default="default")
    experiment_parser.add_argument("--seed", type=int, default=0)
    experiment_parser.add_argument("--markdown", action="store_true", help="print GitHub markdown")
    experiment_parser.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    return parser


def _command_list() -> int:
    print("Algorithms:")
    for name, description in algorithm_catalog().items():
        print(f"  {name:<14} {description}")
    print("\nWorkloads:")
    for name in available_workloads():
        print(f"  {name}")
    print("\nKeyed workloads (swsample engine):")
    for name in available_keyed_workloads():
        print(f"  {name}")
    print("\nExperiments:")
    for experiment_id in available_experiments():
        _, summary = EXPERIMENTS[experiment_id]
        print(f"  {experiment_id:<4} {summary}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    sampler = sliding_window_sampler(
        args.window,
        k=args.k,
        n=args.n,
        t0=args.t0,
        replacement=not args.without_replacement,
        algorithm=args.algorithm,
        rng=args.seed,
    )
    stream = build_workload(args.workload, args.length, rng=args.seed)
    for element in stream:
        if args.window == "timestamp" and hasattr(sampler, "advance_time"):
            sampler.advance_time(element.timestamp)
        sampler.append(element.value, element.timestamp)
    drawn = sampler.sample()
    print(f"algorithm      : {sampler.algorithm}")
    print(f"window         : {args.window} ({'n=' + str(args.n) if args.window == 'sequence' else 't0=' + str(args.t0)})")
    print(f"stream length  : {args.length} ({args.workload})")
    print(f"memory (words) : {sampler.memory_words()}")
    print(f"sample ({len(drawn)} element{'s' if len(drawn) != 1 else ''}):")
    for element in drawn:
        print(f"  index={element.index:<10} t={element.timestamp:<12.3f} value={element.value!r}")
    return 0


def _check_writable_path(path: str) -> Optional[str]:
    """Probe that ``path`` can be written *now*, before hours of ingest.

    Existing files are opened for append (no truncation — the probe must not
    destroy anything); missing files are created exclusively and removed
    again.  Returns the OS error message when the path is unwritable, else
    ``None``.  ``"-"`` (stdout) always passes.
    """
    if path == "-":
        return None
    try:
        if os.path.exists(path):
            with open(path, "a", encoding="utf-8"):
                pass
        else:
            with open(path, "x", encoding="utf-8"):
                pass
            os.unlink(path)
    except OSError as error:
        return str(error)
    return None


def _run_query_file(engine: "object", path: str, *, stdin_taken: bool) -> int:
    """Resolve a ``--query-file`` batch against a just-ingested engine.

    The file is JSONL: one op document per line (blank lines and ``#``
    comments skipped), the same wire shapes the serve daemon's
    ``POST /v1/<tenant>/query`` accepts.  The whole batch resolves in one
    fleet pass via ``query_batch``; each op prints one JSON result line.
    """
    try:
        if path == "-":
            if stdin_taken:
                print("error: --input - and --query-file - cannot share stdin", file=sys.stderr)
                return 2
            lines = sys.stdin.read().splitlines()
        else:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
    except OSError as error:
        print(f"error: cannot read --query-file {path}: {error}", file=sys.stderr)
        return 2
    documents = []
    for number, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            documents.append(json.loads(stripped))
        except ValueError as error:
            print(
                f"error: --query-file {path} line {number} is not JSON: {error}",
                file=sys.stderr,
            )
            return 2
    if not documents:
        print(f"error: --query-file {path} contains no ops", file=sys.stderr)
        return 2
    try:
        ops = [_query_op_from_json(document) for document in documents]
        outcomes = engine.query_batch(ops)
    except ConfigurationError as error:
        print(f"error: bad query op: {error}", file=sys.stderr)
        return 2
    print(f"query batch     : {len(ops)} ops, one fleet pass")
    for op, outcome in zip(ops, outcomes):
        payload = {"op": op[0]}
        payload.update(_query_outcome_payload(op, outcome))
        print(json.dumps(payload, sort_keys=True, default=repr))
    return 0


def _validate_durability_flags(args: argparse.Namespace, workers, executor) -> Optional[str]:
    """Cross-flag validation for --wal-dir / --wal-fsync / --supervise /
    --max-restarts (shared by ``engine`` and ``serve``); returns the error
    message for the rc-2 path, or None when the combination is coherent."""
    if args.wal_dir is not None and (workers is None or executor != "process"):
        return (
            "--wal-dir requires --executor process with --workers N"
            " (the journal guards worker processes)"
        )
    if args.wal_fsync is not None and args.wal_dir is None:
        return "--wal-fsync requires --wal-dir DIR"
    if args.supervise and args.wal_dir is None:
        return "--supervise requires --wal-dir DIR (recovery replays the journal)"
    if args.max_restarts is not None:
        if not args.supervise:
            return "--max-restarts requires --supervise"
        if args.max_restarts < 0:
            return "--max-restarts must be >= 0"
    return None


def _restart_policy_from_args(args: argparse.Namespace):
    if args.max_restarts is None:
        return None
    from .engine import RestartPolicy

    return RestartPolicy(max_restarts=args.max_restarts)


def _command_engine(args: argparse.Namespace) -> int:
    from .engine import (
        ParallelEngine,
        ProcessEngine,
        SamplerSpec,
        ShardedEngine,
        checkpoint_shards,
        ingest_jsonl,
        load_checkpoint,
        write_checkpoint,
    )
    from .obs import MetricsRegistry, configure_logging, to_prometheus_text

    if args.log_level or args.log_json:
        # Workers inherit this: the process engine ships the active config
        # dict to every worker it spawns.
        configure_logging(level=args.log_level or "info", json_lines=args.log_json)
    if args.metrics_out:
        # Catch an unwritable path before the ingest run, not after it; the
        # late-write error path below stays as a fallback (the filesystem can
        # still change out from under a long run).
        problem = _check_writable_path(args.metrics_out)
        if problem is not None:
            print(
                f"error: --metrics-out {args.metrics_out} is not writable: {problem}",
                file=sys.stderr,
            )
            return 2
    registry = MetricsRegistry() if args.metrics_out else None

    workers = args.workers
    if workers is not None and workers <= 0:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.executor is not None and workers is None:
        # Catches e.g. `--input - --executor process` with the worker count
        # forgotten: without --workers the engine is serial and the executor
        # flavour would be silently ignored.
        print(
            f"error: --executor {args.executor} requires --workers N"
            " (without workers the engine runs serially)",
            file=sys.stderr,
        )
        return 2
    executor = args.executor or "thread"
    durability_problem = _validate_durability_flags(args, workers, executor)
    if durability_problem is not None:
        print(f"error: {durability_problem}", file=sys.stderr)
        return 2
    durability = {}
    if args.wal_dir is not None:
        durability = dict(
            supervise=args.supervise,
            wal_dir=args.wal_dir,
            wal_fsync=args.wal_fsync or "batch",
            restart_policy=_restart_policy_from_args(args),
        )
    if args.batch_size <= 0:
        print("error: --batch-size must be positive", file=sys.stderr)
        return 2
    if args.max_batch is not None:
        if args.max_batch <= 0:
            print("error: --max-batch must be positive", file=sys.stderr)
            return 2
        if workers is None:
            print(
                "error: --max-batch requires --workers N (the serial engine"
                " applies batches directly, without dispatch sub-batching)",
                file=sys.stderr,
            )
            return 2
    if (args.fast or args.kernel != "python") and args.resume:
        flag = "--fast" if args.fast else "--kernel"
        print(
            f"error: {flag} cannot be combined with --resume (the sampler recipe"
            " travels inside the checkpoint and must be restored unchanged)",
            file=sys.stderr,
        )
        return 2
    if args.resume:
        # Validate the worker count against the manifest before paying for
        # the restore; legacy single-file checkpoints (shard count unknown
        # without unpickling) fall back to the post-load check below.
        if workers is not None:
            known_shards = checkpoint_shards(args.resume)
            if known_shards is not None and workers > known_shards:
                print(
                    f"error: --workers {workers} exceeds the checkpoint's"
                    f" {known_shards} shards (each worker owns at least one shard)",
                    file=sys.stderr,
                )
                return 2
        try:
            engine = load_checkpoint(
                args.resume,
                workers=workers,
                executor=executor,
                max_batch=args.max_batch,
                registry=registry,
                **durability,
            )
        except (OSError, ConfigurationError) as error:
            print(f"error: cannot resume from {args.resume}: {error}", file=sys.stderr)
            return 2
        replayed = engine.replay_wal()
        if replayed:
            print(f"wal replay      : {replayed} journaled records re-applied")
        if workers is not None and workers > engine.shards:
            message = (
                f"error: --workers {workers} exceeds the checkpoint's"
                f" {engine.shards} shards (each worker owns at least one shard)"
            )
            engine.close()
            print(message, file=sys.stderr)
            return 2
        print(f"resumed         : {args.resume} ({engine.key_count} keys, {engine.total_arrivals} records)")
    else:
        if workers is not None and workers > args.shards:
            print(
                f"error: --workers {workers} exceeds --shards {args.shards}"
                " (each worker owns at least one shard; extra workers would sit idle)",
                file=sys.stderr,
            )
            return 2
        try:
            spec = SamplerSpec(
                window=args.window,
                k=args.k,
                n=args.n if args.window == "sequence" else None,
                t0=args.t0 if args.window == "timestamp" else None,
                replacement=not args.without_replacement,
                algorithm=args.algorithm,
                fast=args.fast,
                kernel=args.kernel,
            )
        except ConfigurationError as error:
            # e.g. --fast with a baseline algorithm: fail loudly up front.
            print(f"error: {error}", file=sys.stderr)
            return 2
        config = dict(
            shards=args.shards,
            seed=args.seed,
            max_keys_per_shard=args.max_keys_per_shard,
            idle_ttl=args.idle_ttl,
            registry=registry,
        )
        if workers is not None:
            engine_class = ProcessEngine if executor == "process" else ParallelEngine
            if args.max_batch is not None:
                config["max_batch"] = args.max_batch
            if engine_class is ProcessEngine:
                config.update(durability)
            engine = engine_class(spec, workers=workers, **config)
            # A fresh (non-resuming) run over an old WAL directory: the stale
            # journal covers state this fleet never held — drop it loudly.
            engine.discard_wal()
        else:
            engine = ShardedEngine(spec, **config)
    try:
        if args.checkpoint and engine.spec.algorithm != "optimal":
            print(
                "error: --checkpoint requires --algorithm optimal"
                " (baseline samplers do not support state snapshots)",
                file=sys.stderr,
            )
            return 2
        started = time.perf_counter()
        if args.input:
            try:
                if args.input == "-":
                    ingested = ingest_jsonl(engine, sys.stdin, batch_size=args.batch_size)
                else:
                    with open(args.input, "r", encoding="utf-8") as handle:
                        ingested = ingest_jsonl(engine, handle, batch_size=args.batch_size)
            except OSError as error:
                print(f"error: cannot read --input {args.input}: {error}", file=sys.stderr)
                return 2
            except SWSampleError as error:
                print(f"error: bad record in --input {args.input}: {error}", file=sys.stderr)
                return 2
            source = args.input if args.input != "-" else "stdin"
            key_space = "streamed"
        else:
            records = build_keyed_workload(args.workload, args.records, num_keys=args.keys, rng=args.seed)
            if engine.spec.is_timestamp and engine.now != float("-inf"):
                # Synthetic workload clocks restart at zero; a resumed engine's clock
                # must keep moving forward, so shift the batch past it.
                offset = engine.now
                records = [(record.key, record.value, record.timestamp + offset) for record in records]
            ingested = engine.ingest(records)
            source = args.workload
            key_space = str(args.keys)
        engine.flush()
        elapsed = time.perf_counter() - started
        rate = ingested / elapsed if elapsed > 0 else float("inf")
        print(f"spec            : {engine.spec.describe()}")
        print(f"workload        : {source} ({ingested} records over {key_space} keys)")
        print(f"shards          : {engine.shards}"
              + (f" ({engine.workers} {executor} workers)" if workers is not None else ""))
        print(f"ingest          : {elapsed:.3f}s ({rate / 1000.0:.1f} krec/s)")
        evictions = engine.stats()["evictions"]
        print(
            f"live keys       : {engine.key_count} ({evictions['total']} evicted:"
            f" {evictions['lru']} lru, {evictions['ttl']} ttl)"
        )
        print(f"memory (words)  : {engine.memory_words()}")
        hottest = engine.hottest_keys(args.top)
        print(f"hottest {args.top} keys  :")
        for key, arrivals in hottest:
            print(f"  {key!r:<12} {arrivals} arrivals")
        if hottest:
            key = hottest[0][0]
            print(f"sample of hottest key {key!r}: {engine.sample_values(key)}")
        merged = engine.merged_frequent_items(0.01, top=args.top)
        print(f"merged frequent values (>=1%): {[(value, round(freq, 4)) for value, freq in merged]}")
        if args.query_file:
            code = _run_query_file(engine, args.query_file, stdin_taken=args.input == "-")
            if code != 0:
                return code
        if args.checkpoint:
            try:
                result = write_checkpoint(engine, args.checkpoint)
            except (OSError, ConfigurationError) as error:
                print(f"error: cannot checkpoint to {args.checkpoint}: {error}", file=sys.stderr)
                return 2
            print(
                f"checkpoint      : {result.path} ({result.segments_written} segments written,"
                f" {result.segments_reused} reused)"
            )
        if args.metrics_out:
            snapshot = engine.metrics_snapshot()
            if args.metrics_format == "prom":
                rendered = to_prometheus_text(snapshot)
            else:
                rendered = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            if args.metrics_out == "-":
                sys.stdout.write(rendered)
            else:
                try:
                    with open(args.metrics_out, "w", encoding="utf-8") as handle:
                        handle.write(rendered)
                except OSError as error:
                    print(
                        f"error: cannot write --metrics-out {args.metrics_out}: {error}",
                        file=sys.stderr,
                    )
                    return 2
                print(f"metrics         : {args.metrics_out} ({args.metrics_format})")
        return 0
    finally:
        if workers is not None:
            engine.close()


def _command_serve(args: argparse.Namespace) -> int:
    from .engine import SamplerSpec
    from .obs import configure_logging
    from .serve import EngineSettings, ServeApp, ServeConfig

    if args.log_level or args.log_json:
        configure_logging(level=args.log_level or "info", json_lines=args.log_json)
    workers = args.workers
    if workers is not None and workers <= 0:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.executor is not None and workers is None:
        print(
            f"error: --executor {args.executor} requires --workers N"
            " (without workers the engine runs serially)",
            file=sys.stderr,
        )
        return 2
    if args.max_batch is not None and workers is None:
        print(
            "error: --max-batch requires --workers N (the serial engine"
            " applies batches directly, without dispatch sub-batching)",
            file=sys.stderr,
        )
        return 2
    if workers is not None and workers > args.shards:
        print(
            f"error: --workers {workers} exceeds --shards {args.shards}"
            " (each worker owns at least one shard; extra workers would sit idle)",
            file=sys.stderr,
        )
        return 2
    durability_problem = _validate_durability_flags(args, workers, args.executor or "thread")
    if durability_problem is not None:
        print(f"error: {durability_problem}", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if (args.fast or args.kernel != "python") and args.resume:
        flag = "--fast" if args.fast else "--kernel"
        print(
            f"error: {flag} cannot be combined with --resume (the sampler recipe"
            " travels inside the checkpoint and must be restored unchanged)",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_interval is not None and not args.checkpoint_dir:
        print("error: --checkpoint-interval requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_dir and args.algorithm != "optimal":
        print(
            "error: --checkpoint-dir requires --algorithm optimal"
            " (baseline samplers do not support state snapshots)",
            file=sys.stderr,
        )
        return 2
    if args.metrics_out:
        problem = _check_writable_path(args.metrics_out)
        if problem is not None:
            print(
                f"error: --metrics-out {args.metrics_out} is not writable: {problem}",
                file=sys.stderr,
            )
            return 2
    try:
        spec = SamplerSpec(
            window=args.window,
            k=args.k,
            n=args.n if args.window == "sequence" else None,
            t0=args.t0 if args.window == "timestamp" else None,
            replacement=not args.without_replacement,
            algorithm=args.algorithm,
            fast=args.fast,
            kernel=args.kernel,
        )
        config = ServeConfig(
            engine=EngineSettings(
                spec=spec,
                shards=args.shards,
                seed=args.seed,
                max_keys_per_shard=args.max_keys_per_shard,
                idle_ttl=args.idle_ttl,
                track_occurrences=args.track_occurrences,
                workers=workers,
                executor=args.executor or "thread",
                max_batch=args.max_batch,
                supervise=args.supervise,
                wal_dir=args.wal_dir,
                wal_fsync=args.wal_fsync or "batch",
                max_restarts=args.max_restarts,
            ),
            host=args.host,
            http_port=args.port,
            socket_port=args.socket_port,
            tenants=tuple(args.tenant) if args.tenant else ("default",),
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            checkpoint_interval=args.checkpoint_interval,
            max_pending_records=args.max_pending,
            batch_size=args.batch_size,
            ready_file=args.ready_file,
            metrics_out=args.metrics_out,
            metrics_format=args.metrics_format,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        return ServeApp(config).run()
    except (OSError, SWSampleError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _command_experiment(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        experiment_ids = available_experiments()
    else:
        experiment_ids = [args.experiment]
    for experiment_id in experiment_ids:
        table = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        print(table.to_markdown() if args.markdown else table.to_text())
        print()
        if args.csv:
            path = args.csv if len(experiment_ids) == 1 else f"{args.csv}.{experiment_id}.csv"
            table.write_csv(path)
            print(f"(csv written to {path})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``swsample`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "engine":
        return _command_engine(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "experiment":
        return _command_experiment(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover - argparse guards this
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
