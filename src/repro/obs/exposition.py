"""Prometheus text exposition — writer *and* parser, no client library.

:func:`to_prometheus_text` renders a registry snapshot (or a merged fleet
snapshot) in the Prometheus text exposition format version 0.0.4: ``# TYPE``
comments, counter/gauge samples, and cumulative ``_bucket{le="..."}`` /
``_sum`` / ``_count`` series for histograms.  Dotted metric names
(``engine.ingest.records``) become underscore names under a configurable
namespace (``swsample_engine_ingest_records``).

:func:`labeled_prometheus_text` renders *several* snapshots — one per
tenant, say — into a single exposition document: each metric name is
declared once and every sample carries a constant distinguishing label
(``swsample_engine_ingest_records{tenant="acme"} 41``), which is how the
``swsample serve`` daemon keeps per-tenant fleets apart on one ``/metrics``
endpoint.

:func:`parse_prometheus_text` is the matching grammar-checking reader used
by the test suite to assert the output is genuinely scrapeable — every
sample line must parse, every referenced type must be declared, and
histogram series must be cumulative and consistent *per label set* (a
labeled document interleaves many series under one name).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "to_prometheus_text",
    "labeled_prometheus_text",
    "parse_prometheus_text",
    "sanitize_metric_name",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """Map a dotted registry name onto the Prometheus name grammar."""
    flat = _NAME_BAD_CHARS.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if not flat or not _NAME_OK.match(flat):
        flat = f"_{flat}"
    return flat


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return _format_value(bound)


def to_prometheus_text(snapshot: Dict[str, Any], namespace: str = "swsample") -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as exposition text."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, count in zip(
            list(data["buckets"]) + [math.inf], data["counts"]
        ):
            cumulative += count
            lines.append(
                f'{flat}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(f"{flat}_sum {_format_value(data['sum'])}")
        lines.append(f"{flat}_count {_format_value(data['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def labeled_prometheus_text(
    snapshots: Mapping[str, Dict[str, Any]],
    label: str,
    namespace: str = "swsample",
) -> str:
    """Render several registry snapshots as **one** exposition document.

    ``snapshots`` maps a label value (e.g. a tenant name) to that party's
    ``MetricsRegistry.snapshot()`` dict; every sample is emitted with the
    constant ``label="value"`` pair attached, and each metric name gets a
    single ``# TYPE`` declaration however many snapshots carry it (duplicate
    declarations are a parse error).  Label values are escaped per the
    exposition grammar.  Per-snapshot histograms stay separate series —
    merge with :func:`repro.obs.merge_snapshots` first if a fleet-wide
    histogram is wanted instead.
    """
    if not _LABEL_PAIR.match(f'{label}="x"'):
        raise ValueError(f"invalid Prometheus label name: {label!r}")
    kinds = {"counters": set(), "gauges": set(), "histograms": set()}
    for snapshot in snapshots.values():
        for kind, names in kinds.items():
            names.update(snapshot.get(kind, {}))
    lines: List[str] = []
    ordered = sorted(snapshots)

    def tag(value: str, extra: str = "") -> str:
        pair = f'{label}="{_escape_label_value(value)}"'
        return "{" + pair + ("," + extra if extra else "") + "}"

    for kind, metric_type in (("counters", "counter"), ("gauges", "gauge")):
        for name in sorted(kinds[kind]):
            flat = sanitize_metric_name(name, namespace)
            lines.append(f"# TYPE {flat} {metric_type}")
            for value in ordered:
                series = snapshots[value].get(kind, {})
                if name in series:
                    lines.append(f"{flat}{tag(value)} {_format_value(series[name])}")
    for name in sorted(kinds["histograms"]):
        flat = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {flat} histogram")
        for value in ordered:
            data = snapshots[value].get("histograms", {}).get(name)
            if data is None:
                continue
            cumulative = 0
            for bound, count in zip(list(data["buckets"]) + [math.inf], data["counts"]):
                cumulative += count
                le = f'le="{_format_bound(bound)}"'
                lines.append(f"{flat}_bucket{tag(value, le)} {cumulative}")
            lines.append(f"{flat}_sum{tag(value)} {_format_value(data['sum'])}")
            lines.append(f"{flat}_count{tag(value)} {_format_value(data['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw.strip():
        return labels
    for pair in raw.split(","):
        match = _LABEL_PAIR.match(pair.strip())
        if match is None:
            raise ValueError(f"malformed label pair: {pair!r}")
        value = match.group("value")
        value = (
            value.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        labels[match.group("key")] = value
    return labels


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Parse exposition text back into ``{"types": ..., "samples": ...}``.

    ``types`` maps metric name to its declared type; ``samples`` is a list
    of ``(name, labels_dict, value)`` tuples in document order.  Raises
    ``ValueError`` on any line that is neither a well-formed comment nor a
    well-formed sample, on samples for undeclared histogram series, and on
    non-cumulative histogram buckets — i.e. this is a validator, not just a
    scraper.
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"malformed TYPE line: {raw_line!r}")
                _, _, name, metric_type = parts
                if metric_type not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"unknown metric type: {metric_type!r}")
                if name in types:
                    raise ValueError(f"duplicate TYPE declaration for {name!r}")
                types[name] = metric_type
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {raw_line!r}")
        labels = _parse_labels(match.group("labels") or "")
        samples.append((match.group("name"), labels, _parse_value(match.group("value"))))

    # Histogram series must be declared, cumulative, and internally
    # consistent — checked per label set, because a labeled document (one
    # series per tenant, say) interleaves many series under one name.
    for name, metric_type in types.items():
        if metric_type != "histogram":
            continue
        buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[str, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for sample_name, labels, value in samples:
            group = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise ValueError(f"histogram {name!r} bucket missing le label")
                buckets.setdefault(group, []).append((labels["le"], value))
            elif sample_name == f"{name}_count" and group not in counts:
                counts[group] = value
        if not buckets:
            raise ValueError(f"histogram {name!r} declared but has no buckets")
        for group, series in buckets.items():
            where = f" for label set {dict(group)!r}" if group else ""
            if series[-1][0] != "+Inf":
                raise ValueError(f"histogram {name!r} missing +Inf bucket{where}")
            previous = -math.inf
            for _, value in series:
                if value < previous:
                    raise ValueError(
                        f"histogram {name!r} buckets are not cumulative{where}"
                    )
                previous = value
            if group not in counts:
                raise ValueError(f"histogram {name!r} missing _count sample{where}")
            if counts[group] != series[-1][1]:
                raise ValueError(f"histogram {name!r} _count != +Inf bucket{where}")
    return {"types": types, "samples": samples}
