"""A lightweight span API: timed blocks that land in duration histograms.

``with span("checkpoint.write", registry=reg):`` times the block on
``perf_counter`` and records the duration into a histogram named
``checkpoint.write.seconds``.  Spans nest per-thread: a span opened inside
another gets the parent's dotted path as a prefix, so
``span("checkpoint") / span("segment")`` records into
``checkpoint.segment.seconds`` — cheap hierarchical tracing without a
tracing backend.

Each finished span also emits a DEBUG record on the ``repro.obs.span``
logger carrying the path, duration, and outcome as structured ``extra``
fields, which the JSON formatter in :mod:`repro.obs.logging` renders as
machine-readable lines.  At default log levels this costs one
``isEnabledFor`` check.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, Optional

from .registry import get_registry

__all__ = ["Span", "span"]

_log = logging.getLogger("repro.obs.span")
_stack = threading.local()


class Span:
    """Context manager for one timed block.  ``seconds`` and ``path`` are
    populated on exit; histograms are only touched on enabled registries."""

    __slots__ = ("name", "registry", "fields", "path", "seconds", "_started")

    def __init__(
        self,
        name: str,
        registry: Optional[Any] = None,
        fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self.name = name
        self.registry = registry if registry is not None else get_registry()
        self.fields = fields or {}
        self.path = name
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Span":
        frames = getattr(_stack, "frames", None)
        if frames is None:
            frames = _stack.frames = []
        self.path = ".".join((*frames, self.name)) if frames else self.name
        frames.append(self.name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._started
        frames = getattr(_stack, "frames", None)
        if frames and frames[-1] == self.name:
            frames.pop()
        self.registry.histogram(f"{self.path}.seconds").observe(self.seconds)
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "span %s took %.6fs",
                self.path,
                self.seconds,
                extra={
                    "span": self.path,
                    "seconds": round(self.seconds, 6),
                    "failed": exc_type is not None,
                    **self.fields,
                },
            )
        return False


def span(name: str, registry: Optional[Any] = None, **fields: Any) -> Span:
    """Open a timed span; extra keyword fields ride on the log record."""
    return Span(name, registry=registry, fields=fields or None)
