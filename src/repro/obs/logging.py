"""Structured logging configuration for the engine fleet.

The engine never calls ``logging.basicConfig`` — that is the application's
decision.  :func:`configure_logging` is that decision made explicit: it
installs exactly one stream handler on the ``repro`` logger (idempotent —
reconfiguring replaces the previous handler rather than stacking), sets the
level, and optionally swaps the human-readable formatter for
:class:`JsonLineFormatter`, which emits one JSON object per line with any
``extra`` fields included.

Worker processes cannot inherit handler objects, so the active settings are
kept as a plain picklable dict: the coordinator ships
:func:`logging_config` in each worker's config and the worker calls
:func:`apply_logging_config` before its message loop starts.  Workers then
log to their own stderr with the same level/format as the parent.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, Optional, TextIO

__all__ = [
    "configure_logging",
    "apply_logging_config",
    "logging_config",
    "reset_logging",
    "JsonLineFormatter",
    "LOG_LEVELS",
]

_LOGGER_NAME = "repro"

LOG_LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: LogRecord attribute names that are formatter plumbing, not user fields.
_RESERVED = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    ).keys()
) | {"message", "asctime", "taskName"}

_current_config: Optional[Dict[str, Any]] = None


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message, pid,
    plus every ``extra`` field (non-serialisable values fall back to
    ``repr``)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
) -> Dict[str, Any]:
    """Configure the ``repro`` logger; returns the picklable config dict."""
    global _current_config
    level_name = str(level).lower()
    if level_name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(LOG_LEVELS)}"
        )
    logger = logging.getLogger(_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    logger.addHandler(handler)
    logger.setLevel(LOG_LEVELS[level_name])
    logger.propagate = False
    _current_config = {"level": level_name, "json": bool(json_lines)}
    return dict(_current_config)


def logging_config() -> Optional[Dict[str, Any]]:
    """The active config as a picklable dict, or ``None`` if unconfigured.
    This is what the coordinator ships to worker processes."""
    return dict(_current_config) if _current_config is not None else None


def apply_logging_config(config: Optional[Dict[str, Any]]) -> None:
    """Worker-side entry point: apply a shipped config (no-op on ``None``)."""
    if config:
        configure_logging(
            level=config.get("level", "info"), json_lines=config.get("json", False)
        )


def reset_logging() -> None:
    """Remove obs-installed handlers and forget the config (test hygiene)."""
    global _current_config
    logger = logging.getLogger(_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    logger.propagate = True
    logger.setLevel(logging.NOTSET)
    _current_config = None
