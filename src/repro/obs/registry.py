"""Mergeable metrics primitives behind a registry, with a true no-op mode.

The engine fleet (serial shards, worker threads, worker processes) reports
into :class:`MetricsRegistry` instances.  Three primitives cover everything
the engine needs:

* :class:`Counter` — monotone totals (records ingested, evictions, stall
  seconds).  ``inc`` accepts floats so stage-duration accumulators and event
  counts share one type.
* :class:`Gauge` — point-in-time values (``set``/``inc``/``dec``), plus
  *callback* gauges registered via
  :meth:`MetricsRegistry.register_callback`: the callable is only evaluated
  at :meth:`MetricsRegistry.snapshot` time, so live values such as active
  keys or queue depth cost nothing on the ingest path.
* :class:`Histogram` — fixed upper-bound buckets (``bisect`` placement,
  inclusive ``le`` semantics matching Prometheus), a running sum, and a
  count.  Fixed buckets keep histograms mergeable across processes.

Two design rules keep the observability layer honest:

1. **Disabled means free.**  The module-level default registry is
   :data:`NULL_REGISTRY`; its instruments are shared no-op singletons, so
   uninstrumented runs never branch, lock, or allocate for metrics.  Code
   that must pay a real cost to *produce* a measurement (``perf_counter``
   calls around a chunk) checks ``registry.enabled`` first; plain ``inc``
   calls go through unconditionally because a no-op method call is cheaper
   than the branch that would guard it.
2. **Snapshots merge.**  :func:`merge_snapshots` sums counters and gauges
   and merges histograms bucket-wise, so per-worker registries shipped over
   the request/reply protocol collapse into one fleet-wide snapshot.

Everything here is stdlib-only and import-safe from worker processes.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
]

#: Default histogram bounds, in seconds: 100µs .. 10s.  Wide enough for both
#: per-chunk ingest latencies and whole-checkpoint writes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing total.  ``inc`` accepts ints or floats."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value: float = 0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value: float = 0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) semantics.

    ``counts`` has ``len(bounds) + 1`` cells; the final cell is the implicit
    ``+Inf`` bucket.  Counts are per-bucket (non-cumulative) internally;
    exposition cumulates them.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float], lock: threading.Lock
    ) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(later <= earlier for later, earlier in zip(ordered[1:], ordered)):
            raise ValueError(
                f"histogram {name!r} bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}"
            )
        self.name = name
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class _NullInstrument:
    """One shared do-nothing stand-in for all three instrument kinds."""

    __slots__ = ()

    name = ""
    value: float = 0
    bounds: Tuple[float, ...] = ()
    counts: Tuple[int, ...] = ()
    sum: float = 0.0
    count: int = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


def _empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


class MetricsRegistry:
    """A named collection of instruments plus snapshot/merge plumbing.

    Instruments are created lazily and cached by name, so call sites can
    hold direct references (one dict lookup at setup, zero at use).  All
    instruments of a registry share one lock: mutations happen at batch or
    chunk granularity, so contention is negligible and cross-instrument
    snapshots are internally consistent.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._callbacks: Dict[str, List[Callable[[], float]]] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unused(name, self._counters)
                instrument = self._counters[name] = Counter(name, self._lock)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unused(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name, self._lock)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unused(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS, self._lock
                )
            elif buckets is not None and tuple(map(float, buckets)) != instrument.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{instrument.bounds!r}"
                )
        return instrument

    def register_callback(self, name: str, callback: Callable[[], float]) -> None:
        """Register a live-value source summed into gauge ``name`` at
        snapshot time.  Multiple callbacks per name add up (e.g. one
        per-shard pool each reporting its own active-key count)."""
        with self._lock:
            if name in self._counters or name in self._histograms:
                raise ValueError(f"{name!r} is already a non-gauge instrument")
            self._callbacks.setdefault(name, []).append(callback)

    def _check_unused(self, name: str, owner: Dict[str, Any]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not owner and name in table:
                raise ValueError(f"{name!r} is already a different instrument kind")

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of every instrument: JSON-safe and mergeable."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {
                name: {
                    "buckets": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            }
            callbacks = [
                (name, list(fns)) for name, fns in self._callbacks.items()
            ]
        # Callbacks run outside the lock: they may touch engine structures
        # with locks of their own, and a broken one must not poison the rest.
        for name, fns in callbacks:
            total = gauges.get(name, 0)
            for fn in fns:
                try:
                    total += fn()
                except Exception:
                    continue
            gauges[name] = total
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


class NullRegistry:
    """The disabled registry: shared no-op instruments, empty snapshots."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_callback(self, name: str, callback: Callable[[], float]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return _empty_snapshot()


NULL_REGISTRY = NullRegistry()


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-worker snapshots into one fleet-wide snapshot.

    Counters and gauges sum (gauges in this codebase are extensive
    quantities — key counts, queue depths — so addition is the right
    fold).  Histograms merge bucket-wise and require identical bounds;
    mismatched bounds raise ``ValueError`` rather than silently skewing
    the distribution.
    """
    merged = _empty_snapshot()
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0) + value
        for name, data in snapshot.get("histograms", {}).items():
            existing = merged["histograms"].get(name)
            if existing is None:
                merged["histograms"][name] = {
                    "buckets": list(data["buckets"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
                continue
            if existing["buckets"] != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ across snapshots"
                )
            existing["counts"] = [
                a + b for a, b in zip(existing["counts"], data["counts"])
            ]
            existing["sum"] += data["sum"]
            existing["count"] += data["count"]
    return merged


_default_registry: Any = NULL_REGISTRY
_default_lock = threading.Lock()


def get_registry() -> Any:
    """The process-wide default registry (``NULL_REGISTRY`` until enabled)."""
    return _default_registry


def set_registry(registry: Optional[Any]) -> Any:
    """Install ``registry`` as the process-wide default (``None`` disables)."""
    global _default_registry
    with _default_lock:
        _default_registry = registry if registry is not None else NULL_REGISTRY
        return _default_registry


def enable(registry: Optional[MetricsRegistry] = None) -> Any:
    """Switch the default registry on; returns the active registry."""
    return set_registry(registry if registry is not None else MetricsRegistry())


def disable() -> None:
    """Reinstall the no-op default registry."""
    set_registry(NULL_REGISTRY)
