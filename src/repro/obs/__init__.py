"""repro.obs — dependency-free metrics, tracing, and structured logging.

The observability layer for the sampling engine fleet.  Four pieces:

* :mod:`repro.obs.registry` — ``Counter`` / ``Gauge`` / ``Histogram``
  primitives behind a :class:`MetricsRegistry`, a process-wide default
  registry (``NULL_REGISTRY`` until :func:`enable` is called, so
  uninstrumented runs pay nothing), and :func:`merge_snapshots` to fold
  per-worker snapshots into one fleet view.
* :mod:`repro.obs.exposition` — :func:`to_prometheus_text` renders a
  snapshot in the Prometheus text format with no client library;
  :func:`labeled_prometheus_text` folds many snapshots (one per tenant,
  say) into a single document distinguished by a constant label;
  :func:`parse_prometheus_text` validates either back.
* :mod:`repro.obs.spans` — ``with span("checkpoint.write"):`` records a
  duration histogram (nested spans produce dotted paths) and emits a
  structured DEBUG log line.
* :mod:`repro.obs.logging` — :func:`configure_logging` sets up the
  ``repro`` logger (optionally JSON lines); the resulting config dict is
  picklable so worker processes inherit it.

Typical use::

    from repro import obs

    registry = obs.MetricsRegistry()
    engine = ProcessEngine(spec, shards=8, workers=4, registry=registry)
    engine.ingest(records)
    snapshot = engine.metrics_snapshot()        # fleet-merged
    print(obs.to_prometheus_text(snapshot))

or globally, without threading a registry through call sites::

    obs.enable()                                # installs a default registry
    engine = ShardedEngine(spec, shards=8)      # picks it up automatically
"""

from .registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    disable,
    enable,
    get_registry,
    merge_snapshots,
    set_registry,
)
from .exposition import (
    labeled_prometheus_text,
    parse_prometheus_text,
    sanitize_metric_name,
    to_prometheus_text,
)
from .spans import Span, span
from .logging import (
    JsonLineFormatter,
    LOG_LEVELS,
    apply_logging_config,
    configure_logging,
    logging_config,
    reset_logging,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "to_prometheus_text",
    "labeled_prometheus_text",
    "parse_prometheus_text",
    "sanitize_metric_name",
    "Span",
    "span",
    "configure_logging",
    "apply_logging_config",
    "logging_config",
    "reset_logging",
    "JsonLineFormatter",
    "LOG_LEVELS",
]
