"""Abstract window tracker interface.

Window trackers store the *exact* contents of the sliding window.  They are a
verification substrate: tests and experiments replay the same stream into a
tracker and into a sampler, then compare the sampler's output distribution
against the tracker's ground truth.  The samplers themselves never use these
classes (that would defeat the whole point of sublinear-memory sampling).
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence

from ..streams.element import StreamElement

__all__ = ["WindowTracker"]


class WindowTracker(abc.ABC):
    """Common interface of the exact sequence/timestamp window trackers."""

    @abc.abstractmethod
    def append(self, value: Any, timestamp: Optional[float] = None) -> StreamElement:
        """Record the arrival of a new element and return its record."""

    @abc.abstractmethod
    def advance_time(self, now: float) -> None:
        """Advance the logical clock (no-op for sequence windows)."""

    @abc.abstractmethod
    def active_elements(self) -> List[StreamElement]:
        """The exact contents of the current window, oldest first."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of elements currently in the window."""

    @property
    @abc.abstractmethod
    def total_arrivals(self) -> int:
        """Number of elements that have ever arrived."""

    def active_values(self) -> List[Any]:
        """Values of the current window contents, oldest first."""
        return [element.value for element in self.active_elements()]

    def active_indexes(self) -> List[int]:
        """Stream indexes of the current window contents, oldest first."""
        return [element.index for element in self.active_elements()]

    def extend(self, elements: Sequence[StreamElement]) -> None:
        """Feed a pre-built stream (advancing time to each timestamp)."""
        for element in elements:
            self.advance_time(element.timestamp)
            self.append(element.value, element.timestamp)
