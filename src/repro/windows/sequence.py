"""Exact sequence-based (fixed-size) window tracker.

Keeps the last ``n`` arrived elements in a deque.  Used as ground truth for
verifying the O(k)-memory samplers of Section 2; its own memory is Θ(n).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..exceptions import ConfigurationError
from ..streams.element import StreamElement
from .base import WindowTracker

__all__ = ["SequenceWindow"]


class SequenceWindow(WindowTracker):
    """The exact contents of a fixed-size window of the last ``n`` elements."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ConfigurationError("window size n must be positive")
        self._n = int(n)
        self._buffer: Deque[StreamElement] = deque(maxlen=self._n)
        self._arrivals = 0

    @property
    def n(self) -> int:
        """Configured window size."""
        return self._n

    @property
    def size(self) -> int:
        return len(self._buffer)

    @property
    def total_arrivals(self) -> int:
        return self._arrivals

    def append(self, value: Any, timestamp: Optional[float] = None) -> StreamElement:
        element = StreamElement(
            value=value,
            index=self._arrivals,
            timestamp=float(timestamp) if timestamp is not None else float(self._arrivals),
        )
        self._buffer.append(element)
        self._arrivals += 1
        return element

    def advance_time(self, now: float) -> None:
        """Sequence windows expire by arrival count only; time is irrelevant."""

    def active_elements(self) -> List[StreamElement]:
        return list(self._buffer)

    def oldest_active_index(self) -> Optional[int]:
        """Stream index of the oldest window element, or ``None`` when empty."""
        if not self._buffer:
            return None
        return self._buffer[0].index

    def contains_index(self, index: int) -> bool:
        """Whether the element with the given stream index is still active."""
        if self._arrivals == 0:
            return False
        return max(0, self._arrivals - self._n) <= index < self._arrivals

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SequenceWindow(n={self._n}, size={len(self._buffer)}, arrivals={self._arrivals})"
