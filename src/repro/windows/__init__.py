"""Exact sliding-window trackers (verification substrate).

These hold the full window contents and are used by tests, examples and the
experiment harness as ground truth.  The memory-optimal samplers never touch
them.
"""

from .base import WindowTracker
from .sequence import SequenceWindow
from .timestamp import TimestampWindow

__all__ = ["WindowTracker", "SequenceWindow", "TimestampWindow"]
