"""Exact timestamp-based window tracker.

Keeps every element whose timestamp is within ``t0`` of the current time.
Used as ground truth for verifying the O(k log n)-memory samplers of
Sections 3 and 4; its own memory is Θ(n(t)).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..exceptions import ConfigurationError, StreamOrderError
from ..streams.element import StreamElement
from .base import WindowTracker

__all__ = ["TimestampWindow"]


class TimestampWindow(WindowTracker):
    """The exact contents of a timestamp window of span ``t0``.

    An element ``p`` is active at time ``now`` iff ``now - T(p) < t0``
    (paper §3).  The clock only moves forward; appends implicitly advance the
    clock to the element's timestamp.
    """

    def __init__(self, t0: float) -> None:
        if t0 <= 0:
            raise ConfigurationError("window span t0 must be positive")
        self._t0 = float(t0)
        self._buffer: Deque[StreamElement] = deque()
        self._arrivals = 0
        self._now = float("-inf")

    @property
    def t0(self) -> float:
        """Configured window span."""
        return self._t0

    @property
    def now(self) -> float:
        """Current logical time."""
        return self._now

    @property
    def size(self) -> int:
        self._expire()
        return len(self._buffer)

    @property
    def total_arrivals(self) -> int:
        return self._arrivals

    def advance_time(self, now: float) -> None:
        if now < self._now:
            raise StreamOrderError(f"clock moved backwards: {now} < {self._now}")
        self._now = float(now)
        self._expire()

    def append(self, value: Any, timestamp: Optional[float] = None) -> StreamElement:
        ts = float(timestamp) if timestamp is not None else (self._now if self._now != float("-inf") else 0.0)
        if self._buffer and ts < self._buffer[-1].timestamp:
            raise StreamOrderError(
                f"timestamps must be non-decreasing: {ts} < {self._buffer[-1].timestamp}"
            )
        if ts > self._now:
            self._now = ts
        element = StreamElement(value=value, index=self._arrivals, timestamp=ts)
        self._arrivals += 1
        self._buffer.append(element)
        self._expire()
        return element

    def active_elements(self) -> List[StreamElement]:
        self._expire()
        return list(self._buffer)

    def oldest_active_index(self) -> Optional[int]:
        """Stream index of the oldest active element (the paper's ``l(t)``)."""
        self._expire()
        if not self._buffer:
            return None
        return self._buffer[0].index

    def contains_index(self, index: int) -> bool:
        """Whether the element with the given stream index is still active."""
        self._expire()
        if not self._buffer:
            return False
        return self._buffer[0].index <= index < self._arrivals

    def _expire(self) -> None:
        while self._buffer and self._now - self._buffer[0].timestamp >= self._t0:
            self._buffer.popleft()

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimestampWindow(t0={self._t0}, size={len(self._buffer)}, "
            f"arrivals={self._arrivals}, now={self._now})"
        )
