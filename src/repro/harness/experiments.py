"""The experiment registry E1–E10.

The paper is theoretical and publishes no measurement tables, so each
experiment here operationalises one of its quantitative claims (see DESIGN.md
§5 and EXPERIMENTS.md).  Every experiment is a function taking a ``scale``
("smoke" for CI, "default" for the benchmark suite, "full" for the numbers
quoted in EXPERIMENTS.md) and a seed, and returning a
:class:`~repro.harness.tables.ResultTable`.

The registry :data:`EXPERIMENTS` maps experiment ids to (function, summary);
``run_experiment("E3")`` is what both the CLI and the pytest benchmarks call.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..analysis import (
    assess_independence,
    assess_uniformity,
    empirical_entropy,
    frequency_moment,
    relative_error,
)
from ..applications import SlidingEntropyEstimator, SlidingFrequencyMoment, SlidingTriangleCounter
from ..baselines import (
    BufferSamplerSeq,
    ChainSamplerWR,
    OversamplingSamplerSeqWOR,
    OversamplingSamplerTsWOR,
    PrioritySamplerWOR,
    PrioritySamplerWR,
    WholeStreamReservoir,
)
from ..core import (
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
)
from ..rng import ensure_rng, spawn
from ..streams import arrivals, generators, graph, make_stream
from ..windows import SequenceWindow, TimestampWindow
from .runner import (
    collect_position_samples,
    collect_wor_inclusions,
    measure_throughput,
    run_memory_profile,
)
from .tables import ResultTable

__all__ = ["EXPERIMENTS", "run_experiment", "available_experiments", "SCALES"]

SCALES = ("smoke", "default", "full")


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def _uniform_stream(length: int, seed: int) -> list:
    values = generators.take(generators.uniform_integers(1 << 20, rng=seed), length)
    return make_stream(values)


def _poisson_stream(length: int, seed: int, rate: float = 1.0) -> list:
    root = ensure_rng(seed)
    values = generators.take(generators.uniform_integers(1 << 20, rng=spawn(root, 1)), length)
    timestamps = generators.take(arrivals.poisson_arrivals(rate=rate, rng=spawn(root, 2)), length)
    return make_stream(values, timestamps)


def _bursty_stream(length: int, seed: int) -> list:
    root = ensure_rng(seed)
    values = generators.take(generators.uniform_integers(1 << 20, rng=spawn(root, 1)), length)
    timestamps = generators.take(
        arrivals.bursty_arrivals(burst_size_mean=20.0, gap_mean=5.0, rng=spawn(root, 2)), length
    )
    return make_stream(values, timestamps)


# ---------------------------------------------------------------------------
# E1 / E2 — sequence-window memory (Theorems 2.1 and 2.2)
# ---------------------------------------------------------------------------


def experiment_e1(scale: str = "default", seed: int = 0) -> ResultTable:
    """Memory of sequence-window sampling with replacement: optimal vs chain vs buffer."""
    _check_scale(scale)
    if scale == "smoke":
        window_sizes, ks, stream_factor, runs = [200], [4], 4, 2
    elif scale == "default":
        window_sizes, ks, stream_factor, runs = [1_000, 10_000], [1, 16], 5, 3
    else:
        window_sizes, ks, stream_factor, runs = [1_000, 10_000, 100_000], [1, 16, 64], 20, 5
    table = ResultTable(
        "E1",
        "Sequence windows, k samples WITH replacement — memory words "
        "(peak / p99 / run-to-run variance of the peak)",
        ["n", "k", "algorithm", "peak", "p99", "mean", "peak_var", "deterministic"],
    )
    for n in window_sizes:
        stream = _uniform_stream(stream_factor * n, seed)
        for k in ks:
            configs = [
                ("boz-optimal", lambda s, n=n, k=k: SequenceSamplerWR(n=n, k=k, rng=s)),
                ("bdm-chain", lambda s, n=n, k=k: ChainSamplerWR(n=n, k=k, rng=s)),
                ("window-buffer", lambda s, n=n, k=k: BufferSamplerSeq(n=n, k=k, rng=s)),
            ]
            for name, factory in configs:
                result = run_memory_profile(factory, stream, runs=runs, base_seed=seed)
                summary = result.memory_summary()
                probe = factory(seed)
                table.add_row(
                    n,
                    k,
                    name,
                    summary.peak,
                    summary.p99,
                    round(summary.mean_words, 1),
                    round(summary.peak_variance_across_runs, 2),
                    "yes" if probe.deterministic_memory else "no",
                )
    table.add_note(
        "Expected shape: boz-optimal peaks at Θ(k) words with zero run-to-run variance; "
        "chain sampling averages Θ(k) but its peak fluctuates across runs; the buffer costs Θ(n)."
    )
    return table


def experiment_e2(scale: str = "default", seed: int = 0) -> ResultTable:
    """Memory of sequence-window sampling without replacement: optimal vs over-sampling vs buffer."""
    _check_scale(scale)
    if scale == "smoke":
        window_sizes, ks, stream_factor, runs = [200], [4], 4, 2
    elif scale == "default":
        window_sizes, ks, stream_factor, runs = [1_000, 10_000], [8, 32], 5, 3
    else:
        window_sizes, ks, stream_factor, runs = [1_000, 10_000, 100_000], [8, 32, 128], 20, 5
    table = ResultTable(
        "E2",
        "Sequence windows, k samples WITHOUT replacement — memory words and failure rate",
        ["n", "k", "algorithm", "peak", "p99", "mean", "peak_var", "failure_rate"],
    )
    for n in window_sizes:
        stream = _uniform_stream(stream_factor * n, seed)
        query_every = max(1, n // 4)
        for k in ks:
            configs = [
                ("boz-optimal", lambda s, n=n, k=k: SequenceSamplerWOR(n=n, k=k, rng=s)),
                ("oversampling", lambda s, n=n, k=k: OversamplingSamplerSeqWOR(n=n, k=k, rng=s)),
                ("window-buffer", lambda s, n=n, k=k: BufferSamplerSeq(n=n, k=k, replacement=False, rng=s)),
            ]
            for name, factory in configs:
                result = run_memory_profile(
                    factory, stream, runs=runs, base_seed=seed, query_every=query_every
                )
                summary = result.memory_summary()
                table.add_row(
                    n,
                    k,
                    name,
                    summary.peak,
                    summary.p99,
                    round(summary.mean_words, 1),
                    round(summary.peak_variance_across_runs, 2),
                    round(result.failure_rate, 4),
                )
    table.add_note(
        "Expected shape: boz-optimal is Θ(k) with zero variance and zero failures; over-sampling "
        "stores Θ(k log n) candidates, varies across runs and can fail to deliver k samples."
    )
    return table


# ---------------------------------------------------------------------------
# E3 / E4 — timestamp-window memory (Theorems 3.9 and 4.4)
# ---------------------------------------------------------------------------


def experiment_e3(scale: str = "default", seed: int = 0) -> ResultTable:
    """Memory of timestamp-window sampling with replacement: optimal vs priority sampling."""
    _check_scale(scale)
    if scale == "smoke":
        spans, ks, length, runs = [100.0], [2], 2_000, 2
    elif scale == "default":
        spans, ks, length, runs = [1_000.0], [1, 16], 20_000, 3
    else:
        spans, ks, length, runs = [1_000.0, 10_000.0], [1, 16, 64], 100_000, 5
    table = ResultTable(
        "E3",
        "Timestamp windows, k samples WITH replacement — memory words per sample",
        ["arrivals", "t0", "k", "algorithm", "peak", "peak_per_k", "p99", "peak_var"],
    )
    for arrival_name, stream_builder in [("poisson", _poisson_stream), ("bursty", _bursty_stream)]:
        stream = stream_builder(length, seed)
        for t0 in spans:
            for k in ks:
                configs = [
                    ("boz-optimal", lambda s, t0=t0, k=k: TimestampSamplerWR(t0=t0, k=k, rng=s)),
                    ("bdm-priority", lambda s, t0=t0, k=k: PrioritySamplerWR(t0=t0, k=k, rng=s)),
                ]
                for name, factory in configs:
                    result = run_memory_profile(
                        factory, stream, runs=runs, base_seed=seed, advance_time=True
                    )
                    summary = result.memory_summary()
                    table.add_row(
                        f"{arrival_name}/{length}",
                        t0,
                        k,
                        name,
                        summary.peak,
                        round(summary.peak / k, 1),
                        summary.p99,
                        round(summary.peak_variance_across_runs, 2),
                    )
    table.add_note(
        "Expected shape: both methods are O(log n) per sample on average, but the optimal sampler's "
        "footprint is a deterministic function of the arrival pattern (zero variance across runs) "
        "while priority sampling's peak moves with its coin flips."
    )
    return table


def experiment_e4(scale: str = "default", seed: int = 0) -> ResultTable:
    """Memory of timestamp-window sampling without replacement: optimal vs Gemulla-Lehner vs over-sampling."""
    _check_scale(scale)
    if scale == "smoke":
        ks, length, t0, runs = [4], 2_000, 100.0, 2
    elif scale == "default":
        ks, length, t0, runs = [4, 16], 20_000, 1_000.0, 3
    else:
        ks, length, t0, runs = [4, 16, 64], 100_000, 1_000.0, 5
    table = ResultTable(
        "E4",
        "Timestamp windows, k samples WITHOUT replacement — memory words and failure rate",
        ["arrivals", "t0", "k", "algorithm", "peak", "p99", "peak_var", "failure_rate"],
    )
    stream = _poisson_stream(length, seed)
    query_every = max(1, length // 20)
    for k in ks:
        configs = [
            ("boz-optimal", lambda s, k=k: TimestampSamplerWOR(t0=t0, k=k, rng=s)),
            ("gl-priority", lambda s, k=k: PrioritySamplerWOR(t0=t0, k=k, rng=s)),
            (
                "oversampling",
                lambda s, k=k: OversamplingSamplerTsWOR(t0=t0, k=k, rng=s, expected_window=t0),
            ),
        ]
        for name, factory in configs:
            result = run_memory_profile(
                factory, stream, runs=runs, base_seed=seed, advance_time=True, query_every=query_every
            )
            summary = result.memory_summary()
            table.add_row(
                length,
                t0,
                k,
                name,
                summary.peak,
                summary.p99,
                round(summary.peak_variance_across_runs, 2),
                round(result.failure_rate, 4),
            )
    table.add_note(
        "Expected shape: boz-optimal is Θ(k log n) with zero run-to-run variance and no failures; "
        "Gemulla-Lehner matches only in expectation; over-sampling needs a window-size guess and can fail."
    )
    return table


# ---------------------------------------------------------------------------
# E5 — uniformity of the samples (correctness of Theorems 2.1–4.4)
# ---------------------------------------------------------------------------


def experiment_e5(scale: str = "default", seed: int = 0) -> ResultTable:
    """Chi-square / TV uniformity of every sampler's output over window positions."""
    _check_scale(scale)
    if scale == "smoke":
        n, lanes, wor_runs, stream_length = 32, 800, 150, 150
    elif scale == "default":
        n, lanes, wor_runs, stream_length = 64, 2_500, 250, 320
    else:
        n, lanes, wor_runs, stream_length = 128, 20_000, 2_000, 1_000
    table = ResultTable(
        "E5",
        "Uniformity over window positions (χ² p-value and total-variation distance)",
        ["sampler", "window", "trials", "chi2", "p_value", "tv_distance", "uniform?"],
    )
    stream = _uniform_stream(stream_length, seed)
    window_positions = list(range(stream_length - n, stream_length))

    # With-replacement samplers: many independent lanes, one query.
    wr_configs = [
        ("boz-seq-wr", "sequence", lambda s: SequenceSamplerWR(n=n, k=lanes, rng=s), False),
        ("bdm-chain-wr", "sequence", lambda s: ChainSamplerWR(n=n, k=lanes, rng=s), False),
        ("whole-stream (naive)", "sequence", lambda s: WholeStreamReservoir(n=n, k=lanes, rng=s), False),
        ("boz-ts-wr", "timestamp", lambda s: TimestampSamplerWR(t0=float(n), k=lanes, rng=s), True),
        ("bdm-priority-wr", "timestamp", lambda s: PrioritySamplerWR(t0=float(n), k=lanes, rng=s), True),
    ]
    for name, window_type, factory, advance in wr_configs:
        indexes, _ = collect_position_samples(factory, stream, seed=seed, advance_time=advance)
        observed = [index for index in indexes if index in set(window_positions)]
        out_of_window = len(indexes) - len(observed)
        if out_of_window:
            # The naive whole-stream reservoir samples expired positions; report
            # it as maximally non-uniform instead of crashing the chi-square.
            table.add_row(name, window_type, len(indexes), float("nan"), 0.0,
                          round(out_of_window / len(indexes), 4), "NO (expired samples)")
            continue
        report = assess_uniformity(observed, window_positions)
        table.add_row(
            name,
            window_type,
            report.trials,
            round(report.chi_square, 1),
            round(report.p_value, 4),
            round(report.total_variation, 4),
            "yes" if report.passes else "NO",
        )

    # Without-replacement samplers: pooled inclusions over repeated runs.
    k_wor = 8
    wor_configs = [
        ("boz-seq-wor", "sequence", lambda s: SequenceSamplerWOR(n=n, k=k_wor, rng=s), False),
        ("boz-ts-wor", "timestamp", lambda s: TimestampSamplerWOR(t0=float(n), k=k_wor, rng=s), True),
        ("gl-priority-wor", "timestamp", lambda s: PrioritySamplerWOR(t0=float(n), k=k_wor, rng=s), True),
    ]
    for name, window_type, factory, advance in wor_configs:
        pooled = collect_wor_inclusions(factory, stream, runs=wor_runs, base_seed=seed, advance_time=advance)
        report = assess_uniformity(pooled, window_positions)
        table.add_row(
            name,
            window_type,
            report.trials,
            round(report.chi_square, 1),
            round(report.p_value, 4),
            round(report.total_variation, 4),
            "yes" if report.passes else "NO",
        )
    table.add_note(
        "Expected shape: every window-aware sampler passes (p-value well above 0.001); the naive "
        "whole-stream reservoir fails because most of its samples have already expired."
    )
    return table


# ---------------------------------------------------------------------------
# E6 — deterministic vs randomized memory over time
# ---------------------------------------------------------------------------


def experiment_e6(scale: str = "default", seed: int = 0) -> ResultTable:
    """Per-arrival memory trace checkpoints: flat (optimal) vs fluctuating (baselines)."""
    _check_scale(scale)
    if scale == "smoke":
        n, k, length, runs = 500, 8, 4_000, 2
    elif scale == "default":
        n, k, length, runs = 5_000, 16, 40_000, 3
    else:
        n, k, length, runs = 10_000, 16, 200_000, 5
    table = ResultTable(
        "E6",
        "Memory-word trace over time (checkpoints at 20%..100% of the stream, worst run)",
        ["algorithm", "n", "k", "t@20%", "t@40%", "t@60%", "t@80%", "t@100%", "peak", "peak_var"],
    )
    stream = _uniform_stream(length, seed)
    configs = [
        ("boz-seq-wr", lambda s: SequenceSamplerWR(n=n, k=k, rng=s)),
        ("bdm-chain-wr", lambda s: ChainSamplerWR(n=n, k=k, rng=s)),
        ("oversampling-wor", lambda s: OversamplingSamplerSeqWOR(n=n, k=k, rng=s)),
    ]
    checkpoints = [0.2, 0.4, 0.6, 0.8, 1.0]
    for name, factory in configs:
        result = run_memory_profile(factory, stream, runs=runs, base_seed=seed)
        worst = max(result.traces, key=lambda trace: trace.peak)
        points = [worst.readings[int(fraction * (len(worst) - 1))] for fraction in checkpoints]
        summary = result.memory_summary()
        table.add_row(name, n, k, *points, summary.peak, round(summary.peak_variance_across_runs, 2))
    table.add_note(
        "Expected shape: the optimal sampler's row is constant once the first window has filled; the "
        "baselines' checkpoints wander and their peaks differ across runs."
    )
    return table


# ---------------------------------------------------------------------------
# E7 — update throughput
# ---------------------------------------------------------------------------


def experiment_e7(scale: str = "default", seed: int = 0) -> ResultTable:
    """Per-element update cost (elements/second, wall clock) for every sampler."""
    _check_scale(scale)
    if scale == "smoke":
        length, n, t0, ks = 5_000, 500, 500.0, [4]
    elif scale == "default":
        length, n, t0, ks = 30_000, 2_000, 2_000.0, [1, 16]
    else:
        length, n, t0, ks = 200_000, 10_000, 10_000.0, [1, 16, 64]
    table = ResultTable(
        "E7",
        "Update throughput (thousand elements per second; coarse wall-clock)",
        ["algorithm", "window", "k", "kelements_per_s"],
    )
    seq_stream = _uniform_stream(length, seed)
    ts_stream = _poisson_stream(length, seed)
    for k in ks:
        configs = [
            ("boz-seq-wr", "sequence", lambda s, k=k: SequenceSamplerWR(n=n, k=k, rng=s), seq_stream, False),
            ("boz-seq-wor", "sequence", lambda s, k=k: SequenceSamplerWOR(n=n, k=k, rng=s), seq_stream, False),
            ("bdm-chain-wr", "sequence", lambda s, k=k: ChainSamplerWR(n=n, k=k, rng=s), seq_stream, False),
            ("boz-ts-wr", "timestamp", lambda s, k=k: TimestampSamplerWR(t0=t0, k=k, rng=s), ts_stream, True),
            ("boz-ts-wor", "timestamp", lambda s, k=k: TimestampSamplerWOR(t0=t0, k=k, rng=s), ts_stream, True),
            ("bdm-priority-wr", "timestamp", lambda s, k=k: PrioritySamplerWR(t0=t0, k=k, rng=s), ts_stream, True),
        ]
        for name, window_type, factory, stream, advance in configs:
            rate = measure_throughput(factory, stream, seed=seed, advance_time=advance)
            table.add_row(name, window_type, k, round(rate / 1_000.0, 1))
    table.add_note(
        "Expected shape: all methods are a small constant (or O(log n) for timestamp windows) per "
        "element; the optimal samplers pay a modest constant-factor premium over the randomized "
        "baselines in exchange for worst-case memory."
    )
    return table


# ---------------------------------------------------------------------------
# E8 — Section-5 applications (Theorem 5.1, Corollaries 5.2-5.4)
# ---------------------------------------------------------------------------


def experiment_e8(scale: str = "default", seed: int = 0) -> ResultTable:
    """Frequency-moment, entropy and triangle estimation over sliding windows."""
    _check_scale(scale)
    if scale == "smoke":
        n, length, estimators, graph_vertices, graph_p = 500, 3_000, 200, 25, 0.5
    elif scale == "default":
        n, length, estimators, graph_vertices, graph_p = 2_000, 12_000, 600, 40, 0.5
    else:
        n, length, estimators, graph_vertices, graph_p = 5_000, 50_000, 2_000, 60, 0.5
    table = ResultTable(
        "E8",
        "Applications over sliding windows: estimate vs exact window statistic",
        ["application", "sampler", "estimate", "exact", "relative_error"],
    )
    root = ensure_rng(seed)
    values = generators.take(generators.zipfian_integers(64, skew=1.3, rng=spawn(root, 1)), length)

    # Frequency moment F2 and entropy with the optimal sampler.
    window = SequenceWindow(n)
    f2 = SlidingFrequencyMoment(2.0, window="sequence", n=n, estimators=estimators, rng=spawn(root, 2))
    f2_naive = SlidingFrequencyMoment(
        2.0, window="sequence", n=n, estimators=estimators, algorithm="whole-stream", rng=spawn(root, 3)
    )
    entropy = SlidingEntropyEstimator(window="sequence", n=n, estimators=estimators, rng=spawn(root, 4))
    for value in values:
        window.append(value)
        f2.append(value)
        f2_naive.append(value)
        entropy.append(value)
    exact_f2 = frequency_moment(window.active_values(), 2)
    exact_h = empirical_entropy(window.active_values())
    table.add_row("F2 (self-join size)", "boz-seq-wr", round(f2.estimate(), 1), exact_f2,
                  round(relative_error(f2.estimate(), exact_f2), 4))
    table.add_row("F2 (self-join size)", "whole-stream (naive)", round(f2_naive.estimate(), 1), exact_f2,
                  round(relative_error(f2_naive.estimate(), exact_f2), 4))
    table.add_row("entropy (bits)", "boz-seq-wr", round(entropy.estimate_entropy(), 3), round(exact_h, 3),
                  round(relative_error(entropy.estimate_entropy(), exact_h), 4))

    # Triangle counting over a window covering the whole edge stream of a dense graph.
    edges = graph.erdos_renyi_edges(graph_vertices, graph_p, rng=spawn(root, 5))
    counter = SlidingTriangleCounter(
        num_vertices=graph_vertices, window="sequence", n=len(edges),
        estimators=max(estimators, 1000), rng=spawn(root, 6),
    )
    counter.extend(edges)
    exact_triangles = graph.count_triangles(edges)
    table.add_row("triangles", "boz-seq-wr", round(counter.estimate(), 1), exact_triangles,
                  round(relative_error(counter.estimate(), exact_triangles), 4))
    table.add_note(
        "Expected shape: sampling-based estimators driven by the optimal window sampler track the "
        "exact window statistics within sampling error; the naive whole-stream reservoir is biased "
        "because most of its samples predate the window."
    )
    return table


# ---------------------------------------------------------------------------
# E9 — independence of disjoint windows (§1.3.4)
# ---------------------------------------------------------------------------


def experiment_e9(scale: str = "default", seed: int = 0) -> ResultTable:
    """Association tests between samples of two non-overlapping windows."""
    _check_scale(scale)
    if scale == "smoke":
        n, runs, bins = 32, 400, 4
    elif scale == "default":
        n, runs, bins = 64, 1_500, 4
    else:
        n, runs, bins = 64, 6_000, 8
    table = ResultTable(
        "E9",
        "Independence of samples from disjoint windows (χ² contingency test)",
        ["sampler", "runs", "chi2", "dof", "p_value", "correlation", "independent?"],
    )
    length = 3 * n  # window A = positions [n, 2n), window B = positions [2n, 3n)
    stream = _uniform_stream(length, seed)

    def window_bin(index: int, start: int) -> int:
        return (index - start) * bins // n

    configs = [
        ("boz-seq-wr", lambda s: SequenceSamplerWR(n=n, k=1, rng=s), False),
        ("boz-ts-wr", lambda s: TimestampSamplerWR(t0=float(n), k=1, rng=s), True),
    ]
    for name, factory, advance in configs:
        pairs: List[Tuple[int, int]] = []
        for run in range(runs):
            sampler = factory(seed + 1000 + run)
            first_bin = None
            for position, element in enumerate(stream):
                if advance:
                    sampler.advance_time(element.timestamp)
                sampler.append(element.value, element.timestamp)
                if position == 2 * n - 1:
                    first_bin = window_bin(sampler.sample()[0].index, n)
            second_bin = window_bin(sampler.sample()[0].index, 2 * n)
            pairs.append((first_bin, second_bin))
        report = assess_independence(pairs, list(range(bins)), list(range(bins)))
        table.add_row(
            name,
            report.trials,
            round(report.chi_square, 1),
            report.degrees_of_freedom,
            round(report.p_value, 4),
            round(report.correlation, 4),
            "yes" if report.passes else "NO",
        )
    table.add_note(
        "Expected shape: the position sampled in window A carries no information about the position "
        "sampled in the disjoint window B (p-value above the rejection threshold, correlation near 0)."
    )
    return table


# ---------------------------------------------------------------------------
# E10 — the Ω(log n) lower bound pattern (Lemma 3.10)
# ---------------------------------------------------------------------------


def experiment_e10(scale: str = "default", seed: int = 0) -> ResultTable:
    """Memory on the Lemma 3.10 doubling-burst stream as the window grows."""
    _check_scale(scale)
    if scale == "smoke":
        spans = [4, 6]
    elif scale == "default":
        spans = [4, 6, 8]
    else:
        spans = [4, 6, 8, 10]
    table = ResultTable(
        "E10",
        "Lower-bound stream (doubling bursts): window size vs memory words",
        ["t0", "arrivals", "window_size_at_peak", "log2(window)", "algorithm", "peak_words"],
    )
    for t0 in spans:
        timestamps = arrivals.lower_bound_burst(t0, tail_length=2 * t0, scale=2**t0)
        values = list(range(len(timestamps)))
        stream = make_stream(values, timestamps)
        tracker = TimestampWindow(float(t0))
        peak_window = 0
        for element in stream:
            tracker.advance_time(element.timestamp)
            tracker.append(element.value, element.timestamp)
            peak_window = max(peak_window, tracker.size)
        configs = [
            ("boz-ts-wr", lambda s, t0=t0: TimestampSamplerWR(t0=float(t0), k=1, rng=s)),
            ("bdm-priority-wr", lambda s, t0=t0: PrioritySamplerWR(t0=float(t0), k=1, rng=s)),
        ]
        for name, factory in configs:
            result = run_memory_profile(factory, stream, runs=2, base_seed=seed, advance_time=True)
            summary = result.memory_summary()
            table.add_row(
                t0,
                len(stream),
                peak_window,
                round(math.log2(max(peak_window, 2)), 2),
                name,
                summary.peak,
            )
    table.add_note(
        "Expected shape: on the doubling-burst stream both correct algorithms store Θ(log n) words — "
        "memory grows linearly with log2(window size), matching the Ω(log n) lower bound of Lemma 3.10 "
        "and the O(log n) upper bound of Theorem 3.9."
    )
    return table


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Tuple[Callable[..., ResultTable], str]] = {
    "E1": (experiment_e1, "Sequence-window WR memory: optimal vs chain vs buffer (Thm 2.1)"),
    "E2": (experiment_e2, "Sequence-window WoR memory: optimal vs over-sampling (Thm 2.2)"),
    "E3": (experiment_e3, "Timestamp-window WR memory: optimal vs priority sampling (Thm 3.9)"),
    "E4": (experiment_e4, "Timestamp-window WoR memory: optimal vs Gemulla-Lehner (Thm 4.4)"),
    "E5": (experiment_e5, "Uniformity of samples over window positions (all variants)"),
    "E6": (experiment_e6, "Memory trace over time: deterministic vs randomized bounds"),
    "E7": (experiment_e7, "Update throughput of every sampler"),
    "E8": (experiment_e8, "Applications: F2, entropy, triangles over windows (Thm 5.1)"),
    "E9": (experiment_e9, "Independence of samples from disjoint windows (§1.3.4)"),
    "E10": (experiment_e10, "Ω(log n) lower-bound stream behaviour (Lemma 3.10)"),
}


def available_experiments() -> List[str]:
    """Experiment ids in canonical order."""
    return sorted(EXPERIMENTS, key=lambda name: int(name[1:]))


def run_experiment(experiment_id: str, scale: str = "default", seed: int = 0) -> ResultTable:
    """Run one experiment by id (e.g. ``"E3"``) and return its table."""
    experiment_id = experiment_id.upper()
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available_experiments())}"
        )
    function, _ = EXPERIMENTS[experiment_id]
    return function(scale=scale, seed=seed)
