"""Result tables produced by the experiment harness.

Every experiment in :mod:`repro.harness.experiments` returns a
:class:`ResultTable`; the benchmarks print it, the CLI prints it, and
EXPERIMENTS.md quotes it.  The table is a thin, dependency-free container with
aligned-text, markdown and CSV renderers.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An experiment's output: a titled grid of rows plus free-form notes."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row given positionally or by column name."""
        if values and named:
            raise ValueError("pass the row either positionally or by name, not both")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise ValueError(f"unknown columns: {sorted(unknown)}")
            row = [named.get(column, "") for column in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
            row = list(values)
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        """Aligned plain-text rendering (what the benchmarks print)."""
        header = [str(column) for column in self.columns]
        body = [[self._format_cell(cell) for cell in row] for row in self.rows]
        widths = [len(column) for column in header]
        for row in body:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        lines = [f"[{self.experiment}] {self.title}"]
        lines.append("  ".join(column.ljust(width) for column, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (what EXPERIMENTS.md quotes)."""
        lines = [f"**{self.experiment} — {self.title}**", ""]
        lines.append("| " + " | ".join(str(column) for column in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._format_cell(cell) for cell in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"_note: {note}_")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (one header row plus the data rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()
