"""Drivers that feed workloads into samplers and collect measurements.

The functions here are the shared machinery behind the experiments (E1–E10):
they run a sampler factory over a stream several times with different seeds
and collect memory traces, sample draws, failure counts and wall-clock
throughput.  Keeping them separate from the experiment definitions makes them
reusable from the examples and from user code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..analysis.memory_profile import MemorySummary, MemoryTrace, summarize_traces
from ..exceptions import SamplingFailureError
from ..streams.element import StreamElement

__all__ = [
    "SamplerFactory",
    "RunResult",
    "run_memory_profile",
    "collect_position_samples",
    "collect_wor_inclusions",
    "measure_throughput",
]

#: A callable building a fresh sampler from a seed (one per run).
SamplerFactory = Callable[[int], Any]


@dataclass
class RunResult:
    """Everything collected from repeated runs of one configuration."""

    traces: List[MemoryTrace] = field(default_factory=list)
    sampling_failures: int = 0
    queries: int = 0

    def memory_summary(self) -> MemorySummary:
        return summarize_traces(self.traces)

    @property
    def failure_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.sampling_failures / self.queries


def _feed(sampler: Any, element: StreamElement, advance_time: bool) -> None:
    if advance_time and hasattr(sampler, "advance_time"):
        sampler.advance_time(element.timestamp)
    sampler.append(element.value, element.timestamp)


def run_memory_profile(
    factory: SamplerFactory,
    elements: Sequence[StreamElement],
    runs: int = 3,
    base_seed: int = 0,
    advance_time: bool = False,
    query_every: Optional[int] = None,
) -> RunResult:
    """Run ``factory(seed)`` over ``elements`` ``runs`` times, recording memory.

    When ``query_every`` is given, ``sample()`` is called every that many
    arrivals and :class:`~repro.exceptions.SamplingFailureError` is counted
    instead of propagated (the over-sampling baseline fails by design).
    """
    result = RunResult()
    for run in range(runs):
        sampler = factory(base_seed + run)
        trace = MemoryTrace()
        for position, element in enumerate(elements):
            _feed(sampler, element, advance_time)
            trace.record(sampler.memory_words())
            if query_every and (position + 1) % query_every == 0:
                result.queries += 1
                try:
                    sampler.sample()
                except SamplingFailureError:
                    result.sampling_failures += 1
        result.traces.append(trace)
    return result


def collect_position_samples(
    factory: SamplerFactory,
    elements: Sequence[StreamElement],
    seed: int = 0,
    advance_time: bool = False,
) -> Tuple[List[int], Any]:
    """Feed the stream once and return the sampled stream *indexes*.

    Intended for with-replacement samplers built with many independent lanes
    (``k`` large): a single query then yields ``k`` independent draws, which
    is the cheapest way to collect the uniformity statistics of experiment E5.
    Returns ``(indexes, sampler)`` so callers can also inspect memory.
    """
    sampler = factory(seed)
    for element in elements:
        _feed(sampler, element, advance_time)
    indexes = [drawn.index for drawn in sampler.sample()]
    return indexes, sampler


def collect_wor_inclusions(
    factory: SamplerFactory,
    elements: Sequence[StreamElement],
    runs: int,
    base_seed: int = 0,
    advance_time: bool = False,
) -> List[int]:
    """Repeatedly run a without-replacement sampler and pool the sampled indexes.

    Under correctness every window position appears with the same inclusion
    probability ``k / n``, so the pooled indexes must be uniform over the
    window — the statistic used by experiment E5 for the WoR variants.
    """
    pooled: List[int] = []
    for run in range(runs):
        sampler = factory(base_seed + run)
        for element in elements:
            _feed(sampler, element, advance_time)
        pooled.extend(drawn.index for drawn in sampler.sample())
    return pooled


def measure_throughput(
    factory: SamplerFactory,
    elements: Sequence[StreamElement],
    seed: int = 0,
    advance_time: bool = False,
) -> float:
    """Elements processed per second for a single run (coarse, wall-clock)."""
    sampler = factory(seed)
    start = time.perf_counter()
    for element in elements:
        _feed(sampler, element, advance_time)
    elapsed = time.perf_counter() - start
    if elapsed <= 0:
        return float("inf")
    return len(elements) / elapsed
