"""Experiment harness: workload drivers, result tables and the E1–E10 registry."""

from .experiments import EXPERIMENTS, SCALES, available_experiments, run_experiment
from .runner import (
    RunResult,
    collect_position_samples,
    collect_wor_inclusions,
    measure_throughput,
    run_memory_profile,
)
from .tables import ResultTable

__all__ = [
    "EXPERIMENTS",
    "SCALES",
    "available_experiments",
    "run_experiment",
    "ResultTable",
    "RunResult",
    "run_memory_profile",
    "collect_position_samples",
    "collect_wor_inclusions",
    "measure_throughput",
]
