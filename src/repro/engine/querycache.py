"""Generation-invalidated TTL cache for fleet-wide query results.

Every :class:`~repro.engine.pool.KeyedSamplerPool` maintains a monotone
``generation`` counter, bumped on every mutation that could change a query
answer (append, grouped extend, eviction sweep, discard, clock advance,
``load_state_dict``) — the same dirty-tracking signal the incremental
checkpoint layer uses to skip unchanged shards.  The tuple of per-shard
generations is therefore an *exact* invalidation signal for any fleet-wide
query result: if no shard's generation moved, no sampler state moved, and
the cached answer is still bit-identical to a recomputation.

:class:`QueryCache` stores ``(op, args) -> result`` entries stamped with the
generation tuple they were computed under (plus an optional wall-clock TTL
as a belt-and-braces bound for callers that mutate pools out of band).  A
lookup whose stored generations differ from the fleet's current generations
counts as an *invalidation* and evicts the entry; bounded capacity evicts
least-recently-used entries.  Hit/miss/invalidation/expiration/eviction
counts report into a :class:`repro.obs.MetricsRegistry` (``querycache.*``)
and are mirrored as plain integers for registry-less callers.

The cache never recomputes anything itself — engines consult it inside
their query methods (``ShardedEngine(query_cache=...)``), and the serve
daemon keeps one per tenant so repeated dashboard queries between ingest
batches are served without touching the pools.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from ..exceptions import ConfigurationError
from ..obs import get_registry

__all__ = ["QueryCache"]


class QueryCache:
    """A bounded, generation-invalidated, optionally-TTL'd result cache.

    Parameters
    ----------
    max_entries:
        Capacity bound; storing beyond it evicts least-recently-used
        entries.
    ttl:
        Optional wall-clock lifetime (seconds) per entry.  Generations are
        the primary invalidation signal; the TTL exists for deployments
        that want a hard staleness ceiling regardless of ingest activity.
        ``None`` (default) disables it.
    clock:
        Time source for the TTL (monotonic by default; injectable for
        tests).
    registry:
        A :class:`repro.obs.MetricsRegistry` receiving the
        ``querycache.hits`` / ``.misses`` / ``.invalidations`` /
        ``.expirations`` / ``.evictions`` counters.  Defaults to the
        process-wide registry (a no-op unless :func:`repro.obs.enable`
        ran).

    Thread-safety: all operations take an internal lock, so one cache may
    be shared by an engine and a serving layer on different threads.
    """

    def __init__(
        self,
        *,
        max_entries: int = 1024,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[Any] = None,
    ) -> None:
        if max_entries <= 0:
            raise ConfigurationError("max_entries must be positive")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError("ttl must be positive (or None to disable)")
        self._max_entries = int(max_entries)
        self._ttl = None if ttl is None else float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (generations, expires_at_or_None, value); OrderedDict
        #: recency order implements the LRU bound.
        self._entries: "OrderedDict[Any, Tuple[Tuple[int, ...], Optional[float], Any]]"
        self._entries = OrderedDict()
        obs = registry if registry is not None else get_registry()
        self._m_hits = obs.counter("querycache.hits")
        self._m_misses = obs.counter("querycache.misses")
        self._m_invalidations = obs.counter("querycache.invalidations")
        self._m_expirations = obs.counter("querycache.expirations")
        self._m_evictions = obs.counter("querycache.evictions")
        # Plain mirrors so stats() works on the null registry too.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0
        self.evictions = 0

    # -- core protocol -------------------------------------------------------

    def lookup(self, key: Any, generations: Tuple[int, ...]) -> Tuple[bool, Any]:
        """``(True, value)`` when ``key`` is cached *and* its stored
        generation tuple equals ``generations`` (and its TTL, if any, has
        not lapsed); ``(False, None)`` otherwise.  A generation mismatch
        evicts the entry and counts as an invalidation; a lapsed TTL evicts
        and counts as an expiration; both then count as the miss they are.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored, expires_at, value = entry
                if expires_at is not None and self._clock() >= expires_at:
                    del self._entries[key]
                    self.expirations += 1
                    self._m_expirations.inc()
                elif stored != tuple(generations):
                    del self._entries[key]
                    self.invalidations += 1
                    self._m_invalidations.inc()
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._m_hits.inc()
                    return True, value
            self.misses += 1
            self._m_misses.inc()
            return False, None

    def store(self, key: Any, generations: Tuple[int, ...], value: Any) -> None:
        """Record ``value`` as the answer for ``key`` under ``generations``."""
        with self._lock:
            expires_at = None if self._ttl is None else self._clock() + self._ttl
            self._entries[key] = (tuple(generations), expires_at, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._m_evictions.inc()

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current entry count, as plain ints
        (available even on the null registry)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryCache(entries={len(self)}, max_entries={self._max_entries}, "
            f"ttl={self._ttl}, hits={self.hits}, misses={self.misses})"
        )
