"""Deterministic fault injection for supervised :class:`ProcessEngine` fleets.

Crash-recovery code is only trustworthy if its failure windows can be hit *on
purpose*.  This module provides small, deterministic injectors that kill a
worker process at a chosen point in the dataflow — the Nth dispatched
sub-batch, the middle of a checkpoint write, the middle of a WAL replay — and
that damage on-disk artefacts (checkpoint segments, journal tails) in the
exact ways the recovery path claims to detect.  The chaos tests and the CI
``chaos`` job are built on these; they are equally usable from a REPL to
reproduce a failure by hand.

Every injector is synchronous and deterministic: no random fault schedules,
no background threads.  The kill-at-point injectors are context managers that
wrap one coordinator method on the *instance* (never the class), so they
compose with any transport and never leak across engines::

    with chaos.kill_at_batch(engine, nth=5, worker=1):
        engine.ingest(records)          # worker 1 dies at its 5th sub-batch
    chaos.wait_until_healthy(engine)    # supervisor restores + replays

The file-damage injectors (:func:`corrupt_segment`, :func:`torn_wal_tail`,
:func:`forge_wal_record`) operate on paths, not engines, and model the three
distinct corruption classes the recovery path distinguishes: a segment whose
digest no longer matches (→ :class:`~repro.exceptions.CheckpointError`), a
journal append torn mid-write (→ truncated with a warning, never decoded),
and a checksum-valid journal record the codec rejects
(→ :class:`~repro.exceptions.TransportError` with byte-offset context).
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from ..exceptions import ConfigurationError
from .wal import frame_record, shard_wal_name

__all__ = [
    "kill_worker",
    "kill_at_batch",
    "kill_at_checkpoint",
    "kill_during_replay",
    "corrupt_segment",
    "torn_wal_tail",
    "forge_wal_record",
    "wait_until_healthy",
]


def kill_worker(engine: Any, index: int, *, join_timeout: float = 10.0) -> None:
    """SIGKILL one worker process *now* and wait for the OS to reap it.

    The most blunt injector: equivalent to an OOM kill landing between
    batches.  The supervisor notices within its poll interval.
    """
    process = engine._processes[index]
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=join_timeout)
    if process.is_alive():  # pragma: no cover - kernel refused a SIGKILL
        raise RuntimeError(f"worker {index} (pid {process.pid}) survived SIGKILL")


@contextmanager
def kill_at_batch(engine: Any, nth: int, *, worker: int = 0) -> Iterator[None]:
    """Kill ``worker`` at the moment the coordinator routes its ``nth``
    sub-batch to it (1-based), *before* the journal append for that batch.

    This lands the death in ingest's most delicate window: the killed batch
    itself is parked (or journalled and abandoned) by the dispatch path, so
    after recovery the stream must still be bit-identical.  Fires once.
    """
    if nth < 1:
        raise ConfigurationError(f"nth must be >= 1, got {nth}")
    original = engine._dispatch
    state = {"count": 0, "fired": False}

    def chaotic_dispatch(shard: int, batch: Any) -> None:
        if not state["fired"] and engine._worker_of(shard) == worker:
            state["count"] += 1
            if state["count"] >= nth:
                state["fired"] = True
                kill_worker(engine, worker)
        original(shard, batch)

    engine._dispatch = chaotic_dispatch
    try:
        yield
    finally:
        del engine._dispatch


@contextmanager
def kill_at_checkpoint(engine: Any, *, worker: int = 0) -> Iterator[None]:
    """Kill ``worker`` at the start of the next checkpoint's segment-write
    fan-out — after the manifest plan is fixed, before any worker persists.

    The checkpoint must fail loudly (it cannot cover the dead worker's
    shards), the previous manifest must remain the committed one, and the
    journal must NOT be truncated — a retry after recovery succeeds.  Fires
    once.
    """
    original = engine._checkpoint_segments
    state = {"fired": False}

    def chaotic_segments(path: str, plan: Any) -> Any:
        if not state["fired"]:
            state["fired"] = True
            kill_worker(engine, worker)
        return original(path, plan)

    engine._checkpoint_segments = chaotic_segments
    try:
        yield
    finally:
        del engine._checkpoint_segments


@contextmanager
def kill_during_replay(engine: Any, *, nth: int = 1) -> Iterator[None]:
    """Kill the *replacement* worker after the supervisor has fed it ``nth``
    journal records (1-based) — a double fault, mid-recovery.

    The restart attempt must fail cleanly, burn one unit of the
    :class:`RestartPolicy` budget, and the next attempt must replay the whole
    tail again from the checkpoint baseline (replay is idempotent only
    because each attempt starts from restored state).  Fires once.
    """
    if nth < 1:
        raise ConfigurationError(f"nth must be >= 1, got {nth}")
    original = engine._recovery_put
    state = {"count": 0, "fired": False}

    def chaotic_put(process: Any, inbox: Any, message: Any) -> None:
        original(process, inbox, message)
        if not state["fired"] and message and message[0] == "applyc":
            state["count"] += 1
            if state["count"] >= nth:
                state["fired"] = True
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=10.0)

    engine._recovery_put = chaotic_put
    try:
        yield
    finally:
        del engine._recovery_put


def corrupt_segment(path: str, shard: int) -> str:
    """Flip one byte in the middle of the checkpoint segment holding
    ``shard``; returns the damaged file's path.

    Any later restore touching that shard must fail with a digest-mismatch
    :class:`~repro.exceptions.CheckpointError` — never load the bytes.
    """
    manifest_path = os.path.join(path, "MANIFEST.json")
    with open(manifest_path, "r", encoding="utf-8") as reader:
        manifest = json.load(reader)
    for entry in manifest.get("segments", []):
        if isinstance(entry, dict) and int(entry.get("shard", -1)) == shard:
            segment_path = os.path.join(path, str(entry["file"]))
            with open(segment_path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    raise ConfigurationError(f"{segment_path} is empty")
                handle.seek(size // 2)
                byte = handle.read(1)
                handle.seek(size // 2)
                handle.write(bytes([byte[0] ^ 0xFF]))
            return segment_path
    raise ConfigurationError(f"{manifest_path} has no segment for shard {shard}")


def torn_wal_tail(wal_dir: str, shard: int, *, drop_bytes: int = 3) -> int:
    """Tear the final journal record for ``shard`` by chopping ``drop_bytes``
    bytes off the file — a crash mid-``write``.  Returns the new file size.

    Replay must truncate the partial frame with a warning and keep every
    record before it; it must never hand the torn bytes to the codec.
    """
    path = os.path.join(wal_dir, shard_wal_name(shard))
    size = os.path.getsize(path)
    if drop_bytes < 1 or drop_bytes >= size:
        raise ConfigurationError(
            f"drop_bytes must be in [1, {size - 1}] for {path}, got {drop_bytes}"
        )
    os.truncate(path, size - drop_bytes)
    return size - drop_bytes


def forge_wal_record(wal_dir: str, shard: int, payload: bytes = b"not a batch") -> str:
    """Append a checksum-*valid* frame whose payload is not ``encode_batch``
    output; returns the journal path.

    This is the corruption torn-tail handling must NOT swallow: the frame is
    structurally intact, so replay must surface a
    :class:`~repro.exceptions.TransportError` naming the file and offset
    instead of truncating or applying garbage.
    """
    path = os.path.join(wal_dir, shard_wal_name(shard))
    with open(path, "ab") as handle:
        handle.write(frame_record(payload))
    return path


def wait_until_healthy(engine: Any, *, timeout: float = 30.0) -> None:
    """Block until the supervisor reports the fleet fully recovered (every
    worker alive, nothing mid-recovery), or raise after ``timeout`` seconds.

    Purely observational — polls :meth:`ProcessEngine.liveness`, which takes
    no locks, so waiting never perturbs the recovery being waited on.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        live = engine.liveness()
        if not live["degraded"] and all(w["alive"] for w in live["workers"]):
            return
        time.sleep(0.02)
    raise TimeoutError(
        f"fleet did not recover within {timeout:.1f}s: {engine.liveness()!r}"
    )
