"""A pool of lazily-created per-key samplers with eviction and accounting.

One :class:`KeyedSamplerPool` owns every sampler of one shard.  Samplers are
created on a key's first record, seeded deterministically from the pool seed
and a stable hash of the key — so key ``"alice"`` gets the *same* sampler
randomness no matter when she first appears, which shard count the engine
runs with, or how often the process restarts.

Memory is the whole point of the paper, so the pool treats it as a budget:

* ``max_keys`` caps the number of live samplers, evicting the least recently
  *ingested* key when a new key would exceed the cap (LRU);
* ``idle_ttl`` evicts keys that have not received a record for the given
  number of pool-wide ingest ticks (swept opportunistically every
  ``sweep_interval`` ticks, or explicitly via :meth:`sweep`);
* :meth:`memory_words` aggregates the per-sampler word-RAM footprints plus
  the pool's own bookkeeping, giving the per-tenant budget arithmetic
  ``keys × Θ(k)`` (sequence) / ``keys × Θ(k log n)`` (timestamp) in one call.

Eviction discards sampler state irrevocably — a returning key starts a fresh
window, exactly like a new key.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.base import WindowSampler
from ..core.serialization import STATE_FORMAT, require_state_fields
from ..core.tracking import CandidateObserver
from ..exceptions import ConfigurationError
from ..memory import MemoryMeter, WORD_MODEL
from ..obs import NULL_REGISTRY
from ..sketches import ExponentialHistogramCounter
from .hashing import stable_key_hash
from .spec import SamplerSpec

__all__ = ["KeyedSamplerPool"]

#: Salt mixed into per-key sampler seeds so they are independent of the hash
#: family used for shard routing.
_SEED_SALT = 0x5EEDFACE

#: Relative error of the per-key window-size counters attached to timestamp
#: samplers that cannot bound their own active count (the baselines).
_COUNTER_EPSILON = 0.1


class _KeyEntry:
    """Per-key bookkeeping: the sampler, its last-ingest tick, and (for
    timestamp samplers without an ``active_count_estimate`` of their own) an
    exponential-histogram window-size counter."""

    __slots__ = ("sampler", "last_tick", "counter")

    def __init__(
        self,
        sampler: WindowSampler,
        last_tick: int,
        counter: Optional[ExponentialHistogramCounter] = None,
    ) -> None:
        self.sampler = sampler
        self.last_tick = last_tick
        self.counter = counter


class KeyedSamplerPool:
    """Per-key samplers behind one ingest point, with LRU/TTL eviction."""

    def __init__(
        self,
        spec: SamplerSpec,
        *,
        seed: int = 0,
        max_keys: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        sweep_interval: int = 4096,
        observer_factory: Optional[Callable[[], CandidateObserver]] = None,
        registry: Optional[Any] = None,
    ) -> None:
        if max_keys is not None and max_keys <= 0:
            raise ConfigurationError("max_keys must be positive (or None for no cap)")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ConfigurationError("idle_ttl must be positive (or None for no TTL)")
        if sweep_interval <= 0:
            raise ConfigurationError("sweep_interval must be positive")
        self._spec = spec
        self._seed = int(seed)
        self._max_keys = max_keys
        self._idle_ttl = idle_ttl
        self._sweep_interval = int(sweep_interval)
        self._observer_factory = observer_factory
        self._entries: "OrderedDict[Any, _KeyEntry]" = OrderedDict()
        self._ticks = 0
        self._evictions = 0
        self._evictions_lru = 0
        self._evictions_ttl = 0
        self._generation = 0
        obs = registry if registry is not None else NULL_REGISTRY
        self._m_evict_lru = obs.counter("pool.evictions.lru")
        self._m_evict_ttl = obs.counter("pool.evictions.ttl")
        # Live values are callback gauges: evaluated only when a snapshot is
        # taken, so ingest pays nothing for them.
        obs.register_callback("engine.keys.active", lambda: len(self._entries))
        obs.register_callback("engine.memory.words", self.memory_words)
        # Whether per-key samplers need a companion window-size counter
        # (timestamp spec, sampler lacks active_count_estimate).  Decided
        # lazily at the first sampler build — None means "not yet known".
        self._needs_counter: Optional[bool] = None if spec.is_timestamp else False

    # -- introspection -------------------------------------------------------

    @property
    def spec(self) -> SamplerSpec:
        return self._spec

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def ticks(self) -> int:
        """Total records ingested by this pool (including evicted keys')."""
        return self._ticks

    @property
    def evictions(self) -> int:
        """Number of keys evicted so far (LRU cap, TTL sweeps, discards)."""
        return self._evictions

    @property
    def evictions_lru(self) -> int:
        """Keys evicted by the ``max_keys`` LRU cap."""
        return self._evictions_lru

    @property
    def evictions_ttl(self) -> int:
        """Keys evicted by ``idle_ttl`` sweeps."""
        return self._evictions_ttl

    @property
    def generation(self) -> int:
        """Monotone mutation counter: bumps on every state change (append,
        eviction, clock advance, snapshot restore).  The incremental
        checkpoint writer compares it against the generation it last wrote
        for this shard to decide whether the segment needs rewriting."""
        return self._generation

    def mark_dirty(self) -> None:
        """Record an out-of-band mutation (e.g. the engine advanced one of
        this pool's samplers directly during a query)."""
        self._generation += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def keys(self) -> List[Any]:
        """Live keys, least recently ingested first."""
        return list(self._entries)

    def items(self) -> Iterator[Tuple[Any, WindowSampler]]:
        """Iterate ``(key, sampler)`` pairs (least recently ingested first)."""
        for key, entry in self._entries.items():
            yield key, entry.sampler

    def entries(
        self,
    ) -> Iterator[Tuple[Any, WindowSampler, Optional[ExponentialHistogramCounter]]]:
        """Iterate ``(key, sampler, window_size_counter)`` triples.

        The counter is ``None`` for sequence windows and for timestamp
        samplers that expose their own ``active_count_estimate`` (the optimal
        algorithms' covering-decomposition bound)."""
        for key, entry in self._entries.items():
            yield key, entry.sampler, entry.counter

    def counter_for(self, key: Any) -> Optional[ExponentialHistogramCounter]:
        """The key's window-size counter, or ``None`` (no counter attached,
        or no live sampler for the key)."""
        entry = self._entries.get(key)
        return entry.counter if entry is not None else None

    # -- sampler lifecycle ---------------------------------------------------

    def _sampler_seed(self, key: Any) -> int:
        return stable_key_hash(key, salt=self._seed ^ _SEED_SALT)

    def _create(self, key: Any) -> _KeyEntry:
        observer = self._observer_factory() if self._observer_factory is not None else None
        sampler = self._spec.build(rng=self._sampler_seed(key), observer=observer)
        if self._needs_counter is None:
            # Decided once per pool: the optimal timestamp samplers bound
            # their own active count (Lemma 3.5's covering decomposition);
            # baseline timestamp samplers need the DGIM counter companion.
            self._needs_counter = not hasattr(sampler, "active_count_estimate")
        counter = (
            ExponentialHistogramCounter(self._spec.t0, epsilon=_COUNTER_EPSILON)
            if self._needs_counter
            else None
        )
        entry = _KeyEntry(sampler, self._ticks, counter)
        if self._max_keys is not None and len(self._entries) >= self._max_keys:
            self._entries.popitem(last=False)  # least recently ingested
            self._evictions += 1
            self._evictions_lru += 1
            self._m_evict_lru.inc()
        self._entries[key] = entry
        return entry

    def sampler_for(self, key: Any) -> WindowSampler:
        """The key's live sampler; raises ``KeyError`` when there is none.

        Strictly read-only: samplers are created by ingest, never by lookup,
        so a probe of an unknown key (a dashboard querying a typo) can
        neither allocate memory nor — at the ``max_keys`` cap — evict a live
        key's window state.  Lookups also do not refresh the key's LRU/TTL
        position, so read-heavy queries cannot keep a dead key alive.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"no live sampler for key {key!r} (never ingested, or evicted)")
        return entry.sampler

    def discard(self, key: Any) -> bool:
        """Drop one key's sampler outright. Returns whether it existed."""
        if self._entries.pop(key, None) is None:
            return False
        self._evictions += 1
        self._generation += 1
        return True

    # -- ingest --------------------------------------------------------------

    def append(self, key: Any, value: Any, timestamp: Optional[float] = None) -> None:
        """Route one record to its key's sampler (creating it if needed)."""
        entries = self._entries  # bound once: this is the pool's hottest path
        entry = entries.get(key)
        if entry is None:
            entry = self._create(key)
        elif self._max_keys is not None:
            entries.move_to_end(key)
        entry.sampler.append(value, timestamp)
        if entry.counter is not None:
            entry.counter.append(timestamp)
        ticks = self._ticks + 1
        self._ticks = ticks
        self._generation += 1
        entry.last_tick = ticks
        if self._idle_ttl is not None and ticks % self._sweep_interval == 0:
            self.sweep()

    def extend_batch(self, batch: Sequence[Tuple[Any, Any, Optional[float]]]) -> int:
        """Route a batch of ``(key, value, timestamp)`` records in one call.

        Records are grouped per key first, so each key's dict lookup, LRU
        touch and sampler-attribute resolution happen once per batch instead
        of once per record, and the key's sampler ingests its records through
        :meth:`~repro.core.base.WindowSampler.process_batch`.  For an
        *unbounded* pool (no ``max_keys``, no ``idle_ttl``) the resulting
        state — samplers, tick bookkeeping, entry order, checkpoint bytes —
        is identical to per-record :meth:`append` calls, and is independent
        of how a record stream is chunked into batches.  Pools with an
        eviction policy fall back to the per-record path, because eviction
        decisions are defined record by record (which key the LRU victim is
        can depend on the exact interleaving).

        Returns the number of records routed.
        """
        count = len(batch)
        if count == 0:
            return 0
        if self._max_keys is not None or self._idle_ttl is not None:
            append = self.append
            for key, value, timestamp in batch:
                append(key, value, timestamp)
            return count
        # Group per key: [last 1-based position, values, timestamps, any_ts].
        groups: Dict[Any, List[Any]] = {}
        get_group = groups.get
        position = 0
        for key, value, timestamp in batch:
            position += 1
            group = get_group(key)
            if group is None:
                groups[key] = [position, [value], [timestamp], timestamp is not None]
            else:
                group[0] = position
                group[1].append(value)
                group[2].append(timestamp)
                if timestamp is not None:
                    group[3] = True
        self.extend_grouped(
            [
                (key, last, values, stamps if any_ts else None)
                for key, (last, values, stamps, any_ts) in groups.items()
            ],
            count,
        )
        return count

    def extend_grouped(
        self,
        groups: Sequence[Tuple[Any, int, List[Any], Optional[List[Optional[float]]]]],
        count: int,
    ) -> None:
        """Apply pre-grouped per-key record runs (the engine's fastest path).

        ``groups`` holds ``(key, last_position, values, timestamps_or_None)``
        entries, where ``last_position`` is the 1-based position (within this
        pool's slice of the batch, in arrival order) of the key's last
        record, and ``count`` is the total number of records across all
        groups.  Only valid for pools without an eviction policy — callers
        that may hold a capped/TTL pool must go through
        :meth:`extend_batch`, which enforces the fallback.
        """
        if self._max_keys is not None or self._idle_ttl is not None:
            raise ConfigurationError(
                "extend_grouped requires an eviction-free pool; use extend_batch"
            )
        entries = self._entries
        base = self._ticks
        create = self._create
        for key, last, values, stamps in groups:
            entry = entries.get(key)
            if entry is None:
                entry = create(key)
            if len(values) == 1:
                entry.sampler.append(values[0], None if stamps is None else stamps[0])
            else:
                entry.sampler.process_batch(values, stamps)
            counter = entry.counter
            if counter is not None:
                counter_append = counter.append
                if stamps is None:
                    for _ in values:
                        counter_append(None)
                else:
                    for timestamp in stamps:
                        counter_append(timestamp)
            entry.last_tick = base + last
        self._ticks = base + count
        self._generation += 1

    def sweep(self) -> int:
        """Evict every key idle for more than ``idle_ttl`` ticks.

        Returns the number of keys evicted.  A no-op when no TTL is set.
        """
        if self._idle_ttl is None:
            return 0
        horizon = self._ticks - self._idle_ttl
        stale = [key for key, entry in self._entries.items() if entry.last_tick < horizon]
        for key in stale:
            del self._entries[key]
        self._evictions += len(stale)
        self._evictions_ttl += len(stale)
        if stale:
            self._m_evict_ttl.inc(len(stale))
            self._generation += 1
        return len(stale)

    def advance_time(self, now: float) -> None:
        """Broadcast a clock advance to every timestamp-window sampler.

        Only bumps the checkpoint generation when some sampler's clock
        actually moves (a re-advance to the current time leaves every
        snapshot byte unchanged, so clean shards stay checkpoint-clean)."""
        changed = False
        for entry in self._entries.values():
            sampler = entry.sampler
            if hasattr(sampler, "advance_time"):
                # Samplers without a readable clock are advanced blind, so
                # they must be considered dirtied (conservative).
                if getattr(sampler, "now", None) != now:
                    changed = True
                sampler.advance_time(now)
            if entry.counter is not None:
                if entry.counter.now != now:
                    changed = True
                entry.counter.advance_time(now)
        if changed:
            self._generation += 1

    # -- accounting ----------------------------------------------------------

    def memory_words(self) -> int:
        """Aggregate word-RAM footprint: every live sampler plus bookkeeping.

        Bookkeeping charges one word per key (the last-ingest tick) and the
        pool's two counters; the per-key *key itself* is charged one element
        word, mirroring how the samplers charge stored values.
        """
        meter = MemoryMeter(WORD_MODEL)
        meter.add_counters(2)  # tick and eviction counters
        for entry in self._entries.values():
            meter.add_elements()  # the key
            meter.add_counters()  # last-ingest tick
            meter.add_words(entry.sampler.memory_words())
            if entry.counter is not None:
                meter.add_words(entry.counter.memory_words())
        return meter.total

    def memory_words_by_key(self) -> Dict[Any, int]:
        """Per-key sampler footprints (budget attribution / hottest-memory)."""
        return {key: entry.sampler.memory_words() for key, entry in self._entries.items()}

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the pool: config fingerprint plus every live sampler.

        Keys are stored in LRU order so a restored pool evicts in the same
        order as the original would have.
        """
        return {
            "format": STATE_FORMAT,
            "spec": self._spec.to_dict(),
            "seed": self._seed,
            "ticks": self._ticks,
            "evictions": self._evictions,
            "evictions_lru": self._evictions_lru,
            "evictions_ttl": self._evictions_ttl,
            "entries": [
                {
                    "key": key,
                    "last_tick": entry.last_tick,
                    "sampler": entry.sampler.state_dict(),
                    "counter": (
                        entry.counter.state_dict() if entry.counter is not None else None
                    ),
                }
                for key, entry in self._entries.items()
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a pool snapshot in place (replacing all live samplers)."""
        require_state_fields(
            state, ("format", "spec", "seed", "ticks", "evictions", "entries"), "KeyedSamplerPool"
        )
        if state["format"] != STATE_FORMAT:
            raise ConfigurationError(
                f"unsupported snapshot format {state['format']!r} (expected {STATE_FORMAT})"
            )
        if SamplerSpec.from_dict(state["spec"]) != self._spec:
            raise ConfigurationError("snapshot spec does not match this pool's spec")
        if int(state["seed"]) != self._seed:
            raise ConfigurationError(
                f"snapshot seed {state['seed']} does not match pool seed {self._seed}"
                " (future keys would draw different randomness)"
            )
        entries: "OrderedDict[Any, _KeyEntry]" = OrderedDict()
        for encoded in state["entries"]:
            require_state_fields(encoded, ("key", "last_tick", "sampler"), "KeyedSamplerPool entry")
            key = encoded["key"]
            observer = self._observer_factory() if self._observer_factory is not None else None
            sampler = self._spec.build(rng=self._sampler_seed(key), observer=observer)
            sampler.load_state_dict(encoded["sampler"])
            if self._needs_counter is None:
                self._needs_counter = not hasattr(sampler, "active_count_estimate")
            counter = None
            if self._needs_counter:
                counter = ExponentialHistogramCounter(self._spec.t0, epsilon=_COUNTER_EPSILON)
                encoded_counter = encoded.get("counter")
                if encoded_counter is not None:
                    counter.load_state_dict(encoded_counter)
                # A snapshot from a build without counters restores with an
                # empty counter: estimates recover as the window refills.
            entries[key] = _KeyEntry(sampler, int(encoded["last_tick"]), counter)
        # A snapshot may come from a pool with a looser (or no) cap; enforce
        # this pool's budget immediately rather than leaking the overshoot
        # forever (inserts evict one-for-one and would never drain it).
        overflow = 0
        if self._max_keys is not None:
            while len(entries) > self._max_keys:
                entries.popitem(last=False)
                overflow += 1
        self._entries = entries
        self._ticks = int(state["ticks"])
        self._evictions = int(state["evictions"]) + overflow
        # Pre-split snapshots carry only the total; the breakdown restarts
        # from whatever they recorded (0 for legacy snapshots).  Overflow
        # evictions above are LRU-cap evictions by definition.
        self._evictions_lru = int(state.get("evictions_lru", 0)) + overflow
        self._evictions_ttl = int(state.get("evictions_ttl", 0))
        self._generation += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeyedSamplerPool(keys={len(self._entries)}, ticks={self._ticks}, "
            f"evictions={self._evictions})"
        )
