"""Keyed, sharded multi-stream sampling engine.

The paper's samplers serve one logical stream each.  Production keyed traffic
— clickstreams, per-flow packet feeds, per-topic event buses — is millions of
logical streams multiplexed on one feed.  This package turns the paper's
per-stream Θ(k) / Θ(k log n) guarantees into a fleet-scale, per-tenant memory
budget:

* :class:`SamplerSpec` — a declarative description of the per-key sampler
  (window type and parameter, ``k``, replacement, algorithm), shared by every
  key and serialisable into checkpoints.
* :class:`KeyedSamplerPool` — lazily creates one sampler per key (each with a
  deterministic key-derived seed), keeps LRU order, enforces a ``max_keys``
  budget and an idle-key TTL, attaches DGIM window-size counters to
  timestamp samplers that cannot bound their own active count, and
  aggregates ``memory_words()`` across keys.
* :class:`ShardedEngine` — hash-partitions keys over N shards, routes batched
  records (:meth:`ShardedEngine.ingest`), answers per-key sample queries and
  cross-key aggregates (hottest keys, merged frequent items, per-key AMS
  frequency moments), and checkpoints/restores the whole fleet of samplers
  bit-for-bit via the samplers' ``state_dict`` layer.
* :class:`ParallelEngine` — the same engine with its shards driven by worker
  threads behind bounded per-shard queues: batched ingest is validated and
  clock-stamped by the producer, applied concurrently by shard owners, and
  every query flushes through a drain barrier first, so parallel ingest is
  bit-identical to serial ingest (``workers`` is a pure throughput knob).
* :class:`ProcessEngine` — the same dataflow on worker *processes*: each
  worker owns its shards' pools outright (built in-process from the engine
  recipe), records travel over bounded multiprocessing queues, queries run
  worker-side via a request/reply protocol, and checkpoints are written by
  the workers themselves as per-shard segments.  Clears the GIL ceiling —
  CPU-bound sampler updates scale across cores — while staying
  bit-identical to the serial and thread engines.  A dead worker process
  surfaces as a sticky :class:`~repro.exceptions.WorkerFailure`.
* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`write_checkpoint` — incremental per-shard checkpoint directories
  (JSON manifest + digest-verified segment files); repeat saves rewrite only
  the shards that changed, and a manifest loads under any worker count and
  any executor (serial / thread / process).
* :func:`jsonl_records` / :func:`batched` / :func:`ingest_jsonl` — streaming
  ingest sources: JSONL lines from a file, pipe or stdin, fed to an engine
  in bounded batches (the ``swsample engine --input`` path).
* :func:`encode_batch` / :func:`decode_batch` — the columnar record
  transport: record sub-batches crossing the :class:`ProcessEngine` process
  boundary are struct-packed into one compact buffer per sub-batch instead
  of pickled tuple-by-tuple (format documented in
  :mod:`repro.engine.transport`).  ``ProcessEngine(transport="shm")`` maps
  those buffers into per-worker ``multiprocessing.shared_memory`` rings so
  the queue carries only descriptors (falling back to ``"columnar"`` where
  ``shared_memory`` is unavailable, with identical results).

The whole ingest path is batched end to end: ``ingest()`` partitions records
per shard (hashing each distinct key once per chunk),
:meth:`KeyedSamplerPool.extend_batch` groups each shard sub-batch per key,
and every optimal sampler applies a key's run through its ``process_batch``
fast path — bit-identical to per-record appends by default, and with
``SamplerSpec(fast=True)`` switching the sequence samplers to geometric
skip-sampling and the timestamp samplers' covering automata to pooled
bucket-merge coins (statistically exact, χ²/KS-gated, not bit-identical).

Sharding is by a *stable* hash (:func:`stable_key_hash`), never Python's
salted ``hash()``, so routing — and therefore every per-key sampler's
randomness — is reproducible across processes and restarts.

Performance
-----------
The apply path has an optional vectorized kernel layer on top of the
batching above, kept strictly additive to the bit-exact reference:

* :mod:`repro.engine.kernels` holds every numpy-facing routine behind one
  import guard (``HAS_NUMPY``).  ``SamplerSpec(kernel="numpy")`` — or
  ``"auto"``, which resolves to numpy exactly when it is importable —
  switches the ``fast=True`` draws from per-run python loops to whole-lane
  array math, and :func:`repro.engine.kernels.decode_batch_arrays` decodes
  a columnar transport payload into column arrays without per-record tuple
  building (zero-copy from the shm ring's memoryview).  numpy is the
  ``[fast]`` optional extra; requesting ``kernel="numpy"`` without it
  raises :class:`~repro.exceptions.ConfigurationError` at sampler/engine
  construction, never mid-stream.  ``"auto"`` travels unresolved inside
  specs and checkpoints, so one checkpoint restores on hosts with and
  without numpy.
* The contract is layered exactly like ``fast``: ``kernel="python"`` (the
  default) is byte-identical to the seed reference; ``kernel="numpy"``
  with ``fast=False`` is *also* bit-identical (the kernel only re-routes
  fast-path draws); ``fast=True`` under either kernel is distributionally
  exact, gated by the χ²+KS suites.  Baseline algorithms reject
  ``kernel="numpy"``.
* The timestamp merge cascade (the Lemma 3.4 ``Incr`` step) is factored
  into :mod:`repro.core._cascade`, a mypyc-compatible module: compiling it
  (``python -m mypyc src/repro/core/_cascade.py``) changes neither
  randomness nor results, and ``transport_report()`` reports whether the
  compiled form is active (``cascade_compiled``) alongside the resolved
  ``kernel``, which also appears in ``stats()`` and as the
  ``engine.kernel.numpy`` gauge.

Querying
--------
The query surface mirrors the ingest surface's batching discipline:

* **Batched queries.**  :meth:`ShardedEngine.query_batch` resolves many
  queries in one pass — a sequence of ``(name, *args)`` ops (``sample``,
  ``contains``, ``hottest``, ``frequent``, ``moments``, ``stats``) returns
  one ``("ok", value)`` / ``("error", type, message)`` outcome per op, so a
  missing key never aborts the batch.  On :class:`ProcessEngine` the whole
  batch costs **one request/reply round per worker**: per-key ops ship only
  to the worker owning their shard, aggregates are computed as per-worker
  partials and merged coordinator-side — the query-side analogue of how
  ``extend_batch`` groups ingest.  Batched, scalar, serial, thread and
  process results are all bit-identical, ties included (ranked reports
  break ties on a stable byte encoding of the key, never on dict order).
* **Result caching.**  Pass ``query_cache=QueryCache(...)`` to any engine
  and the query surface consults it.  Entries are stamped with the
  per-shard ``generation`` tuple — the checkpoint layer's dirty-tracking
  counter, bumped on every append/eviction/advance/restore — so any
  mutation invalidates exactly the answers it could have changed, and a
  TTL (optional) bounds staleness against out-of-band mutation.  Hits,
  misses, invalidations and evictions count into ``querycache.*`` metrics.
  Cached and uncached results are bit-identical.
* **Continuous queries.**  :mod:`repro.serve` builds standing queries on
  top of this: ``POST /v1/<tenant>/subscribe`` registers a query plus an
  interval, an asyncio task re-evaluates it through the tenant's cache
  (unchanged fleets are pure cache hits) and pushes a JSONL delta whenever
  the answer changes, closing the stream cleanly on SIGTERM.

Fault tolerance
---------------
:class:`ProcessEngine` can heal worker death instead of going sticky-failed:

* **Write-ahead journal.**  ``ProcessEngine(wal_dir=...)`` appends every
  dispatched sub-batch — in the columnar transport's exact wire form — to a
  per-shard journal (:mod:`repro.engine.wal`) *before* handing it to the
  worker, so no acknowledged record exists only in a worker's memory.  The
  ``wal_fsync`` knob trades durability for append cost (``"off"`` — worker
  death safe; ``"batch"``, the default — coordinator-crash safe; ``"always"``
  — power-loss safe).  A committed checkpoint covers everything journaled so
  far and truncates the journal; a torn final record (crash mid-append) is
  detected by length+checksum framing and dropped with a warning, while any
  deeper corruption raises :class:`~repro.exceptions.TransportError` with
  file and byte-offset context rather than replaying garbage.
* **Supervised restarts.**  ``ProcessEngine(supervise=True, wal_dir=...)``
  runs a supervisor thread that notices a dead worker, restarts it under a
  bounded :class:`RestartPolicy` (max restarts, exponential backoff),
  rebuilds its shards from the last checkpoint's digest-verified segments,
  replays the journal tail in original dispatch order, and re-admits
  ingest.  Shard routing, per-shard FIFO order and key-derived sampler
  seeds are deterministic, so a recovered fleet is *bit-identical* to one
  that never crashed.  Only when the restart budget is exhausted does the
  engine degrade to the sticky :class:`~repro.exceptions.WorkerFailure`.
* **Degraded-mode queries.**  While a worker is mid-recovery, queries
  touching only healthy shards answer normally; queries needing a
  recovering shard raise the *retryable*
  :class:`~repro.exceptions.ShardRecovering` (carrying the affected shards
  and a ``retry_after`` estimate) instead of blocking or guessing —
  ``swsample serve`` maps it to HTTP 503 with a ``Retry-After`` header.
  ``stats()`` stays available with healthy-worker totals plus a
  ``degraded`` marker, ``liveness()`` reports per-worker health without
  taking any locks, and ``write_checkpoint`` waits briefly for recovery to
  drain rather than snapshotting a half-restored fleet (failing loudly
  with :class:`~repro.exceptions.CheckpointError` if it cannot).
* **Deterministic chaos.**  :mod:`repro.engine.chaos` injects the failure
  windows on purpose — kill at the Nth dispatched sub-batch, kill during a
  checkpoint's segment fan-out, kill the replacement mid-replay, corrupt a
  segment, tear or forge a journal record — so every recovery path above is
  pinned by tests instead of trusted.

Observability
-------------
Every layer reports into a :class:`repro.obs.MetricsRegistry` when handed one
(``registry=`` on any engine constructor or on :func:`load_checkpoint`;
otherwise the process-wide default from :func:`repro.obs.get_registry`, which
is a no-op until :func:`repro.obs.enable`):

* engines count ingested records/batches and per-shard chunk latencies, and
  expose live key/memory gauges via snapshot-time callbacks;
* pools split eviction counters into LRU and TTL
  (``pool.evictions.lru`` / ``pool.evictions.ttl``), also surfaced by
  :meth:`ShardedEngine.stats`;
* worker loops and executors count applied batches, queue stalls and
  request/reply round trips; :meth:`ProcessEngine.transport_report` breaks
  transport cost into per-worker encode/dispatch rows;
* the checkpoint layer counts saves, segments written/reused and bytes, and
  times ``checkpoint.write.seconds`` / ``checkpoint.restore.seconds`` spans.

Worker processes build their own registry, and
:meth:`ProcessEngine.metrics_snapshot` fetches each worker's snapshot over
the request/reply protocol and merges the fleet into one dict (tolerating
lost workers — a partial fleet yields a partial snapshot, never a hang).
:meth:`ShardedEngine.metrics_snapshot` and the thread engine report from the
single coordinator registry.  Render any snapshot with
:func:`repro.obs.to_prometheus_text`.
"""

from . import chaos
from .checkpoint import (
    CheckpointResult,
    checkpoint_shards,
    load_checkpoint,
    save_checkpoint,
    write_checkpoint,
)
from .engine import ShardedEngine
from .executor import ParallelEngine, ProcessEngine, RestartPolicy
from .wal import WriteAheadLog
from .hashing import stable_key_bytes, stable_key_hash
from .pool import KeyedSamplerPool
from .querycache import QueryCache
from .source import batched, freeze_key, ingest_jsonl, jsonl_records
from .spec import SamplerSpec
from .transport import decode_batch, encode_batch

__all__ = [
    "SamplerSpec",
    "KeyedSamplerPool",
    "ShardedEngine",
    "ParallelEngine",
    "ProcessEngine",
    "RestartPolicy",
    "WriteAheadLog",
    "chaos",
    "QueryCache",
    "save_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
    "checkpoint_shards",
    "CheckpointResult",
    "jsonl_records",
    "batched",
    "ingest_jsonl",
    "freeze_key",
    "encode_batch",
    "decode_batch",
    "stable_key_hash",
    "stable_key_bytes",
]
