"""Keyed, sharded multi-stream sampling engine.

The paper's samplers serve one logical stream each.  Production keyed traffic
— clickstreams, per-flow packet feeds, per-topic event buses — is millions of
logical streams multiplexed on one feed.  This package turns the paper's
per-stream Θ(k) / Θ(k log n) guarantees into a fleet-scale, per-tenant memory
budget:

* :class:`SamplerSpec` — a declarative description of the per-key sampler
  (window type and parameter, ``k``, replacement, algorithm), shared by every
  key and serialisable into checkpoints.
* :class:`KeyedSamplerPool` — lazily creates one sampler per key (each with a
  deterministic key-derived seed), keeps LRU order, enforces a ``max_keys``
  budget and an idle-key TTL, and aggregates ``memory_words()`` across keys.
* :class:`ShardedEngine` — hash-partitions keys over N shards, routes batched
  records (:meth:`ShardedEngine.ingest`), answers per-key sample queries and
  cross-key aggregates (hottest keys, merged frequent items, per-key AMS
  frequency moments), and checkpoints/restores the whole fleet of samplers
  bit-for-bit via the samplers' ``state_dict`` layer.
* :func:`save_checkpoint` / :func:`load_checkpoint` — engine-level checkpoint
  files; a restarted engine resumes with identical per-key samples and
  identical future randomness.

Sharding is by a *stable* hash (:func:`stable_key_hash`), never Python's
salted ``hash()``, so routing — and therefore every per-key sampler's
randomness — is reproducible across processes and restarts.
"""

from .checkpoint import load_checkpoint, save_checkpoint
from .engine import ShardedEngine
from .hashing import stable_key_bytes, stable_key_hash
from .pool import KeyedSamplerPool
from .spec import SamplerSpec

__all__ = [
    "SamplerSpec",
    "KeyedSamplerPool",
    "ShardedEngine",
    "save_checkpoint",
    "load_checkpoint",
    "stable_key_hash",
    "stable_key_bytes",
]
