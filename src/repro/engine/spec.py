"""Declarative sampler specifications shared by every key of an engine.

A :class:`SamplerSpec` captures the three orthogonal choices of
:func:`~repro.core.facade.sliding_window_sampler` (window type, replacement,
algorithm family) plus the window parameter and sample size, as a frozen
value object.  The engine stores one spec and stamps out thousands of per-key
samplers from it; the spec also travels inside checkpoints so a restarted
engine rebuilds identically-shaped samplers before loading their states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..core.facade import sliding_window_sampler
from ..core.tracking import CandidateObserver
from ..exceptions import ConfigurationError
from ..rng import RngLike

__all__ = ["SamplerSpec"]


@dataclass(frozen=True)
class SamplerSpec:
    """A recipe for one per-key sliding-window sampler.

    Parameters mirror :func:`~repro.core.facade.sliding_window_sampler`;
    ``options`` carries any extra keyword arguments for the concrete sampler
    (e.g. ``allow_partial``).  Structural validation happens eagerly so a
    misconfigured engine fails at construction, not at first ingest.
    """

    window: str = "sequence"
    k: int = 1
    n: Optional[int] = None
    t0: Optional[float] = None
    replacement: bool = True
    algorithm: str = "optimal"
    #: Enable the skip-sampling batched ingest mode (optimal algorithm only):
    #: ``process_batch`` draws geometric skips instead of per-element coins —
    #: reservoir-acceptance skips for the sequence samplers, pooled
    #: bucket-merge coins for the timestamp samplers' covering automata.
    #: Distributionally exact, but not bit-identical to the default path.
    fast: bool = False
    #: Batched-ingest kernel: ``"python"`` (the bit-identity reference),
    #: ``"numpy"`` (the vectorized ``fast``-path kernels of
    #: :mod:`repro.engine.kernels`; requires the optional ``[fast]`` extra and
    #: fails loudly without it), or ``"auto"`` (numpy when available).  Only
    #: the ``fast=True`` path changes behaviour; ``fast=False`` ingest stays
    #: bit-identical to the python kernel.  ``"auto"`` is resolved at sampler
    #: construction, per host — a checkpointed spec stays portable.
    kernel: str = "python"
    #: Normalised to a sorted tuple of ``(name, value)`` pairs so the frozen
    #: spec stays hashable (usable in sets / as dict keys); accepts a mapping.
    options: Any = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "window", str(self.window).lower())
        object.__setattr__(self, "algorithm", str(self.algorithm).lower())
        object.__setattr__(self, "fast", bool(self.fast))
        if self.window not in ("sequence", "timestamp"):
            raise ConfigurationError(
                f"window must be 'sequence' or 'timestamp', got {self.window!r}"
            )
        if self.k <= 0:
            raise ConfigurationError("sample size k must be positive")
        if self.window == "sequence":
            if self.n is None or self.n <= 0:
                raise ConfigurationError("sequence windows require a positive window size n")
        else:
            if self.t0 is None or self.t0 <= 0:
                raise ConfigurationError("timestamp windows require a positive window span t0")
        if self.fast and self.algorithm != "optimal":
            raise ConfigurationError(
                f"fast=True (skip-sampling batched ingest) requires algorithm='optimal';"
                f" the {self.algorithm!r} baseline does not support it"
            )
        object.__setattr__(self, "kernel", str(self.kernel).lower())
        if self.kernel not in ("python", "numpy", "auto"):
            raise ConfigurationError(
                f"kernel must be 'python', 'numpy' or 'auto', got {self.kernel!r}"
            )
        if self.kernel == "numpy" and self.algorithm != "optimal":
            raise ConfigurationError(
                f"kernel='numpy' requires algorithm='optimal';"
                f" the {self.algorithm!r} baseline does not support it"
            )
        object.__setattr__(self, "options", tuple(sorted(dict(self.options).items())))

    @property
    def is_timestamp(self) -> bool:
        return self.window == "timestamp"

    @property
    def window_param(self) -> float:
        """The window parameter matching the window type (``n`` or ``t0``)."""
        return self.n if self.window == "sequence" else self.t0  # type: ignore[return-value]

    def build(self, rng: RngLike = None, observer: Optional[CandidateObserver] = None):
        """Instantiate one sampler from this spec.

        Algorithm-name and algorithm/window compatibility errors surface here
        (raised by the facade as :class:`~repro.exceptions.ConfigurationError`).
        """
        return sliding_window_sampler(
            self.window,
            k=self.k,
            n=self.n,
            t0=self.t0,
            replacement=self.replacement,
            algorithm=self.algorithm,
            rng=rng,
            observer=observer,
            fast=self.fast,
            kernel=self.kernel,
            **dict(self.options),
        )

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form for checkpoints."""
        return {
            "window": self.window,
            "k": self.k,
            "n": self.n,
            "t0": self.t0,
            "replacement": self.replacement,
            "algorithm": self.algorithm,
            "fast": self.fast,
            "kernel": self.kernel,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplerSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Snapshots written before the batched fast path existed carry no
        ``fast`` key; they load as ``fast=False`` (the bit-exact default).
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"spec snapshot must be a mapping, got {type(data).__name__}")
        return cls(
            window=data.get("window", "sequence"),
            k=int(data.get("k", 1)),
            n=data.get("n"),
            t0=data.get("t0"),
            replacement=bool(data.get("replacement", True)),
            algorithm=data.get("algorithm", "optimal"),
            fast=bool(data.get("fast", False)),
            kernel=data.get("kernel", "python"),
            options=dict(data.get("options", {})),
        )

    def describe(self) -> str:
        """A one-line human-readable summary (used by the CLI)."""
        window = f"n={self.n}" if self.window == "sequence" else f"t0={self.t0}"
        mode = "WR" if self.replacement else "WoR"
        suffix = ", fast" if self.fast else ""
        if self.kernel != "python":
            suffix += f", kernel={self.kernel}"
        return f"{self.window} window ({window}), k={self.k} {mode}, algorithm={self.algorithm}{suffix}"
