"""Per-shard write-ahead log for supervised :class:`ProcessEngine` fleets.

A SIGKILL'd worker process takes its resident shard pools with it.  The
checkpoint layer bounds the loss to "everything since the last save"; this
module closes the remaining gap.  Before a sub-batch is dispatched to a
worker, the coordinator appends it here — encoded with the existing columnar
transport codec (:func:`repro.engine.transport.encode_batch`), which is
already an exact, self-describing record wire format — and the supervisor
replays the journal tail after restoring the dead worker's shards from the
last checkpoint.  Because shard routing, per-shard FIFO order and per-key
sampler seeds are all deterministic, checkpoint-restore + in-order replay is
bit-identical to an uninterrupted run.

On-disk layout
--------------
One journal file per shard under the WAL directory::

    wal_dir/shard-00000.wal
    wal_dir/shard-00001.wal
    ...

Each file is a sequence of framed records::

    record := uint32 payload_length | uint32 crc32(payload) | payload

where ``payload`` is one :func:`encode_batch` buffer (``SWT1`` columnar
format).  The framing exists so a *torn* final record — a crash mid-append —
is detected structurally (short header, short payload, or a checksum
mismatch confined to the file tail) and truncated with a warning instead of
being decoded as garbage.  Corruption that is **not** explainable as a torn
append (a checksum mismatch with more journal after it, or a checksum-valid
payload the codec rejects) raises
:class:`~repro.exceptions.TransportError` with file and byte-offset
context, mirroring the transport module's decode errors.

Durability knob (``fsync``)
---------------------------
``"off"``
    Appends stay in the process's stdio buffer.  Fastest; a coordinator
    *crash* (not just worker death) can lose buffered batches.  Worker
    death alone loses nothing — the coordinator is still alive to flush.
``"batch"`` (default)
    ``flush()`` to the OS after every append.  Survives coordinator crash;
    an OS/power failure can still lose page-cache residue.
``"always"``
    ``flush()`` + ``os.fsync`` per append.  Survives power loss; pays a
    device round-trip per sub-batch (see the ``bench_recovery`` row).

Truncation
----------
A committed checkpoint supersedes the journal: every record the WAL holds
is covered by the manifest's segments, so :meth:`WriteAheadLog.truncate`
resets every shard file to empty.  The engine calls this from its
``_checkpoint_committed`` hook — strictly *after* the manifest swap, never
after segment writes alone, so a crash between the two loses nothing.
"""

from __future__ import annotations

import logging
import os
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..exceptions import ConfigurationError, TransportError
from ..obs import NULL_REGISTRY
from .transport import decode_batch

__all__ = [
    "WriteAheadLog",
    "FSYNC_MODES",
    "RECORD_HEADER",
    "frame_record",
    "shard_wal_name",
]

logger = logging.getLogger("repro.engine.wal")

#: Accepted values for the durability knob, weakest first.
FSYNC_MODES = ("off", "batch", "always")

#: Per-record frame header: payload byte length, then crc32 of the payload.
RECORD_HEADER = struct.Struct("<II")


def shard_wal_name(shard: int) -> str:
    """Journal file name for one shard (``shard-00042.wal``)."""
    return f"shard-{shard:05d}.wal"


def frame_record(payload: bytes) -> bytes:
    """One framed journal record: length + crc32 header, then the payload."""
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_records(raw: bytes, path: str) -> Tuple[List[Tuple[int, bytes]], int]:
    """Walk one journal image, returning ``[(offset, payload), ...]`` and the
    byte offset where the last *intact* record ends.

    A structurally incomplete tail (short header, short payload, or a
    bad checksum on the file's final frame) is reported by returning early —
    the caller truncates.  A checksum mismatch that is *followed by more
    journal* cannot be a torn append and raises :class:`TransportError`.
    """
    records: List[Tuple[int, bytes]] = []
    offset = 0
    size = len(raw)
    while offset < size:
        if size - offset < RECORD_HEADER.size:
            break  # torn header at the tail
        length, checksum = RECORD_HEADER.unpack_from(raw, offset)
        body_start = offset + RECORD_HEADER.size
        if size - body_start < length:
            break  # torn payload at the tail
        payload = raw[body_start : body_start + length]
        if zlib.crc32(payload) != checksum:
            if body_start + length == size:
                break  # checksum damage confined to the final frame: torn
            raise TransportError(
                f"corrupt WAL record in {path} at offset {offset}:"
                f" crc mismatch (stored {checksum:#010x},"
                f" computed {zlib.crc32(payload):#010x}) with"
                f" {size - body_start - length} journal bytes following —"
                " not a torn tail; restore from checkpoint"
            )
        records.append((offset, payload))
        offset = body_start + length
    return records, offset


class WriteAheadLog:
    """Append/replay access to one engine's per-shard journal directory.

    The coordinator owns exactly one instance; appends go through per-shard
    file handles opened lazily in append mode, replay reads a fresh handle.
    All methods are called under the engine's API lock — the class itself
    adds no locking.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "batch",
        registry: Any = None,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ConfigurationError(
                f"unknown WAL fsync policy {fsync!r}"
                f" (choose from {', '.join(FSYNC_MODES)})"
            )
        self.directory = os.fspath(directory)
        self.fsync = fsync
        os.makedirs(self.directory, exist_ok=True)
        registry = NULL_REGISTRY if registry is None else registry
        self._m_records = registry.counter("wal.records")
        self._m_bytes = registry.counter("wal.bytes")
        self._m_truncations = registry.counter("wal.truncations")
        self._handles: Dict[int, Any] = {}
        self._closed = False

    # -- paths ----------------------------------------------------------------

    def path_for(self, shard: int) -> str:
        return os.path.join(self.directory, shard_wal_name(shard))

    def shards_on_disk(self) -> List[int]:
        """Shard indexes with a non-empty journal file, sorted."""
        shards = []
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        for name in names:
            if name.startswith("shard-") and name.endswith(".wal"):
                try:
                    shard = int(name[len("shard-") : -len(".wal")])
                except ValueError:
                    continue
                if os.path.getsize(os.path.join(self.directory, name)) > 0:
                    shards.append(shard)
        return sorted(shards)

    def bytes_on_disk(self) -> int:
        return sum(
            os.path.getsize(self.path_for(shard)) for shard in self.shards_on_disk()
        )

    # -- append path ----------------------------------------------------------

    def _handle(self, shard: int):
        handle = self._handles.get(shard)
        if handle is None:
            handle = open(self.path_for(shard), "ab")
            self._handles[shard] = handle
        return handle

    def append(self, shard: int, payload: bytes, records: Optional[int] = None) -> int:
        """Journal one encoded sub-batch for ``shard``; returns bytes written.

        ``payload`` must be :func:`encode_batch` output.  ``records`` is the
        record count for metrics; when omitted it is read from the payload's
        own ``SWT1`` header.
        """
        if self._closed:
            raise ConfigurationError("write-ahead log is closed")
        frame = frame_record(payload)
        handle = self._handle(shard)
        handle.write(frame)
        if self.fsync == "batch":
            handle.flush()
        elif self.fsync == "always":
            handle.flush()
            os.fsync(handle.fileno())
        if records is None:
            (records,) = struct.unpack_from("<I", payload, 4)
        self._m_records.inc(records)
        self._m_bytes.inc(len(frame))
        return len(frame)

    def sync(self) -> None:
        """Flush every open handle to the OS (plus fsync under ``always``)."""
        for handle in self._handles.values():
            handle.flush()
            if self.fsync == "always":
                os.fsync(handle.fileno())

    # -- replay path ----------------------------------------------------------

    def tail(self, shard: int) -> List[bytes]:
        """The journal tail for one shard: every intact payload, in append
        order, each validated to decode cleanly.

        A torn final record is truncated away with a warning.  Mid-journal
        corruption, or a frame whose checksum passes but whose payload the
        columnar codec rejects, raises :class:`TransportError` naming the
        file and byte offset — the journal cannot be trusted past that point.
        """
        path = self.path_for(shard)
        # Flush our own buffered appends first so replay sees them.
        handle = self._handles.get(shard)
        if handle is not None:
            handle.flush()
        try:
            with open(path, "rb") as reader:
                raw = reader.read()
        except FileNotFoundError:
            return []
        records, intact_end = _scan_records(raw, path)
        if intact_end < len(raw):
            logger.warning(
                "truncating torn WAL tail in %s: dropping %d byte(s) of a"
                " partial record at offset %d (crash mid-append)",
                path, len(raw) - intact_end, intact_end,
            )
            self._truncate_file(shard, intact_end)
            self._m_truncations.inc()
        payloads: List[bytes] = []
        for offset, payload in records:
            try:
                decode_batch(payload)
            except TransportError as error:
                raise TransportError(
                    f"undecodable WAL record in {path} at offset {offset}"
                    f" ({len(payload)} payload bytes, checksum valid): {error}"
                ) from error
            payloads.append(payload)
        return payloads

    def replay(self) -> Iterator[Tuple[int, List[bytes]]]:
        """Iterate ``(shard, payloads)`` over every journaled shard."""
        for shard in self.shards_on_disk():
            yield shard, self.tail(shard)

    # -- truncation -----------------------------------------------------------

    def _truncate_file(self, shard: int, size: int) -> None:
        handle = self._handles.get(shard)
        if handle is not None:
            handle.flush()
            handle.truncate(size)
            if self.fsync == "always":
                os.fsync(handle.fileno())
        else:
            try:
                os.truncate(self.path_for(shard), size)
            except FileNotFoundError:
                pass

    def truncate(self, shards: Optional[List[int]] = None) -> None:
        """Reset journal files to empty — call only once a checkpoint manifest
        covering the journaled records has been atomically committed."""
        if shards is None:
            targets = set(self.shards_on_disk()) | set(self._handles)
        else:
            targets = set(shards)
        for shard in targets:
            self._truncate_file(shard, 0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            try:
                handle.flush()
                handle.close()
            except (OSError, ValueError):  # pragma: no cover - torn shutdown
                pass
        self._handles.clear()
