"""Streaming ingest sources: keyed records from JSONL lines, in batches.

The engine's ``ingest()`` takes any iterable of keyed records, but a
production feed arrives as a byte stream.  This module adapts the common
wire form — one JSON document per line, from a file, a pipe or stdin — into
the engine's record tuples without ever materialising the stream:

* :func:`jsonl_records` turns an iterable of lines into ``(key, value)`` /
  ``(key, value, timestamp)`` tuples.  Each line is either an object
  (``{"key": ..., "value": ..., "timestamp": ...}``, timestamp optional) or
  an array (``[key, value]`` / ``[key, value, timestamp]``).  Blank lines
  are skipped; anything else fails loudly with the line number.
* :func:`batched` slices any iterator into lists of at most ``size`` records
  — the unit the engine dispatches to shard workers, and the knob that
  bounds producer-side memory.
* :func:`ingest_jsonl` wires both to an engine and returns the record count.

JSON arrays become tuples, so array-form keys keep the engine's stable-hash
contract (lists are not hashable stream keys).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import ConfigurationError

__all__ = ["jsonl_records", "batched", "ingest_jsonl", "DEFAULT_BATCH_SIZE"]

#: Default records per ingest batch for streaming sources.
DEFAULT_BATCH_SIZE = 8192


def _record_from_document(document: Any, line_number: int) -> Tuple[Any, ...]:
    if isinstance(document, dict):
        if "key" not in document or "value" not in document:
            raise ConfigurationError(
                f"line {line_number}: JSONL record objects need 'key' and 'value' fields,"
                f" got {sorted(document)!r}"
            )
        key = document["key"]
        value = document["value"]
        timestamp = document.get("timestamp")
        if isinstance(key, list):
            key = tuple(key)
        if timestamp is None:
            return (key, value)
        return (key, value, timestamp)
    if isinstance(document, list):
        if len(document) not in (2, 3):
            raise ConfigurationError(
                f"line {line_number}: JSONL record arrays must have 2 or 3 items,"
                f" got {len(document)}"
            )
        if isinstance(document[0], list):
            document = [tuple(document[0]), *document[1:]]
        return tuple(document)
    raise ConfigurationError(
        f"line {line_number}: each JSONL record must be an object or an array,"
        f" got {type(document).__name__}"
    )


def jsonl_records(lines: Iterable[str]) -> Iterator[Tuple[Any, ...]]:
    """Parse an iterable of JSONL lines into keyed record tuples, lazily.

    Works directly on open file objects and ``sys.stdin``.  Raises
    :class:`~repro.exceptions.ConfigurationError` (with the 1-based line
    number) on the first malformed line; records before it have already been
    yielded, mirroring the engine's ingested-prefix contract.
    """
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            document = json.loads(stripped)
        except ValueError as error:
            raise ConfigurationError(
                f"line {line_number}: invalid JSON ({error}): {stripped[:80]!r}"
            ) from None
        yield _record_from_document(document, line_number)


def batched(records: Iterable[Any], size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Any]]:
    """Slice any record iterator into lists of at most ``size`` records."""
    if size <= 0:
        raise ConfigurationError("batch size must be positive")
    batch: List[Any] = []
    for record in records:
        batch.append(record)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def ingest_jsonl(
    engine: Any,
    lines: Iterable[str],
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    limit: Optional[int] = None,
) -> int:
    """Stream JSONL ``lines`` into ``engine`` in batches; return the count.

    ``limit`` caps the number of records ingested (useful for smoke runs over
    an endless pipe).  The caller is responsible for a final
    ``engine.flush()`` if it needs a barrier — ingest alone only dispatches.
    """
    ingested = 0
    for batch in batched(jsonl_records(lines), batch_size):
        if limit is not None and ingested + len(batch) > limit:
            batch = batch[: limit - ingested]
        if batch:
            ingested += engine.ingest(batch)
        if limit is not None and ingested >= limit:
            break
    return ingested
