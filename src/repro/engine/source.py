"""Streaming ingest sources: keyed records from JSONL lines, in batches.

The engine's ``ingest()`` takes any iterable of keyed records, but a
production feed arrives as a byte stream.  This module adapts the common
wire form — one JSON document per line, from a file, a pipe or stdin — into
the engine's record tuples without ever materialising the stream:

* :func:`jsonl_records` turns an iterable of lines into ``(key, value)`` /
  ``(key, value, timestamp)`` tuples.  Each line is either an object
  (``{"key": ..., "value": ..., "timestamp": ...}``, timestamp optional) or
  an array (``[key, value]`` / ``[key, value, timestamp]``).  Blank lines
  are skipped; anything else fails loudly with the line number.
* :func:`batched` slices any iterator into lists of at most ``size`` records
  — the unit the engine dispatches to shard workers, and the knob that
  bounds producer-side memory.
* :func:`ingest_jsonl` wires both to an engine and returns the record count.

Array-form keys become tuples **recursively** (:func:`freeze_key`), so even
nested keys keep the engine's stable-hash contract; keys containing anything
unhashable fail loudly with the offending line number instead of a
``TypeError`` deep inside ingest.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import ConfigurationError

__all__ = [
    "jsonl_records",
    "batched",
    "ingest_jsonl",
    "freeze_key",
    "DEFAULT_BATCH_SIZE",
]

#: Default records per ingest batch for streaming sources.
DEFAULT_BATCH_SIZE = 8192


def freeze_key(key: Any, *, line_number: Optional[int] = None) -> Any:
    """Turn a JSON-shaped key into a hashable, stable-routable stream key.

    Lists become tuples **recursively** — a nested key like
    ``[["a", ["b"]], 4]`` must not smuggle an inner list past the engine's
    stable-hash contract (lists are unhashable and have no stable byte
    encoding).  Scalars that :func:`repro.engine.hashing.stable_key_bytes`
    accepts (strings, bytes, ints, floats, bools, ``None``) pass through
    unchanged; anything else — a JSON object, say — is refused *here*, with
    the line number when one is known, instead of surfacing as an opaque
    ``TypeError`` deep inside ingest.
    """
    if isinstance(key, (list, tuple)):
        return tuple(freeze_key(item, line_number=line_number) for item in key)
    if key is None or isinstance(key, (str, bytes, int, float)):
        # bool is an int subclass, so it is covered too.
        return key
    context = f"line {line_number}: " if line_number is not None else ""
    raise ConfigurationError(
        f"{context}record key contains a {type(key).__name__}, which is not a"
        " hashable stream key: keys must be strings, numbers, booleans, null,"
        " or (nested) arrays of these"
    )


def _record_from_document(document: Any, line_number: int) -> Tuple[Any, ...]:
    if isinstance(document, dict):
        if "key" not in document or "value" not in document:
            raise ConfigurationError(
                f"line {line_number}: JSONL record objects need 'key' and 'value' fields,"
                f" got {sorted(document)!r}"
            )
        key = freeze_key(document["key"], line_number=line_number)
        value = document["value"]
        timestamp = document.get("timestamp")
        if timestamp is None:
            return (key, value)
        return (key, value, timestamp)
    if isinstance(document, list):
        if len(document) not in (2, 3):
            raise ConfigurationError(
                f"line {line_number}: JSONL record arrays must have 2 or 3 items,"
                f" got {len(document)}"
            )
        return (freeze_key(document[0], line_number=line_number), *document[1:])
    raise ConfigurationError(
        f"line {line_number}: each JSONL record must be an object or an array,"
        f" got {type(document).__name__}"
    )


def jsonl_records(lines: Iterable[str]) -> Iterator[Tuple[Any, ...]]:
    """Parse an iterable of JSONL lines into keyed record tuples, lazily.

    Works directly on open file objects and ``sys.stdin``.  Raises
    :class:`~repro.exceptions.ConfigurationError` (with the 1-based line
    number) on the first malformed line; records before it have already been
    yielded, mirroring the engine's ingested-prefix contract.
    """
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            document = json.loads(stripped)
        except ValueError as error:
            raise ConfigurationError(
                f"line {line_number}: invalid JSON ({error}): {stripped[:80]!r}"
            ) from None
        yield _record_from_document(document, line_number)


def batched(records: Iterable[Any], size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[Any]]:
    """Slice any record iterator into lists of at most ``size`` records.

    ``size`` is validated **eagerly**: ``batched(records, 0)`` raises
    :class:`~repro.exceptions.ConfigurationError` at the call site.  (The
    slicing itself is a generator; were the check inside it, a bad size
    would surface only at first iteration — or never, if the result is
    dropped unconsumed.)
    """
    if size <= 0:
        raise ConfigurationError("batch size must be positive")
    return _batched_iter(records, size)


def _batched_iter(records: Iterable[Any], size: int) -> Iterator[List[Any]]:
    batch: List[Any] = []
    for record in records:
        batch.append(record)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def ingest_jsonl(
    engine: Any,
    lines: Iterable[str],
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    limit: Optional[int] = None,
) -> int:
    """Stream JSONL ``lines`` into ``engine`` in batches; return the count.

    ``limit`` caps the number of records ingested (useful for smoke runs over
    an endless pipe).  The caller is responsible for a final
    ``engine.flush()`` if it needs a barrier — ingest alone only dispatches.
    """
    ingested = 0
    for batch in batched(jsonl_records(lines), batch_size):
        if limit is not None and ingested + len(batch) > limit:
            batch = batch[: limit - ingested]
        if batch:
            ingested += engine.ingest(batch)
        if limit is not None and ingested >= limit:
            break
    return ingested
