"""Engine checkpoint files: durable snapshot/restore for the whole fleet.

A checkpoint is the engine's ``state_dict`` wrapped in a small envelope
(magic string + format version) and pickled.  Pickle is the right tool here:
stream values are arbitrary Python objects, snapshots contain ``inf`` clock
values that JSON cannot express, and checkpoints are produced and consumed by
the same trusted process — they are recovery state, not an interchange
format.  Writes are atomic (temp file + ``os.replace``) so a crash mid-write
never corrupts the previous checkpoint.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Union

from ..exceptions import ConfigurationError
from .engine import ShardedEngine

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_MAGIC", "CHECKPOINT_VERSION"]

CHECKPOINT_MAGIC = "swsample-engine-checkpoint"
CHECKPOINT_VERSION = 1


def save_checkpoint(engine: ShardedEngine, path: Union[str, os.PathLike]) -> str:
    """Write the engine's full state to ``path`` atomically.

    Returns the path written.  The snapshot captures every live per-key
    sampler bit for bit (candidates, counters, generator positions), so
    :func:`load_checkpoint` resumes with identical samples *and* identical
    future randomness.
    """
    path = os.fspath(path)
    envelope = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "engine": engine.state_dict(),
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    descriptor, temp_path = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: Union[str, os.PathLike]) -> ShardedEngine:
    """Rebuild a full engine from a :func:`save_checkpoint` file.

    Only load checkpoints you (or a process you trust) wrote: like every
    pickle, a checkpoint file can execute code when loaded.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    if not isinstance(envelope, dict) or envelope.get("magic") != CHECKPOINT_MAGIC:
        raise ConfigurationError(f"{path} is not a swsample engine checkpoint")
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {envelope.get('version')!r}"
            f" (expected {CHECKPOINT_VERSION})"
        )
    return ShardedEngine.from_state_dict(envelope["engine"])
