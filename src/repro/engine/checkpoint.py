"""Incremental per-shard engine checkpoints: manifest + segment files.

A checkpoint is a **directory** (PR 1's single whole-fleet pickle is still
readable, see *Legacy format* below) holding one segment file per shard plus
a manifest:

.. code-block:: text

    engine.ckpt/
        MANIFEST.json
        shard-00000-3fb17c2a90d1.seg
        shard-00001-88aa01c0e3f2.seg
        ...

Manifest format (``MANIFEST.json``)
-----------------------------------
A JSON object (Python's ``json`` dialect: the engine clock may legitimately
be ``-Infinity`` before any timestamped record, which ``json`` round-trips):

``magic``
    Always ``"swsample-engine-checkpoint"``.
``version``
    Checkpoint layout version; this module writes ``2``.
``engine``
    The fleet's topology and policy, everything but the per-shard state:
    ``spec`` (the :meth:`~repro.engine.SamplerSpec.to_dict` recipe),
    ``shards``, ``seed``, ``max_keys_per_shard``, ``idle_ttl``,
    ``track_occurrences``, ``now`` (the logical clock) and ``format`` (the
    sampler ``state_dict`` format version).  Worker count is deliberately
    **not** recorded: workers drive shards but own no state, so a manifest
    written with 4 workers loads into 1 or 16.
``segments``
    One entry per shard, in shard order: ``shard`` (index), ``file``
    (segment filename, relative to the directory), ``sha256`` (hex digest of
    the segment bytes, verified on load) and ``bytes`` (segment size).

Segment files
-------------
``shard-<index>-<digest12>.seg`` is the pickled envelope
``{"magic": "swsample-engine-segment", "version": 2, "shard": i,
"pool": <KeyedSamplerPool.state_dict()>}``.  Pickle is the right tool for
the *state* (stream values are arbitrary Python objects); the manifest stays
JSON so operators can inspect a checkpoint with ``cat``.  Only load
checkpoints a process you trust wrote — pickle can execute code.

Who writes the segments
-----------------------
Segments are written by whatever owns the shard's pool, via
:func:`write_shard_segment`: the coordinator for serial
:class:`~repro.engine.ShardedEngine` and thread-backed
:class:`~repro.engine.ParallelEngine` fleets, and the **worker processes
themselves** for :class:`~repro.engine.ProcessEngine` — each worker pickles
and atomically writes its resident shards (in parallel across workers) and
ships back only the manifest entries, which the coordinator stitches into
one ``MANIFEST.json``.  The format on disk is identical either way, which
is why a checkpoint round-trips under any executor and any worker count.
A worker that dies mid-save leaves the directory loadable (the manifest
swap never happened) and the save fails loudly with
:class:`~repro.exceptions.CheckpointError`.

Incrementality
--------------
Each pool carries a monotone mutation ``generation``.  The writer remembers,
per engine instance, the generation it last wrote for each shard *to this
directory*; on the next save, shards whose generation is unchanged keep
their existing segment (the manifest re-references it) and only dirty shards
are re-pickled.  Loading seeds that memory, so a just-restored engine's
first save also rewrites nothing.  The memo is in-process only — a fresh
process saving over a directory it did not write rewrites every segment,
which is the conservative (always correct) behaviour.

Crash safety
------------
New segments are written under fresh digest-suffixed names, then the
manifest is atomically replaced (temp file + ``os.replace``), then segments
referenced by neither the new manifest nor the one it replaced are
garbage-collected (along with ``.ckpt-*`` temp files orphaned by interrupted
saves).  A crash at any point leaves the directory loadable: before the
manifest swap the old manifest still references the old (untouched)
segments; after it, the new ones.  Keeping the immediately-prior
generation's segments also protects a concurrent reader that parsed the old
manifest just before the swap; a reader racing two consecutive saves can
still observe a missing segment, so serialise loads against saves if that
window matters.

Legacy format
-------------
PR 1 wrote a single pickled file.  :func:`load_checkpoint` still reads those
(version 1); :func:`save_checkpoint` always writes the directory layout.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.serialization import STATE_FORMAT
from ..exceptions import CheckpointError, ConfigurationError
from ..obs import get_registry, span
from .engine import ShardedEngine
from .executor import ParallelEngine, ProcessEngine
from .pool import KeyedSamplerPool
from .spec import SamplerSpec

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
    "write_shard_segment",
    "checkpoint_shards",
    "load_shard_states",
    "forget_saved_segments",
    "CheckpointResult",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "SEGMENT_MAGIC",
    "MANIFEST_NAME",
]

#: Worker-backed engine classes selectable by :func:`load_checkpoint`.
_EXECUTORS = {"thread": ParallelEngine, "process": ProcessEngine}

CHECKPOINT_MAGIC = "swsample-engine-checkpoint"
SEGMENT_MAGIC = "swsample-engine-segment"
CHECKPOINT_VERSION = 2
#: The PR-1 single-file pickle layout (still loadable).
LEGACY_CHECKPOINT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"

#: Per-engine, in-process record of the last save: directory plus, per shard,
#: the pool generation and the segment digest written there.  Reuse requires
#: *both* to match — the generation says this engine's pool is unchanged, the
#: digest says the segment on disk is the one this engine wrote (another
#: engine saving to the same directory must not be silently trusted).  Weak
#: keys so the memo never outlives engines.
_SAVE_MEMO: "weakref.WeakKeyDictionary[ShardedEngine, Tuple[str, List[Tuple[int, str]]]]" = (
    weakref.WeakKeyDictionary()
)


def forget_saved_segments(engine: ShardedEngine, shards: Any) -> None:
    """Drop the incremental-save memo for ``shards`` of ``engine``.

    The supervisor calls this when it rebuilds a dead worker's pools: the
    replacement pools restart generation counting, so a matching generation
    number no longer proves the on-disk segment reflects the live state —
    the next save must rewrite those shards, not re-reference them.
    """
    memo = _SAVE_MEMO.get(engine)
    if memo is None:
        return
    path, entries = memo
    refreshed = [
        (-1, "") if index in set(shards) else entry
        for index, entry in enumerate(entries)
    ]
    _SAVE_MEMO[engine] = (path, refreshed)


def load_shard_states(
    path: Union[str, os.PathLike], shards: Any, expected_shards: int
) -> Dict[int, Dict[str, Any]]:
    """Load just ``shards``' pool states from the checkpoint at ``path``
    (digest-verified, same validation as a full restore) — the recovery
    path's restore primitive: a supervisor rebuilding one dead worker needs
    that worker's shard set only, not the whole fleet.

    Raises :class:`~repro.exceptions.CheckpointError` on a missing/corrupt
    manifest or segment, or when the manifest's shard count does not match
    ``expected_shards``.
    """
    path = os.path.abspath(os.fspath(path))
    wanted = set(shards)
    manifest = _read_manifest(path)
    if manifest is None:
        raise CheckpointError(f"{path} has no readable {MANIFEST_NAME}")
    meta = manifest.get("engine")
    declared = meta.get("shards") if isinstance(meta, dict) else None
    if declared != expected_shards:
        raise CheckpointError(
            f"checkpoint at {path} declares {declared!r} shards but this"
            f" engine has {expected_shards} — not the same fleet"
        )
    states: Dict[int, Dict[str, Any]] = {}
    for entry in manifest.get("segments", []):
        if isinstance(entry, dict) and int(entry.get("shard", -1)) in wanted:
            index, pool_state = _load_segment(path, entry, expected_shards)
            states[index] = pool_state
    missing = wanted - set(states)
    if missing:
        raise CheckpointError(
            f"checkpoint at {path} has no segments for shards {sorted(missing)}"
        )
    return states


@dataclass(frozen=True)
class CheckpointResult:
    """What one :func:`write_checkpoint` call did."""

    path: str
    segments_written: int
    segments_reused: int
    bytes_written: int

    @property
    def segments_total(self) -> int:
        return self.segments_written + self.segments_reused


def _atomic_write(directory: str, final_path: str, data: bytes) -> None:
    descriptor, temp_path = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, final_path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _read_manifest(path: str) -> Optional[Dict[str, Any]]:
    """The parsed manifest in ``path``, or ``None`` when absent/unreadable.

    Used by the *writer* to look up reusable segments, so damage degrades to
    a full rewrite instead of an error; the loader validates separately and
    loudly."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("magic") != CHECKPOINT_MAGIC:
        return None
    return manifest


def write_shard_segment(
    path: str, index: int, pool: KeyedSamplerPool, reuse: Optional[Tuple[int, str, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Write (or reuse) shard ``index``'s segment file under ``path``.

    ``reuse`` is the save memo's candidate for this shard — a
    ``(saved_generation, saved_digest, previous_manifest_entry)`` triple, or
    ``None`` when this engine has not saved this shard here before.  The
    segment is reused only when the pool's generation still matches *and*
    the on-disk file is verifiably the one this engine wrote (digest pinned
    in the previous manifest, size intact); anything less rewrites.

    Runs wherever the pool lives: on the coordinator for serial and
    thread-backed engines, **inside the owning worker process** for
    :class:`~repro.engine.ProcessEngine` — workers persist their own
    resident shards and ship back only the returned manifest entry.
    """
    generation = pool.generation
    if reuse is not None:
        saved_generation, saved_digest, entry = reuse
        segment_path = os.path.join(path, str(entry.get("file", "")))
        if (
            saved_generation == generation
            # The digest pins the on-disk segment to the bytes *this*
            # engine wrote: a foreign engine's save to the same
            # directory changes the digest and forces a rewrite here.
            and entry.get("sha256") == saved_digest
            and os.path.isfile(segment_path)
            and os.path.getsize(segment_path) == entry.get("bytes")
        ):
            return {
                "entry": dict(entry),
                "generation": generation,
                "written": False,
                "bytes": 0,
            }
    envelope = {
        "magic": SEGMENT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "shard": index,
        "pool": pool.state_dict(),
    }
    data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(data).hexdigest()
    filename = f"shard-{index:05d}-{digest[:12]}.seg"
    _atomic_write(path, os.path.join(path, filename), data)
    return {
        "entry": {"shard": index, "file": filename, "sha256": digest, "bytes": len(data)},
        "generation": generation,
        "written": True,
        "bytes": len(data),
    }


def write_checkpoint(engine: ShardedEngine, path: Union[str, os.PathLike]) -> CheckpointResult:
    """Write ``engine``'s state to the directory ``path``, incrementally.

    Creates the directory if needed.  Shards unchanged since this engine's
    previous save to the same directory keep their segment files; only dirty
    shards are re-serialised.  Returns a :class:`CheckpointResult` with the
    written/reused split (benchmarks assert on it).
    """
    path = os.path.abspath(os.fspath(path))
    if os.path.exists(path) and not os.path.isdir(path):
        raise CheckpointError(
            f"{path} exists and is not a directory — checkpoints are directories now;"
            " remove the old single-file checkpoint first"
        )
    os.makedirs(path, exist_ok=True)
    registry = getattr(engine, "_obs", None) or get_registry()
    # The guard flushes (worker-backed engines) and keeps concurrent
    # producers out for the duration of the save, so the written pools and
    # the recorded generations describe one consistent fleet.
    with engine._checkpoint_guard():
        with span("checkpoint.write", registry=registry):
            result = _write_checkpoint_locked(engine, path)
        if registry.enabled:
            registry.counter("checkpoint.saves").inc()
            registry.counter("checkpoint.segments.written").inc(result.segments_written)
            registry.counter("checkpoint.segments.reused").inc(result.segments_reused)
            registry.counter("checkpoint.bytes.written").inc(result.bytes_written)
            if result.segments_total:
                registry.gauge("checkpoint.dirty.shard.ratio").set(
                    result.segments_written / result.segments_total
                )
        return result


def _write_checkpoint_locked(engine: ShardedEngine, path: str) -> CheckpointResult:
    memo = _SAVE_MEMO.get(engine)
    previous_manifest = _read_manifest(path)
    previous_entries: Dict[int, Dict[str, Any]] = {}
    if previous_manifest is not None:
        for entry in previous_manifest.get("segments", []):
            if isinstance(entry, dict) and "shard" in entry:
                previous_entries[int(entry["shard"])] = entry
    saved: List[Tuple[int, str]] = memo[1] if memo is not None and memo[0] == path else []

    plan: Dict[int, Tuple[int, str, Dict[str, Any]]] = {}
    for index in range(engine.shards):
        entry = previous_entries.get(index)
        if entry is not None and index < len(saved):
            saved_generation, saved_digest = saved[index]
            plan[index] = (saved_generation, saved_digest, entry)

    # Each shard's owner writes (or re-references) its segment: the local
    # pools for serial/thread engines, the worker processes for
    # ProcessEngine.
    results = engine._checkpoint_segments(path, plan)
    if len(results) != engine.shards:
        raise CheckpointError(
            f"engine produced {len(results)} segments for {engine.shards} shards"
        )
    segments = [result["entry"] for result in results]
    memo_entries = [
        (result["generation"], str(result["entry"]["sha256"])) for result in results
    ]
    written = sum(1 for result in results if result["written"])
    reused = len(results) - written
    bytes_written = sum(result["bytes"] for result in results)

    manifest = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "engine": {
            "format": STATE_FORMAT,
            "spec": engine.spec.to_dict(),
            "shards": engine.shards,
            "seed": engine.seed,
            "max_keys_per_shard": engine._max_keys_per_shard,
            "idle_ttl": engine._idle_ttl,
            "track_occurrences": engine._track_occurrences,
            "now": engine.now,
        },
        "segments": segments,
    }
    try:
        encoded = json.dumps(manifest, indent=2).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise CheckpointError(
            f"engine configuration is not JSON-encodable for the manifest: {error}"
        ) from error
    _atomic_write(path, os.path.join(path, MANIFEST_NAME), encoded)

    # GC: drop segment files referenced by neither the fresh manifest nor the
    # one it replaced.  Retaining the immediately-prior generation keeps a
    # reader that parsed the old manifest just before the swap loadable; a
    # reader racing *two* consecutive saves can still lose — serialise loads
    # against saves if that window matters.  Orphaned temp files from
    # interrupted saves (.ckpt-*) are swept too.
    referenced = {str(entry["file"]) for entry in segments}
    if previous_manifest is not None:
        for entry in previous_manifest.get("segments", []):
            if isinstance(entry, dict) and "file" in entry:
                referenced.add(str(entry["file"]))
    for name in os.listdir(path):
        stale_segment = name.startswith("shard-") and name.endswith(".seg")
        stale_temp = name.startswith(".ckpt-")
        if (stale_segment and name not in referenced) or stale_temp:
            try:
                os.unlink(os.path.join(path, name))
            except OSError:
                pass

    _SAVE_MEMO[engine] = (path, memo_entries)
    # The manifest swap committed: tell the engine (the supervised process
    # engine records the path for recovery restores and truncates its
    # write-ahead journal, now fully covered by these segments).
    engine._checkpoint_committed(path)
    return CheckpointResult(
        path=path, segments_written=written, segments_reused=reused, bytes_written=bytes_written
    )


def save_checkpoint(engine: ShardedEngine, path: Union[str, os.PathLike]) -> str:
    """Write the engine's full state to the checkpoint directory ``path``.

    Returns the path written.  The snapshot captures every live per-key
    sampler bit for bit (candidates, counters, generator positions), so
    :func:`load_checkpoint` resumes with identical samples *and* identical
    future randomness.  Thin wrapper over :func:`write_checkpoint`.
    """
    return write_checkpoint(engine, path).path


def _load_segment(path: str, entry: Dict[str, Any], shards: int) -> Tuple[int, Dict[str, Any]]:
    if not isinstance(entry, dict) or not {"shard", "file", "sha256", "bytes"} <= set(entry):
        raise CheckpointError(f"malformed segment entry in manifest: {entry!r}")
    index = int(entry["shard"])
    if not 0 <= index < shards:
        raise CheckpointError(f"manifest references shard {index} of a {shards}-shard engine")
    filename = str(entry["file"])
    if os.path.sep in filename or filename != os.path.basename(filename):
        raise CheckpointError(f"segment filename {filename!r} escapes the checkpoint directory")
    segment_path = os.path.join(path, filename)
    try:
        with open(segment_path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CheckpointError(
            f"shard {index} segment {filename!r} is missing or unreadable: {error}"
        ) from error
    digest = hashlib.sha256(data).hexdigest()
    if digest != entry["sha256"]:
        raise CheckpointError(
            f"shard {index} segment {filename!r} is corrupt:"
            f" sha256 {digest[:12]}… does not match the manifest"
        )
    try:
        envelope = pickle.loads(data)
    except Exception as error:  # digest matched, so this is a writer bug / tamper
        raise CheckpointError(
            f"shard {index} segment {filename!r} does not unpickle: {error}"
        ) from error
    if (
        not isinstance(envelope, dict)
        or envelope.get("magic") != SEGMENT_MAGIC
        or envelope.get("version") != CHECKPOINT_VERSION
        or envelope.get("shard") != index
    ):
        raise CheckpointError(f"shard {index} segment {filename!r} has a malformed envelope")
    return index, envelope["pool"]


def _engine_from_state(
    state: Dict[str, Any],
    workers: Optional[int],
    executor: str,
    max_batch: Optional[int] = None,
    registry: Optional[Any] = None,
    engine_kwargs: Optional[Dict[str, Any]] = None,
) -> ShardedEngine:
    """Build a serial, thread- or process-backed engine and load ``state``.

    Worker-backed engines are closed again on a failed load so a bad
    checkpoint can never leak worker threads or processes.
    """
    if workers is None:
        return ShardedEngine.from_state_dict(state, registry=registry)
    engine_class = _EXECUTORS[executor]
    extra = {} if max_batch is None else {"max_batch": max_batch}
    if engine_kwargs:
        extra.update(engine_kwargs)
    engine = engine_class(
        SamplerSpec.from_dict(state["spec"]),
        workers=workers,
        **extra,
        shards=int(state["shards"]),
        seed=int(state["seed"]),
        max_keys_per_shard=state.get("max_keys_per_shard"),
        idle_ttl=state.get("idle_ttl"),
        track_occurrences=bool(state.get("track_occurrences", False)),
        registry=registry,
    )
    try:
        engine.load_state_dict(state)
    except BaseException:
        try:
            engine.close()
        except Exception:
            pass
        raise
    return engine


def _load_directory_checkpoint(
    path: str,
    workers: Optional[int],
    executor: str,
    max_batch: Optional[int] = None,
    registry: Optional[Any] = None,
    engine_kwargs: Optional[Dict[str, Any]] = None,
) -> ShardedEngine:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as error:
        raise CheckpointError(f"{path} has no readable {MANIFEST_NAME}: {error}") from error
    except ValueError as error:
        raise CheckpointError(f"{manifest_path} is not valid JSON: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a swsample engine checkpoint")
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {manifest.get('version')!r}"
            f" (expected {CHECKPOINT_VERSION})"
        )
    meta = manifest.get("engine")
    if not isinstance(meta, dict):
        raise CheckpointError(f"{manifest_path} carries no engine metadata")
    missing = [field for field in ("spec", "shards", "seed", "now") if meta.get(field) is None]
    if missing:
        raise CheckpointError(f"{manifest_path} engine metadata is missing {missing}")
    shards = int(meta["shards"])
    entries = manifest.get("segments")
    if not isinstance(entries, list) or len(entries) != shards:
        raise CheckpointError(
            f"manifest lists {len(entries) if isinstance(entries, list) else 'no'}"
            f" segments for {shards} declared shards — corrupt checkpoint"
        )
    pool_states: List[Optional[Dict[str, Any]]] = [None] * shards
    digests: List[str] = [""] * shards
    for entry in entries:
        index, pool_state = _load_segment(path, entry, shards)
        if pool_states[index] is not None:
            raise CheckpointError(f"manifest references shard {index} twice")
        pool_states[index] = pool_state
        digests[index] = str(entry["sha256"])
    state = {
        "format": meta.get("format", STATE_FORMAT),
        "spec": meta.get("spec"),
        "shards": shards,
        "seed": meta.get("seed"),
        "max_keys_per_shard": meta.get("max_keys_per_shard"),
        "idle_ttl": meta.get("idle_ttl"),
        "track_occurrences": meta.get("track_occurrences", False),
        "now": meta.get("now"),
        "pools": pool_states,
    }
    engine = _engine_from_state(state, workers, executor, max_batch, registry, engine_kwargs)
    # Seed the incremental-save memo: a just-restored engine's state *is*
    # the on-disk state, so its next save to this directory rewrites nothing
    # — unless someone else's save changes the digests in between.
    _SAVE_MEMO[engine] = (
        path,
        [
            (generation, digests[index])
            for index, generation in enumerate(engine._segment_generations())
        ],
    )
    # A restored engine's recovery baseline is the checkpoint it came from.
    engine._restored_from(path)
    return engine


def _load_legacy_checkpoint(
    path: str,
    workers: Optional[int],
    executor: str,
    max_batch: Optional[int] = None,
    registry: Optional[Any] = None,
    engine_kwargs: Optional[Dict[str, Any]] = None,
) -> ShardedEngine:
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    if not isinstance(envelope, dict) or envelope.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a swsample engine checkpoint")
    if envelope.get("version") != LEGACY_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {envelope.get('version')!r}"
            f" (expected {LEGACY_CHECKPOINT_VERSION} for single-file checkpoints)"
        )
    # No _restored_from here: the legacy layout has no per-shard segments a
    # supervisor could restore from, so the recovery baseline stays unset
    # until the first directory-format save.
    return _engine_from_state(envelope["engine"], workers, executor, max_batch, registry, engine_kwargs)


def checkpoint_shards(path: Union[str, os.PathLike]) -> Optional[int]:
    """The shard count a checkpoint was written with, from the manifest
    alone — no segment is read, no engine is built.  Returns ``None`` when
    it cannot be determined cheaply (legacy single-file checkpoints, or a
    damaged manifest, which :func:`load_checkpoint` will diagnose loudly).

    Lets callers validate topology-dependent choices (e.g. a worker count)
    before paying for a full restore.
    """
    path = os.path.abspath(os.fspath(path))
    if not os.path.isdir(path):
        return None
    manifest = _read_manifest(path)
    if manifest is None:
        return None
    meta = manifest.get("engine")
    if not isinstance(meta, dict) or meta.get("shards") is None:
        return None
    try:
        return int(meta["shards"])
    except (TypeError, ValueError):
        return None


def load_checkpoint(
    path: Union[str, os.PathLike],
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
    max_batch: Optional[int] = None,
    registry: Optional[Any] = None,
    supervise: bool = False,
    wal_dir: Optional[Union[str, os.PathLike]] = None,
    wal_fsync: str = "batch",
    restart_policy: Optional[Any] = None,
) -> ShardedEngine:
    """Rebuild an engine from a checkpoint directory (or a legacy file).

    ``workers=None`` returns a serial :class:`ShardedEngine`; any positive
    ``workers`` returns a worker-backed engine driving the same shard
    states — a thread-backed :class:`~repro.engine.ParallelEngine` by
    default, or a process-backed :class:`~repro.engine.ProcessEngine` with
    ``executor="process"``.  ``max_batch`` tunes the restored worker-backed
    engine's dispatch sub-batch size (ignored for serial restores).  Worker
    count and executor flavour are both orthogonal to the checkpoint, so a
    manifest saved under one loads into any other; legacy single-file (v1)
    checkpoints restore into all three flavours too.

    Every segment's SHA-256 digest is verified against the manifest before a
    single sampler is rebuilt: a missing, truncated or bit-flipped segment
    fails loudly with :class:`~repro.exceptions.CheckpointError` rather than
    resurrecting part of a fleet.

    Only load checkpoints you (or a process you trust) wrote: like every
    pickle, segment files can execute code when loaded.

    ``registry`` is handed to the restored engine (see
    :class:`~repro.engine.ShardedEngine`); the restore itself is traced as
    a ``checkpoint.restore`` span on that registry (or the process default
    when none is given), so restore latency lands in the
    ``checkpoint.restore.seconds`` histogram.

    ``supervise`` / ``wal_dir`` / ``wal_fsync`` / ``restart_policy``
    (process executor only) rebuild the engine with the self-healing
    supervision layer attached — the restored checkpoint becomes the
    recovery baseline immediately.  A non-empty journal left in ``wal_dir``
    by the previous coordinator is **not** replayed automatically; call
    :meth:`~repro.engine.ProcessEngine.replay_wal` on the returned engine
    (the CLI/serve resume paths do).
    """
    if executor not in _EXECUTORS:
        raise ConfigurationError(
            f"executor must be one of {sorted(_EXECUTORS)}, got {executor!r}"
        )
    engine_kwargs: Dict[str, Any] = {}
    if wal_dir is not None or supervise:
        if workers is None or executor != "process":
            raise ConfigurationError(
                "supervise/wal_dir apply to process-backed restores only"
                " (pass workers=N and executor='process')"
            )
        if wal_dir is not None:
            engine_kwargs["wal_dir"] = os.fspath(wal_dir)
            engine_kwargs["wal_fsync"] = wal_fsync
        if supervise:
            engine_kwargs["supervise"] = True
        if restart_policy is not None:
            engine_kwargs["restart_policy"] = restart_policy
    path = os.path.abspath(os.fspath(path))
    span_registry = registry if registry is not None else get_registry()
    with span("checkpoint.restore", registry=span_registry):
        if os.path.isdir(path):
            return _load_directory_checkpoint(
                path, workers, executor, max_batch, registry, engine_kwargs
            )
        return _load_legacy_checkpoint(
            path, workers, executor, max_batch, registry, engine_kwargs
        )
