"""Worker-backed parallel shard executors.

:class:`ParallelEngine` drives the shards of a :class:`ShardedEngine` from a
pool of worker threads.  The design exploits the invariant the shard layer
was built for: shards are *independent* ingest points — no sampler, eviction
list or counter is shared between two shards — so per-shard work can proceed
concurrently as long as each shard's records are applied in arrival order by
exactly one worker at a time.

Topology
--------
Shard ``i`` is owned by worker ``i % workers`` for the life of the engine.
Single ownership is what makes parallel ingest deterministic: a shard's
batches are applied sequentially, in dispatch order, by one thread, so every
key sees its records in exactly the order a serial engine would have applied
them — and because per-key sampler seeds are key-derived (not order-derived),
``workers=1`` and ``workers=8`` produce bit-identical sampler states.
Workers are orthogonal to shard *state*: a checkpoint written by an engine
with 4 workers loads into an engine with 1 or 16.

Dataflow
--------
``ingest()`` validates records and runs the global clock contract on the
caller's thread (exactly the serial engine's semantics), partitions them into
per-shard sub-batches, and hands each sub-batch to its shard's owner through
that worker's queue.  Two mechanisms bound memory and provide backpressure:

* a per-shard counting semaphore caps the number of *in-flight sub-batches*
  per shard at ``queue_depth`` — a producer outrunning a hot shard blocks on
  that shard's semaphore until the worker catches up;
* sub-batches are dispatched every ``max_batch`` records per shard, so one
  huge ``ingest()`` call streams through bounded buffers instead of being
  materialised per shard in full.

``flush()`` is the drain barrier: it waits until every dispatched sub-batch
has been fully applied, then re-raises any worker failure.  Every query and
aggregate (``sample``, ``keys``, ``hottest_keys``, ``state_dict``, …)
flushes first, so readers always observe a consistent fleet.

Thread-safety contract: the engine's public surface is serialised by one
caller lock, so any number of application threads may ``ingest``/``sample``/
``advance_time`` concurrently; the worker fleet runs outside that lock and
drains shard queues in parallel.

A note on speed: on CPython with the GIL, pure-Python sampler updates do not
run concurrently, so thread workers mainly buy ingest/query pipelining and
the scale-out architecture (the worker loop is process-pool-shaped: one
owner per shard, message-passing only).  On free-threaded builds the same
code parallelises for real.
"""

from __future__ import annotations

import contextlib
import os
import queue
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.base import WindowSampler
from ..exceptions import ConfigurationError, ExecutorError
from ..streams.element import StreamElement
from .engine import ShardedEngine, _stamp_timestamp, _unpack_record
from .spec import SamplerSpec

__all__ = ["ParallelEngine"]

#: Worker-queue sentinel asking the worker to exit its loop.
_SHUTDOWN = object()


class ParallelEngine(ShardedEngine):
    """A :class:`ShardedEngine` whose shards are driven by worker threads.

    Parameters
    ----------
    workers:
        Worker-thread count (default: ``min(shards, cpu_count)``).  Each
        worker owns the shards congruent to its index modulo ``workers``.
    queue_depth:
        Maximum in-flight sub-batches per shard before ``ingest`` blocks
        (backpressure toward the producer).
    max_batch:
        Records per dispatched sub-batch; one large ``ingest`` call streams
        through the queues in ``max_batch``-sized pieces per shard.

    All remaining parameters are inherited from :class:`ShardedEngine`.
    """

    def __init__(
        self,
        spec: SamplerSpec,
        *,
        workers: Optional[int] = None,
        queue_depth: int = 8,
        max_batch: int = 4096,
        shards: int = 4,
        seed: int = 0,
        max_keys_per_shard: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        track_occurrences: bool = False,
    ) -> None:
        super().__init__(
            spec,
            shards=shards,
            seed=seed,
            max_keys_per_shard=max_keys_per_shard,
            idle_ttl=idle_ttl,
            track_occurrences=track_occurrences,
        )
        if workers is None:
            workers = min(self.shards, os.cpu_count() or 1)
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        if queue_depth <= 0:
            raise ConfigurationError("queue_depth must be positive")
        if max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        self._workers = int(min(workers, self.shards))
        self._queue_depth = int(queue_depth)
        self._max_batch = int(max_batch)
        self._closed = False
        self._failure: Optional[BaseException] = None
        # Caller lock: serialises the public surface (ingest/flush/queries)
        # across application threads.  RLock because queries call flush().
        self._api_lock = threading.RLock()
        # Drain barrier state: number of dispatched-but-unapplied sub-batches.
        self._drain = threading.Condition()
        self._pending = 0
        # Backpressure: per-shard cap on in-flight sub-batches.
        self._shard_slots = [
            threading.BoundedSemaphore(self._queue_depth) for _ in range(self.shards)
        ]
        # One FIFO per worker; a shard's sub-batches all land in its owner's
        # queue, preserving per-shard (hence per-key) order.
        self._inboxes: List["queue.Queue"] = [queue.Queue() for _ in range(self._workers)]
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(self._inboxes[index],),
                name=f"swsample-shard-worker-{index}",
                daemon=True,
            )
            for index in range(self._workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- worker fleet --------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    def _worker_loop(self, inbox: "queue.Queue") -> None:
        while True:
            message = inbox.get()
            if message is _SHUTDOWN:
                return
            shard, batch = message
            try:
                if self._failure is None:
                    pool = self._pools[shard]
                    append = pool.append
                    for key, value, timestamp in batch:
                        append(key, value, timestamp)
            except BaseException as error:  # surfaced at the next barrier
                if self._failure is None:
                    self._failure = error
            finally:
                self._shard_slots[shard].release()
                with self._drain:
                    self._pending -= 1
                    if self._pending == 0:
                        self._drain.notify_all()

    def _dispatch(self, shard: int, batch: List[Tuple[Any, Any, Optional[float]]]) -> None:
        self._shard_slots[shard].acquire()  # blocks: per-shard backpressure
        with self._drain:
            self._pending += 1
        self._inboxes[shard % self._workers].put((shard, batch))

    def _check_alive(self) -> None:
        if self._closed:
            raise ExecutorError("engine is closed")

    def _raise_failure(self) -> None:
        # A worker failure is sticky: sub-batches queued behind the failing
        # one are skipped, so the fleet may have lost arrivals — the engine
        # refuses all further work rather than serving from suspect state.
        if self._failure is not None:
            raise ExecutorError(
                f"a shard worker failed while applying records: {self._failure!r}"
            ) from self._failure

    # -- ingest --------------------------------------------------------------

    def ingest(self, records: Iterable[Any]) -> int:
        """Validate, clock-stamp and dispatch a batch to the shard workers.

        Same record and clock contract as :meth:`ShardedEngine.ingest`; on a
        mid-batch error the validated prefix is dispatched (and will be
        applied) before the error propagates.  Returns the number of records
        dispatched — call :meth:`flush` (or any query) for a barrier.
        """
        with self._api_lock:
            self._check_alive()
            self._raise_failure()
            clocked = self._spec.is_timestamp
            now = self._now
            count = 0
            buffers: Dict[int, List[Tuple[Any, Any, Optional[float]]]] = {}
            try:
                for record in records:
                    key, value, timestamp = _unpack_record(record)
                    if clocked:
                        timestamp = _stamp_timestamp(timestamp, now)
                        now = timestamp
                    shard = self.shard_of(key)
                    buffer = buffers.get(shard)
                    if buffer is None:
                        buffer = buffers[shard] = []
                    buffer.append((key, value, timestamp))
                    count += 1
                    if len(buffer) >= self._max_batch:
                        del buffers[shard]
                        self._dispatch(shard, buffer)
            finally:
                self._now = now
                for shard, buffer in buffers.items():
                    self._dispatch(shard, buffer)
            return count

    def flush(self) -> None:
        """Block until every dispatched record has been applied, then
        re-raise any worker failure.  The consistency barrier for queries."""
        with self._api_lock:
            with self._drain:
                self._drain.wait_for(lambda: self._pending == 0)
            self._raise_failure()

    def close(self) -> None:
        """Drain outstanding work and stop the worker threads (idempotent).

        A closed engine still answers queries — its fleet state is final —
        but refuses further ``ingest``.
        """
        with self._api_lock:
            if self._closed:
                return
            try:
                with self._drain:
                    self._drain.wait_for(lambda: self._pending == 0)
            finally:
                self._closed = True
                for inbox in self._inboxes:
                    inbox.put(_SHUTDOWN)
                for thread in self._threads:
                    thread.join()
            self._raise_failure()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- queries (all barrier first) -----------------------------------------

    def advance_time(self, now: float) -> None:
        with self._api_lock:
            self.flush()
            super().advance_time(now)

    def sampler_for(self, key: Any) -> WindowSampler:
        with self._api_lock:
            self.flush()
            return super().sampler_for(key)

    def __contains__(self, key: Any) -> bool:
        with self._api_lock:
            self.flush()
            return super().__contains__(key)

    def sample(self, key: Any) -> List[StreamElement]:
        with self._api_lock:
            self.flush()
            return super().sample(key)

    @property
    def key_count(self) -> int:
        with self._api_lock:
            self.flush()
            return super().key_count

    @property
    def total_arrivals(self) -> int:
        with self._api_lock:
            self.flush()
            return super().total_arrivals

    @property
    def evictions(self) -> int:
        with self._api_lock:
            self.flush()
            return super().evictions

    def keys(self) -> List[Any]:
        with self._api_lock:
            self.flush()
            return super().keys()

    def items(self) -> Iterator[Tuple[Any, WindowSampler]]:
        # Materialised under the lock: a lazy generator would walk the pools'
        # dicts after the lock is released, racing concurrent ingest.
        with self._api_lock:
            self.flush()
            return iter(list(super().items()))

    def memory_words(self) -> int:
        with self._api_lock:
            self.flush()
            return super().memory_words()

    def merged_frequent_items(
        self, threshold: float, *, top: Optional[int] = None
    ) -> List[Tuple[Any, float]]:
        with self._api_lock:
            # The base implementation flushes before touching pools.
            return super().merged_frequent_items(threshold, top=top)

    def hottest_keys(self, top: int = 10) -> List[Tuple[Any, int]]:
        with self._api_lock:
            return super().hottest_keys(top)  # items() supplies the barrier

    def per_key_moments(self, order: float) -> Dict[Any, float]:
        with self._api_lock:
            return super().per_key_moments(order)

    # -- checkpointing -------------------------------------------------------

    @contextlib.contextmanager
    def _checkpoint_guard(self):
        # The whole save happens inside the API lock: producers queue behind
        # it, and the flush guarantees the pools are fully applied and still.
        with self._api_lock:
            self.flush()
            yield

    def state_dict(self) -> Dict[str, Any]:
        with self._api_lock:
            self.flush()
            return super().state_dict()

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        with self._api_lock:
            self.flush()
            super().load_state_dict(state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelEngine(workers={self._workers}, shards={self.shards}, "
            f"spec={self._spec.describe()!r})"
        )
