"""Worker-backed parallel shard executors: threads and processes.

Two executors drive the shards of a :class:`ShardedEngine` from a worker
fleet.  Both exploit the invariant the shard layer was built for: shards are
*independent* ingest points — no sampler, eviction list or counter is shared
between two shards — so per-shard work can proceed concurrently as long as
each shard's records are applied in arrival order by exactly one worker.

* :class:`ParallelEngine` — worker **threads**.  Shards stay in the
  coordinator's address space; workers buy ingest/query pipelining (and real
  parallelism on free-threaded builds), queries read the pools directly
  after a drain barrier.
* :class:`ProcessEngine` — worker **processes**.  Each worker process
  *owns* its shards' pools outright: records are shipped over bounded
  multiprocessing queues, queries run worker-side via a request/reply
  protocol (the pools are never pickled on the hot path), and checkpoints
  are written by the workers themselves as per-shard segment files.  This
  clears the GIL ceiling: per-record sampler updates run on as many cores
  as there are workers.

Topology (both executors)
-------------------------
Shard ``i`` is owned by worker ``i % workers`` for the life of the engine.
Single ownership is what makes parallel ingest deterministic: a shard's
batches are applied sequentially, in dispatch order, by one worker, so every
key sees its records in exactly the order a serial engine would have applied
them — and because per-key sampler seeds are key-derived (not order-derived),
``workers=1``, ``workers=8``, threads and processes all produce bit-identical
sampler states.  Workers are orthogonal to shard *state*: a checkpoint
written by an engine with 4 process workers loads into a serial engine, or
into a thread engine with 16 workers.

Dataflow
--------
``ingest()`` validates records and runs the global clock contract on the
caller's thread (exactly the serial engine's semantics), partitions them into
per-shard sub-batches, and hands each sub-batch to the shard's owner.  Memory
stays bounded in both transports:

* threads: a per-shard counting semaphore caps in-flight sub-batches per
  shard at ``queue_depth``;
* processes: each worker's inbox is a bounded ``multiprocessing.Queue`` of
  ``queue_depth`` messages — a producer outrunning a worker blocks in
  ``put`` until the worker catches up.

``flush()`` is the drain barrier: threads wait on a pending-count condition;
processes send a barrier token down every (FIFO) inbox and wait for the
replies, which also carry any worker-side failure.  Every query and
aggregate flushes first, so readers always observe a consistent fleet.

Both transports drive the same :class:`_ShardWorkerLoop` — the executors
differ only in how messages travel and where the pools live.

Failure model
-------------
A worker failure is **sticky** by default: once a worker thread raises, or a
worker process dies (crash, OOM kill, SIGKILL), the fleet may have lost
arrivals, so the engine raises :class:`~repro.exceptions.WorkerFailure` on
all further ingest, flushes and queries instead of serving from suspect
state.  Recover by loading the last checkpoint into a fresh engine.
``close()`` always reaps worker processes (shutdown message, then join, then
terminate/kill), and a finalizer terminates them even if the engine is
garbage-collected without ``close()`` — no orphaned processes.

Supervision (``ProcessEngine(supervise=True, wal_dir=...)``) upgrades that
contract to *self-healing*: every dispatched sub-batch is journaled to a
per-shard write-ahead log (:mod:`repro.engine.wal`) before it is sent, and a
supervisor thread detects worker death, restarts the process under a bounded
:class:`RestartPolicy`, restores the dead worker's shards from the last
checkpoint segments, replays their WAL tails in original order — bit-
identical to an uninterrupted run, because per-key sampler seeds are
key-derived — and re-admits ingest.  While a recovery is in flight the fleet
runs *degraded*: healthy-shard queries answer normally, operations touching
recovering shards raise the retryable
:class:`~repro.exceptions.ShardRecovering`, ingest for recovering shards is
parked coordinator-side and drained after replay, and ``stats()`` /
``liveness()`` report ``degraded: true`` with per-worker detail.  Only an
exhausted restart budget degrades to the sticky ``WorkerFailure``.

Thread-safety contract: each engine's public surface is serialised by one
caller lock, so any number of application threads may ``ingest``/``sample``/
``advance_time`` concurrently; the worker fleet runs outside that lock.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import multiprocessing
import os
import pickle
import queue
import threading
import time
import weakref
from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core._cascade import COMPILED as _CASCADE_COMPILED
from ..core.base import WindowSampler
from ..core.tracking import OccurrenceCounter
from ..exceptions import (
    CheckpointError,
    ConfigurationError,
    ExecutorError,
    ShardRecovering,
    WorkerFailure,
)
from ..obs import MetricsRegistry, NULL_REGISTRY, merge_snapshots, span
from ..obs.logging import apply_logging_config, logging_config
from ..streams.element import StreamElement
from .engine import (
    _ROUTE_SALT,
    ShardedEngine,
    _advance_and_sample,
    _frequent_partial,
    _frequent_report,
    _hottest_partial,
    _moment_partial,
    _query_error,
    _rank_hottest,
    _stamp_timestamp,
    _unpack_record,
)
from .hashing import stable_key_hash
from .pool import KeyedSamplerPool
from .querycache import QueryCache
from .spec import SamplerSpec
from .transport import (
    HAS_SHARED_MEMORY,
    ShmRingReader,
    ShmRingWriter,
    decode_batch,
    encode_batch,
)
from .wal import WriteAheadLog

__all__ = ["ParallelEngine", "ProcessEngine", "RestartPolicy"]

logger = logging.getLogger("repro.engine.executor")

#: How often blocked queue operations wake up to check worker liveness.
_POLL_INTERVAL = 0.2
#: How long ``close()`` waits for a worker process to exit before escalating
#: to ``terminate()`` (and then ``kill()``).
_JOIN_TIMEOUT = 5.0
#: Worker-side inbox poll period (lets an orphaned worker notice that its
#: coordinator process died and exit instead of blocking forever).
_WORKER_POLL = 1.0
#: Supervisor liveness-scan period; worker death is also signalled eagerly
#: by any API thread that trips over it, so this is only the ceiling.
_SUPERVISOR_POLL = 0.05
#: How long ``write_checkpoint`` waits for an in-flight recovery to drain
#: before failing loudly (monkeypatchable in tests).
_CHECKPOINT_DRAIN_TIMEOUT = 10.0
#: Parked sub-batches per recovering worker before ingest blocks, in units
#: of ``queue_depth`` (mirrors the bounded-inbox backpressure contract).
_PENDING_DEPTH_FACTOR = 4


@dataclasses.dataclass(frozen=True)
class RestartPolicy:
    """Bounds on supervised worker restarts.

    ``max_restarts`` caps consecutive restart attempts per worker (the
    counter resets after a successful recovery, so a long-lived fleet is
    budgeted per *incident*, not per lifetime).  The delay before attempt
    ``n`` is ``min(backoff_cap, backoff_base * 2**(n - 2))`` — the first
    restart is immediate, later ones back off exponentially.
    """

    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts <= 0:
            raise ConfigurationError("max_restarts must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff delays must be non-negative")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before the 1-based ``attempt``-th restart."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 2)))


class _RecoveryAborted(Exception):
    """Internal: the engine closed (or went sticky-failed) mid-recovery."""


class _FailureBox:
    """Holder for the first worker failure.  Thread workers share one box
    (any failure poisons the fleet, exactly the pre-refactor semantics); a
    worker process naturally has a private box and reports through barrier
    replies instead."""

    __slots__ = ("error",)

    def __init__(self) -> None:
        self.error: Optional[BaseException] = None


def _picklable(error: BaseException) -> BaseException:
    """The error itself if it survives pickling, else a stand-in carrying
    its repr — a worker process must never die trying to report a failure."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return ExecutorError(f"worker-side error (unpicklable): {error!r}")


class _ShardWorkerLoop:
    """Transport-agnostic owner of a disjoint set of shard pools.

    One loop instance drives its pools from an inbox of messages.  The same
    loop runs on a worker thread (pools shared with the coordinator, queries
    answered by the coordinator directly) and inside a worker process (pools
    resident here, queries answered over the reply queue).

    Message vocabulary (plain tuples, picklable for the process transport):

    ``("apply", shard, batch)``
        Apply one sub-batch of ``(key, value, timestamp)`` records.  No
        reply; completion is observed via ``on_applied`` (threads) or the
        next barrier (processes).  Skipped once the fleet has failed.
    ``("applyc", shard, buffer)``
        Columnar form of ``apply``: the sub-batch travels as one
        struct-packed buffer (see :mod:`repro.engine.transport`) and is
        decoded worker-side.  Used by the process transport to cut pickling
        freight.
    ``("applym", shard, start, length, end_counter)``
        Shared-memory form of ``applyc``: the columnar buffer sits at
        ``[start, start+length)`` of this worker's payload ring and only
        this descriptor travels through the queue.  The worker copies the
        payload out, publishes ``end_counter`` as consumed (releasing ring
        space back to the coordinator), then decodes and applies.
    ``("shutdown",)``
        Exit the loop.
    ``("barrier", rid)``
        Reply ``("barrier", rid, failure_repr_or_None)``.  Because the inbox
        is FIFO, the reply proves every earlier ``apply`` has been applied.
    ``(op, rid, *args)``
        Request/reply query — replies ``("ok", rid, value)`` or
        ``("error", rid, exception)``.
    """

    def __init__(
        self,
        pools: Dict[int, KeyedSamplerPool],
        spec: SamplerSpec,
        failures: Optional[_FailureBox] = None,
        on_applied: Optional[Any] = None,
        registry: Optional[Any] = None,
    ) -> None:
        #: Insertion order is ascending shard index (the constructor sorts),
        #: so iteration over ``pools.values()`` matches the serial engine's
        #: shard order for this worker's share.
        self.pools = dict(sorted(pools.items()))
        self.spec = spec
        self.clocked = spec.is_timestamp
        self.failures = failures if failures is not None else _FailureBox()
        self.on_applied = on_applied
        #: Reader half of this worker's payload ring (shm transport only).
        self.shm_reader: Optional[ShmRingReader] = None
        # Per-stage transport accounting, reported through the "perf" op.
        self.decode_seconds = 0.0
        self.apply_seconds = 0.0
        self.applied_batches = 0
        self.applied_records = 0
        #: Metrics registry: per-worker inside a process, the engine's own
        #: registry on worker threads.  The plain attributes above remain
        #: the source for the "perf" op; the registry mirrors them so they
        #: participate in fleet-merged snapshots.
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._m_apply_seconds = self.registry.counter("worker.apply.seconds")
        self._m_decode_seconds = self.registry.counter("worker.decode.seconds")
        self._m_applied_batches = self.registry.counter("worker.applied.batches")
        self._m_applied_records = self.registry.counter("worker.applied.records")
        self._m_failures = self.registry.counter("worker.failures")

    def run(
        self,
        inbox: Any,
        replies: Any,
        poll_interval: Optional[float] = None,
        parent_pid: Optional[int] = None,
    ) -> None:
        while True:
            if poll_interval is None:
                message = inbox.get()
            else:
                try:
                    message = inbox.get(timeout=poll_interval)
                except queue.Empty:
                    if parent_pid is not None and os.getppid() != parent_pid:
                        return  # orphaned: the coordinator process is gone
                    continue
            kind = message[0]
            if kind == "apply":
                self._apply(message[1], message[2])
                continue
            if kind == "applyc":
                started = time.perf_counter()
                batch = decode_batch(message[2])
                elapsed = time.perf_counter() - started
                self.decode_seconds += elapsed
                self._m_decode_seconds.inc(elapsed)
                self._apply(message[1], batch)
                continue
            if kind == "applym":
                started = time.perf_counter()
                # Zero-copy decode: parse straight out of the ring mapping
                # and only then release the slot — the coordinator must not
                # reuse these bytes while they are being parsed.  The view
                # itself is released before the ring release so a teardown
                # never trips the exported-buffer guard in shm close().
                view = self.shm_reader.view(message[2], message[3])
                try:
                    batch = decode_batch(view)
                finally:
                    view.release()
                    self.shm_reader.release(message[4])
                elapsed = time.perf_counter() - started
                self.decode_seconds += elapsed
                self._m_decode_seconds.inc(elapsed)
                self._apply(message[1], batch)
                continue
            if kind == "shutdown":
                return
            if kind == "barrier":
                failure = self.failures.error
                replies.put(
                    ("barrier", message[1], None if failure is None else repr(failure))
                )
                continue
            rid = message[1]
            try:
                value = self._execute(kind, *message[2:])
            except BaseException as error:
                replies.put(("error", rid, _picklable(error)))
                continue
            replies.put(("ok", rid, value))

    def _apply(self, shard: int, batch: List[Tuple[Any, Any, Optional[float]]]) -> None:
        started = time.perf_counter()
        try:
            if self.failures.error is None:
                # One pool call for the whole sub-batch: the pool groups
                # records per key and feeds each sampler's batched path.
                self.pools[shard].extend_batch(batch)
        except BaseException as error:  # surfaced at the next barrier
            if self.failures.error is None:
                self.failures.error = error
            self._m_failures.inc()
        finally:
            elapsed = time.perf_counter() - started
            self.apply_seconds += elapsed
            self.applied_batches += 1
            self.applied_records += len(batch)
            self._m_apply_seconds.inc(elapsed)
            self._m_applied_batches.inc()
            self._m_applied_records.inc(len(batch))
            if self.on_applied is not None:
                self.on_applied(shard)

    # -- request/reply operations (the process-transport query surface) ------

    def _execute(self, op: str, *args: Any) -> Any:
        pools = self.pools
        if op == "stats":
            return (
                sum(len(pool) for pool in pools.values()),
                sum(pool.ticks for pool in pools.values()),
                sum(pool.evictions for pool in pools.values()),
                sum(pool.memory_words() for pool in pools.values()),
                sum(pool.evictions_lru for pool in pools.values()),
                sum(pool.evictions_ttl for pool in pools.values()),
            )
        if op == "metrics":
            # This worker's registry as a plain dict; the coordinator merges
            # every worker's reply into one fleet-wide snapshot.
            return self.registry.snapshot()
        if op == "keys":
            return {shard: pool.keys() for shard, pool in pools.items()}
        if op == "generations":
            return {shard: pool.generation for shard, pool in pools.items()}
        if op == "perf":
            return {
                "decode_seconds": self.decode_seconds,
                "apply_seconds": self.apply_seconds,
                "batches": self.applied_batches,
                "records": self.applied_records,
            }
        if op == "contains":
            shard, key = args
            return key in pools[shard]
        if op == "sample":
            shard, key, now = args
            return _advance_and_sample(pools[shard], key, now, self.clocked)
        if op == "sampler":
            shard, key = args
            # The sampler object itself travels back (pickled by the queue
            # for processes): the caller receives a detached copy.
            return pools[shard].sampler_for(key)
        if op == "items":
            return {
                shard: list(pool.items()) for shard, pool in pools.items()
            }
        if op == "advance":
            (now,) = args
            for pool in pools.values():
                pool.advance_time(now)
            return None
        if op == "hottest":
            (top,) = args
            return _hottest_partial(pools.values(), top)
        if op == "frequent":
            now, clocked = args
            pooled, total_weight = _frequent_partial(pools.values(), now, clocked)
            return dict(pooled), total_weight
        if op == "moments":
            (order,) = args
            return _moment_partial(pools.values(), order)
        if op == "get_state":
            return {shard: pool.state_dict() for shard, pool in pools.items()}
        if op == "set_state":
            (states,) = args
            for shard, pool_state in states.items():
                pools[shard].load_state_dict(pool_state)
            return None  # generations are fetched by the "generations" op
        if op == "checkpoint":
            path, plan = args
            from .checkpoint import write_shard_segment  # lazy: import cycle

            return {
                shard: write_shard_segment(path, shard, pool, plan.get(shard))
                for shard, pool in pools.items()
            }
        if op == "qbatch":
            # One batched-query round: this worker's per-key ops (shipped
            # only to the shard owner) plus the aggregate ops (broadcast to
            # every worker; the coordinator merges the partials).  Per-key
            # runtime failures are encoded per slot, never poisoning the
            # rest of the batch.
            perkey, aggregates, now, frequent_clocked = args
            key_results: List[Tuple[int, Tuple[Any, ...]]] = []
            for slot, kind, shard, key in perkey:
                try:
                    if kind == "contains":
                        value = key in pools[shard]
                    else:  # "sample"
                        value = _advance_and_sample(pools[shard], key, now, self.clocked)
                except Exception as error:
                    key_results.append((slot, _query_error(error)))
                else:
                    key_results.append((slot, ("ok", value)))
            agg_results: List[Tuple[int, Any]] = []
            for entry in aggregates:
                slot, kind = entry[0], entry[1]
                if kind == "hottest":
                    partial: Any = _hottest_partial(pools.values(), entry[2])
                elif kind == "frequent":
                    pooled, weight = _frequent_partial(
                        pools.values(), now, frequent_clocked
                    )
                    partial = (dict(pooled), weight)
                elif kind == "moments":
                    partial = _moment_partial(pools.values(), entry[2])
                else:  # "stats"
                    partial = self._execute("stats")
                agg_results.append((slot, partial))
            return key_results, agg_results
        raise ExecutorError(f"unknown worker operation {op!r}")


def _process_worker_main(config: Dict[str, Any], inbox: Any, replies: Any) -> None:
    """Entry point of one shard-worker process.

    Builds this worker's pools from the engine recipe (same constructor, same
    seed — so a process-resident pool is bit-identical to the pool a serial
    engine would have built) and serves the message loop until shutdown, a
    torn pipe, or coordinator death.  The worker inherits the coordinator's
    logging config (shipped as a plain dict) and, when the coordinator's
    registry is enabled, keeps its own :class:`repro.obs.MetricsRegistry`
    that the coordinator fetches and merges via the ``metrics`` op.
    """
    apply_logging_config(config.get("log"))
    logger = logging.getLogger("repro.engine.worker")
    registry = MetricsRegistry() if config.get("obs") else NULL_REGISTRY
    spec = SamplerSpec.from_dict(config["spec"])
    observer_factory = OccurrenceCounter if config["track_occurrences"] else None
    pools = {
        shard: KeyedSamplerPool(
            spec,
            seed=config["seed"],
            max_keys=config["max_keys_per_shard"],
            idle_ttl=config["idle_ttl"],
            observer_factory=observer_factory,
            registry=registry,
        )
        for shard in config["shard_indexes"]
    }
    loop = _ShardWorkerLoop(pools, spec, registry=registry)
    ring = config.get("shm_ring")
    if ring is not None:
        loop.shm_reader = ShmRingReader(*ring)
    logger.info(
        "shard worker online: pid=%s shards=%s transport=%s",
        os.getpid(),
        list(config["shard_indexes"]),
        "shm" if ring is not None else "queue",
    )
    try:
        loop.run(
            inbox,
            replies,
            poll_interval=_WORKER_POLL,
            parent_pid=config["parent_pid"],
        )
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - torn pipes
        pass
    finally:
        if loop.shm_reader is not None:
            loop.shm_reader.close()
        logger.info("shard worker exiting: pid=%s", os.getpid())


def _reap_processes(processes: List[Any]) -> None:
    """Terminate (then kill) any still-running worker processes.  Installed
    as a ``weakref.finalize`` callback so an engine dropped without
    ``close()`` still leaves no orphans behind."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        if process.is_alive():
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - terminate() sufficed so far
                process.kill()


def _cleanup_fleet(processes: List[Any], rings: List[ShmRingWriter]) -> None:
    """GC-finalizer cleanup: reap the workers, then unlink their payload
    rings (in that order — a live worker may still hold its mapping)."""
    _reap_processes(processes)
    for ring in rings:
        ring.close()


class _WorkerBackedEngine(ShardedEngine):
    """Coordinator machinery shared by the thread and process executors.

    Owns the public-surface lock, the record validation / clock-stamping /
    partitioning half of ``ingest`` (identical for both transports), and the
    flush-before-every-query discipline.  Subclasses supply the transport:
    :meth:`_dispatch`, :meth:`_barrier`, :meth:`_raise_failure` and
    :meth:`close`.
    """

    def __init__(
        self,
        spec: SamplerSpec,
        *,
        workers: Optional[int] = None,
        queue_depth: int = 8,
        max_batch: int = 4096,
        shards: int = 4,
        seed: int = 0,
        max_keys_per_shard: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        track_occurrences: bool = False,
        registry: Optional[Any] = None,
        query_cache: Optional[QueryCache] = None,
    ) -> None:
        super().__init__(
            spec,
            shards=shards,
            seed=seed,
            max_keys_per_shard=max_keys_per_shard,
            idle_ttl=idle_ttl,
            track_occurrences=track_occurrences,
            registry=registry,
            query_cache=query_cache,
        )
        if workers is None:
            workers = min(self.shards, os.cpu_count() or 1)
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        if queue_depth <= 0:
            raise ConfigurationError("queue_depth must be positive")
        if max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        self._workers = int(min(workers, self.shards))
        self._queue_depth = int(queue_depth)
        self._max_batch = int(max_batch)
        self._closed = False
        # Executor-stage instruments (no-ops on the null registry).  The
        # process engine rebinds dispatch/backpressure onto its transport
        # registry so transport_report() can read them even when disabled.
        self._m_dispatched_batches = self._obs.counter("executor.dispatched.batches")
        self._m_dispatched_records = self._obs.counter("executor.dispatched.records")
        self._m_backpressure_seconds = self._obs.counter("executor.backpressure.seconds")
        # Caller lock: serialises the public surface (ingest/flush/queries)
        # across application threads.  RLock because queries call flush().
        self._api_lock = threading.RLock()
        #: Shard indexes owned by each worker (``shard % workers`` routing).
        self._shard_sets: List[Tuple[int, ...]] = [
            tuple(
                shard for shard in range(self.shards) if shard % self._workers == index
            )
            for index in range(self._workers)
        ]

    # -- worker fleet --------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    def _worker_of(self, shard: int) -> int:
        return shard % self._workers

    def _check_alive(self) -> None:
        if self._closed:
            raise ExecutorError("engine is closed")

    def _dispatch(self, shard: int, batch: List[Tuple[Any, Any, Optional[float]]]) -> None:
        raise NotImplementedError

    def _barrier(self) -> None:
        raise NotImplementedError

    def _raise_failure(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- ingest --------------------------------------------------------------

    def ingest(self, records: Iterable[Any]) -> int:
        """Validate, clock-stamp and dispatch a batch to the shard workers.

        Same record and clock contract as :meth:`ShardedEngine.ingest`; on a
        mid-batch error the validated prefix is dispatched (and will be
        applied) before the error propagates.  Returns the number of records
        dispatched — call :meth:`flush` (or any query) for a barrier.
        """
        with self._api_lock:
            self._check_alive()
            self._raise_failure()
            clocked = self._spec.is_timestamp
            now = self._now
            count = 0
            max_batch = self._max_batch
            shard_count = self.shards
            route = stable_key_hash
            # NOTE: the inlined record-unpack + clock-stamp block below
            # mirrors ShardedEngine._ingest_grouped (engine.py) — both
            # inline it because a shared helper costs a function call per
            # record on the hottest loop.  Change one, change the other.
            # Per-batch shard memo (bounded: cleared once it outgrows a
            # dispatch window) so hot keys hash once, not once per record.
            shard_memo: Dict[Any, int] = {}
            buffers: Dict[int, List[Tuple[Any, Any, Optional[float]]]] = {}
            # Chunk instrumentation mirroring the serial path: every dispatch
            # window is one partitioned chunk, timed from the previous
            # dispatch (grouping + routing + handoff).
            instrumented = self._obs.enabled
            chunk_started = time.perf_counter() if instrumented else 0.0
            try:
                for record in records:
                    if isinstance(record, tuple):
                        width = len(record)
                        if width == 3:
                            key, value, timestamp = record
                        elif width == 2:
                            key, value = record
                            timestamp = None
                        else:
                            raise ConfigurationError(
                                f"keyed records must have 2 or 3 fields, got {width}: {record!r}"
                            )
                    else:
                        key, value, timestamp = _unpack_record(record)
                    if clocked:
                        if type(timestamp) is float and timestamp >= now:
                            now = timestamp
                        else:
                            timestamp = _stamp_timestamp(timestamp, now)
                            now = timestamp
                    shard = shard_memo.get(key, -1)
                    if shard < 0:
                        if len(shard_memo) >= 65536:
                            shard_memo.clear()
                        shard = shard_memo[key] = route(key, salt=_ROUTE_SALT) % shard_count
                    buffer = buffers.get(shard)
                    if buffer is None:
                        buffer = buffers[shard] = []
                    buffer.append((key, value, timestamp))
                    count += 1
                    if len(buffer) >= max_batch:
                        del buffers[shard]
                        self._dispatch(shard, buffer)
                        if instrumented:
                            dispatched_at = time.perf_counter()
                            self._m_chunks_partitioned.inc()
                            self._m_chunk_seconds.observe(dispatched_at - chunk_started)
                            chunk_started = dispatched_at
            finally:
                self._now = now
                for shard, buffer in buffers.items():
                    self._dispatch(shard, buffer)
                    if instrumented:
                        dispatched_at = time.perf_counter()
                        self._m_chunks_partitioned.inc()
                        self._m_chunk_seconds.observe(dispatched_at - chunk_started)
                        chunk_started = dispatched_at
            if self._obs.enabled:
                self._m_ingest_batches.inc()
                self._m_ingest_records.inc(count)
            return count

    def flush(self) -> None:
        """Block until every dispatched record has been applied, then
        re-raise any worker failure.  The consistency barrier for queries."""
        with self._api_lock:
            self._barrier()
            self._raise_failure()

    def __enter__(self) -> "_WorkerBackedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- queries (all barrier first; thread-transport defaults) --------------
    #
    # These defaults serve the thread executor: after the barrier the pools
    # are quiescent and local, so the serial implementations apply verbatim.
    # ProcessEngine overrides every one of them with request/reply versions.

    def advance_time(self, now: float) -> None:
        with self._api_lock:
            self.flush()
            super().advance_time(now)

    def sampler_for(self, key: Any) -> WindowSampler:
        with self._api_lock:
            self.flush()
            return super().sampler_for(key)

    def __contains__(self, key: Any) -> bool:
        with self._api_lock:
            self.flush()
            return super().__contains__(key)

    def sample(self, key: Any) -> List[StreamElement]:
        with self._api_lock:
            self.flush()
            return super().sample(key)

    @property
    def key_count(self) -> int:
        with self._api_lock:
            self.flush()
            return super().key_count

    @property
    def total_arrivals(self) -> int:
        with self._api_lock:
            self.flush()
            return super().total_arrivals

    @property
    def evictions(self) -> int:
        with self._api_lock:
            self.flush()
            return super().evictions

    def keys(self) -> List[Any]:
        with self._api_lock:
            self.flush()
            return super().keys()

    def items(self) -> Iterator[Tuple[Any, WindowSampler]]:
        # Materialised under the lock: a lazy generator would walk the pools'
        # dicts after the lock is released, racing concurrent ingest.
        with self._api_lock:
            self.flush()
            return iter(list(super().items()))

    def memory_words(self) -> int:
        with self._api_lock:
            self.flush()
            return super().memory_words()

    def stats(self) -> Dict[str, Any]:
        with self._api_lock:
            return super().stats()  # the base flushes first

    def metrics_snapshot(self) -> Dict[str, Any]:
        with self._api_lock:
            return super().metrics_snapshot()

    def merged_frequent_items(
        self, threshold: float, *, top: Optional[int] = None
    ) -> List[Tuple[Any, float]]:
        with self._api_lock:
            # The base implementation flushes before touching pools.
            return super().merged_frequent_items(threshold, top=top)

    def hottest_keys(self, top: int = 10) -> List[Tuple[Any, int]]:
        with self._api_lock:
            return super().hottest_keys(top)  # the base flushes first

    def per_key_moments(self, order: float) -> Dict[Any, float]:
        with self._api_lock:
            return super().per_key_moments(order)

    def query_batch(self, ops: Iterable[Any]) -> List[Tuple[Any, ...]]:
        with self._api_lock:
            return super().query_batch(ops)  # the base flushes first

    # -- checkpointing -------------------------------------------------------

    @contextlib.contextmanager
    def _checkpoint_guard(self):
        # The whole save happens inside the API lock: producers queue behind
        # it, and the flush guarantees the pools are fully applied and still.
        with self._api_lock:
            try:
                self.flush()
            except ExecutorError as error:
                # To its caller a save that cannot happen is a checkpoint
                # failure, whichever executor the fleet runs on — same
                # translation as ProcessEngine's guard.
                raise CheckpointError(
                    f"cannot checkpoint this fleet: {error}"
                ) from error
            yield

    def state_dict(self) -> Dict[str, Any]:
        with self._api_lock:
            self.flush()
            return super().state_dict()

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        with self._api_lock:
            self.flush()
            super().load_state_dict(state)

    def _segment_generations(self) -> List[int]:
        with self._api_lock:
            self.flush()
            return super()._segment_generations()


class ParallelEngine(_WorkerBackedEngine):
    """A :class:`ShardedEngine` whose shards are driven by worker threads.

    Parameters
    ----------
    workers:
        Worker-thread count (default: ``min(shards, cpu_count)``).  Each
        worker owns the shards congruent to its index modulo ``workers``.
    queue_depth:
        Maximum in-flight sub-batches per shard before ``ingest`` blocks
        (backpressure toward the producer).
    max_batch:
        Records per dispatched sub-batch; one large ``ingest`` call streams
        through the queues in ``max_batch``-sized pieces per shard.

    All remaining parameters are inherited from :class:`ShardedEngine`.

    A note on speed: on CPython with the GIL, pure-Python sampler updates do
    not run concurrently, so thread workers mainly buy ingest/query
    pipelining.  :class:`ProcessEngine` runs the identical dataflow on worker
    *processes* and does scale across cores.
    """

    def __init__(
        self,
        spec: SamplerSpec,
        *,
        workers: Optional[int] = None,
        queue_depth: int = 8,
        max_batch: int = 4096,
        shards: int = 4,
        seed: int = 0,
        max_keys_per_shard: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        track_occurrences: bool = False,
        registry: Optional[Any] = None,
        query_cache: Optional[QueryCache] = None,
    ) -> None:
        super().__init__(
            spec,
            workers=workers,
            queue_depth=queue_depth,
            max_batch=max_batch,
            shards=shards,
            seed=seed,
            max_keys_per_shard=max_keys_per_shard,
            idle_ttl=idle_ttl,
            track_occurrences=track_occurrences,
            registry=registry,
            query_cache=query_cache,
        )
        # One failure box shared by every loop: any worker failure poisons
        # the whole fleet (arrivals may have been lost).
        self._failures = _FailureBox()
        # Drain barrier state: number of dispatched-but-unapplied sub-batches.
        self._drain = threading.Condition()
        self._pending = 0
        self._obs.register_callback("executor.inflight.batches", lambda: self._pending)
        # Backpressure: per-shard cap on in-flight sub-batches.
        self._shard_slots = [
            threading.BoundedSemaphore(self._queue_depth) for _ in range(self.shards)
        ]
        # One FIFO per worker; a shard's sub-batches all land in its owner's
        # queue, preserving per-shard (hence per-key) order.
        self._inboxes: List["queue.Queue"] = [queue.Queue() for _ in range(self._workers)]
        self._obs.register_callback(
            "executor.queue.depth", lambda: sum(inbox.qsize() for inbox in self._inboxes)
        )
        self._loops = [
            _ShardWorkerLoop(
                {shard: self._pools[shard] for shard in self._shard_sets[index]},
                self._spec,
                failures=self._failures,
                on_applied=self._on_applied,
                registry=self._obs,
            )
            for index in range(self._workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._loops[index].run,
                args=(self._inboxes[index], None),
                name=f"swsample-shard-worker-{index}",
                daemon=True,
            )
            for index in range(self._workers)
        ]
        for thread in self._threads:
            thread.start()

    def _on_applied(self, shard: int) -> None:
        self._shard_slots[shard].release()
        with self._drain:
            self._pending -= 1
            if self._pending == 0:
                self._drain.notify_all()

    def _dispatch(self, shard: int, batch: List[Tuple[Any, Any, Optional[float]]]) -> None:
        slot = self._shard_slots[shard]
        if self._obs.enabled:
            # Only a *blocked* acquire pays for timestamps: the uncontended
            # fast path stays a single semaphore op, metrics on or off.
            if not slot.acquire(blocking=False):
                stalled = time.perf_counter()
                slot.acquire()
                self._m_backpressure_seconds.inc(time.perf_counter() - stalled)
            self._m_dispatched_batches.inc()
            self._m_dispatched_records.inc(len(batch))
        else:
            slot.acquire()  # blocks: per-shard backpressure
        with self._drain:
            self._pending += 1
        self._inboxes[self._worker_of(shard)].put(("apply", shard, batch))

    def _barrier(self) -> None:
        with self._drain:
            self._drain.wait_for(lambda: self._pending == 0)

    def _raise_failure(self) -> None:
        # A worker failure is sticky: sub-batches queued behind the failing
        # one are skipped, so the fleet may have lost arrivals — the engine
        # refuses all further work rather than serving from suspect state.
        error = self._failures.error
        if error is not None:
            raise WorkerFailure(
                f"a shard worker failed while applying records: {error!r}"
            ) from error

    def close(self) -> None:
        """Drain outstanding work and stop the worker threads (idempotent).

        A closed engine still answers queries — its fleet state is final and
        lives in this process — but refuses further ``ingest``.
        """
        with self._api_lock:
            if self._closed:
                return
            try:
                self._barrier()
            finally:
                self._closed = True
                for inbox in self._inboxes:
                    inbox.put(("shutdown",))
                for thread in self._threads:
                    thread.join()
            self._raise_failure()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelEngine(workers={self._workers}, shards={self.shards}, "
            f"spec={self._spec.describe()!r})"
        )


class ProcessEngine(_WorkerBackedEngine):
    """A :class:`ShardedEngine` whose shards are *resident in worker
    processes* — the executor that clears the GIL ceiling.

    Each worker process builds its shards' pools from the engine recipe
    (spec, seed, eviction policy) at spawn, applies the sub-batches shipped
    to it over a bounded multiprocessing queue, and answers queries through
    a request/reply protocol: ``sample``/aggregate requests are computed
    *inside* the owning worker and only the results travel back, so the
    pools are never pickled on the hot path.  Because shard ownership,
    per-shard ordering and per-key seeding are identical to the serial and
    thread engines, process ingest is bit-identical to both.

    Keys and values must be picklable (they cross a process boundary); the
    same is already required of anything checkpointable.

    Differences from :class:`ParallelEngine`:

    * backpressure is per *worker* (a bounded inbox of ``queue_depth``
      messages) rather than per shard;
    * ``sampler_for`` returns a **detached copy** of the key's sampler (the
      live object stays in its worker);
    * a *closed* engine cannot answer queries — its state lived in the
      worker processes; query or ``state_dict()``/checkpoint before
      ``close()``;
    * a dead worker process (crash, OOM kill, SIGKILL) surfaces as a sticky
      :class:`~repro.exceptions.WorkerFailure` at the next ingest, flush or
      query instead of a hang.

    ``mp_context`` selects the multiprocessing start method (``"fork"``,
    ``"spawn"``, ``"forkserver"``; default: the platform default).

    ``transport`` selects how record sub-batches cross the process boundary:
    ``"columnar"`` (the default) struct-packs each sub-batch into one
    compact buffer (:mod:`repro.engine.transport`) so the queue pickles a
    single ``bytes`` object instead of thousands of small tuples;
    ``"shm"`` additionally maps that buffer into a per-worker
    ``multiprocessing.shared_memory`` ring so the queue carries only a tiny
    descriptor — eliminating the feeder-thread pickle and pipe copy, the
    dominant dispatch cost of the columnar transport (payloads larger than
    the ring, sized by ``shm_ring_bytes``, fall back to the queue; on
    interpreters without ``multiprocessing.shared_memory`` the whole engine
    silently downgrades to ``"columnar"`` — check ``transport_report()`` for
    the effective transport); ``"pickle"`` ships the raw tuple list (the
    pre-columnar wire form, kept for comparison and as an escape hatch).
    Results are bit-identical whichever transport carries the records;
    :meth:`transport_report` breaks the cost down per stage (encode /
    dispatch / decode / apply).
    """

    def __init__(
        self,
        spec: SamplerSpec,
        *,
        workers: Optional[int] = None,
        queue_depth: int = 8,
        max_batch: int = 4096,
        mp_context: Optional[str] = None,
        transport: str = "columnar",
        shm_ring_bytes: int = 1 << 20,
        shards: int = 4,
        seed: int = 0,
        max_keys_per_shard: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        track_occurrences: bool = False,
        registry: Optional[Any] = None,
        query_cache: Optional[QueryCache] = None,
        supervise: bool = False,
        wal_dir: Optional[str] = None,
        wal_fsync: str = "batch",
        restart_policy: Optional[RestartPolicy] = None,
    ) -> None:
        super().__init__(
            spec,
            workers=workers,
            queue_depth=queue_depth,
            max_batch=max_batch,
            shards=shards,
            seed=seed,
            max_keys_per_shard=max_keys_per_shard,
            idle_ttl=idle_ttl,
            track_occurrences=track_occurrences,
            registry=registry,
            query_cache=query_cache,
        )
        if transport not in ("columnar", "pickle", "shm"):
            raise ConfigurationError(
                f"transport must be 'columnar', 'shm' or 'pickle', got {transport!r}"
            )
        if shm_ring_bytes <= 0:
            raise ConfigurationError("shm_ring_bytes must be positive")
        if supervise and wal_dir is None:
            raise ConfigurationError(
                "supervise=True requires wal_dir: recovery restores from the"
                " last checkpoint and replays the write-ahead journal tail"
            )
        context = multiprocessing.get_context(mp_context)
        self._mp_context = context
        self._requested_transport = transport
        if transport == "shm" and not HAS_SHARED_MEMORY:
            # Documented fallback: same results, one more copy per sub-batch.
            transport = "columnar"
        self._transport = transport
        self._shm_ring_bytes = int(shm_ring_bytes)
        self._rings: List[ShmRingWriter] = []
        self._failure: Optional[str] = None
        self._request_counter = 0
        self._unbarriered = False
        self._stats_cache: Optional[Tuple[int, int, int, int, int, int]] = None
        # Coordinator-side memo of the per-shard generation tuple: the
        # query cache reads generations before and after every consult, so
        # without a memo each cached query would pay an extra broadcast.
        # Invalidated by every mutating send (same rule as _stats_cache).
        self._generations_cache: Optional[List[int]] = None
        # Coordinator-side transport accounting lives in a registry so
        # transport_report() and metrics_snapshot() read the same numbers.
        # transport_report() must work on uninstrumented engines too, so a
        # disabled engine gets a private always-real registry for these.
        self._tobs = self._obs if self._obs.enabled else MetricsRegistry()
        self._m_encode_seconds = self._tobs.counter("transport.encode.seconds")
        self._m_encoded_bytes = self._tobs.counter("transport.encoded.bytes")
        self._m_dispatch_seconds = self._tobs.counter("transport.dispatch.seconds")
        self._m_ring_fallbacks = self._tobs.counter("transport.ring.fallbacks")
        self._m_dispatched_batches = self._tobs.counter("executor.dispatched.batches")
        self._m_dispatched_records = self._tobs.counter("executor.dispatched.records")
        self._m_backpressure_seconds = self._tobs.counter("executor.backpressure.seconds")
        self._obs.register_callback("executor.queue.depth", self._queue_depth)
        # Supervision state.  `_recover_cond` guards `_recovering` (worker
        # indexes mid-recovery) and the per-worker `_pending` park buffers;
        # everything else is only touched under the API lock or by the
        # single supervisor thread.
        self._supervise = bool(supervise)
        self._restart_policy = restart_policy or RestartPolicy()
        self._wal: Optional[WriteAheadLog] = (
            WriteAheadLog(wal_dir, fsync=wal_fsync, registry=self._obs)
            if wal_dir is not None
            else None
        )
        self._recover_cond = threading.Condition()
        self._recovering: Set[int] = set()
        self._restart_counts: List[int] = [0] * self._workers
        self._total_restarts = 0
        self._pending: List[List[Tuple[int, bytes]]] = [
            [] for _ in range(self._workers)
        ]
        self._last_checkpoint_path: Optional[str] = None
        self._supervisor_wake = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._m_restarts = self._obs.counter("supervisor.restarts")
        self._obs.register_callback(
            "fleet.workers.recovering", lambda: len(self._recovering)
        )
        config = {
            "spec": spec.to_dict(),
            "seed": self._seed,
            "max_keys_per_shard": self._max_keys_per_shard,
            "idle_ttl": self._idle_ttl,
            "track_occurrences": self._track_occurrences,
            "parent_pid": os.getpid(),
            # Workers mirror the coordinator's observability settings: a
            # real per-process registry when metrics are on, and the same
            # logging level/format on their own stderr.
            "obs": self._obs.enabled,
            "log": logging_config(),
        }
        self._worker_config = config
        self._inboxes = []
        self._replies = []
        self._processes = []
        try:
            for index in range(self._workers):
                inbox, replies, ring, process = self._spawn_worker(index)
                self._inboxes.append(inbox)
                self._replies.append(replies)
                self._processes.append(process)
                if ring is not None:
                    self._rings.append(ring)
        except BaseException:
            _reap_processes(self._processes)
            for ring in self._rings:
                ring.close()
            raise
        # Belt and braces against orphans and leaked shm segments: clean up
        # the fleet even if the engine is garbage-collected (or the
        # interpreter exits) without a close() call.
        self._finalizer = weakref.finalize(
            self, _cleanup_fleet, list(self._processes), list(self._rings)
        )
        if self._supervise:
            self._supervisor = threading.Thread(
                target=self._supervisor_loop,
                name="swsample-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def _spawn_worker(
        self, index: int
    ) -> Tuple[Any, Any, Optional[ShmRingWriter], Any]:
        """Build one worker's channels (plus an shm ring under that
        transport) and start its process; the caller wires the pieces into
        the fleet lists (initial spawn) or swaps them in (recovery)."""
        context = self._mp_context
        inbox = context.Queue(maxsize=self._queue_depth)
        replies = context.Queue()
        worker_config = {
            **self._worker_config,
            "shard_indexes": self._shard_sets[index],
        }
        ring: Optional[ShmRingWriter] = None
        if self._transport == "shm":
            ring = ShmRingWriter(context, self._shm_ring_bytes)
            worker_config["shm_ring"] = ring.worker_config()
        process = context.Process(
            target=_process_worker_main,
            args=(worker_config, inbox, replies),
            name=f"swsample-shard-worker-{index}",
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            if ring is not None:
                ring.close()
            raise
        return inbox, replies, ring, process

    def _create_pools(self) -> List[KeyedSamplerPool]:
        # The shards live in the worker processes; the coordinator keeps
        # none.  Any base-class code path that would touch local pools must
        # have been overridden — `pools` below makes a miss fail loudly.
        return []

    @property
    def pools(self) -> Tuple[KeyedSamplerPool, ...]:
        raise ExecutorError(
            "a ProcessEngine's shards are resident in its worker processes;"
            " use the query/aggregate/state_dict surface instead of raw pools"
        )

    # -- transport -----------------------------------------------------------

    def _next_rid(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _note_failure(self, text: str) -> None:
        if self._failure is None:
            self._failure = text
            # Wake anything parked on recovery state (parked ingest, the
            # checkpoint drain wait): the fleet just went sticky-failed.
            with self._recover_cond:
                self._recover_cond.notify_all()

    def _raise_failure(self) -> None:
        if self._failure is not None:
            raise WorkerFailure(
                f"a shard worker failed; the fleet may have lost arrivals:"
                f" {self._failure}"
            )

    def _raise_recovering(self, indexes: Iterable[int]) -> None:
        """Raise the retryable degraded-mode error for these workers."""
        chosen = sorted(set(indexes))
        shards = tuple(
            sorted(
                shard for index in chosen for shard in self._shard_sets[index]
            )
        )
        attempt = max(self._restart_counts[index] for index in chosen) + 1
        retry_after = self._restart_policy.delay(attempt) + 1.0
        raise ShardRecovering(
            f"worker(s) {', '.join(map(str, chosen))} are being restarted;"
            f" shards {list(shards)} are mid-recovery — retry shortly",
            shards=shards,
            retry_after=retry_after,
        )

    def _ensure_alive(self, index: int) -> None:
        self._raise_failure()
        if index in self._recovering:
            self._raise_recovering((index,))
        process = self._processes[index]
        if not process.is_alive():
            if self._supervise and not self._closed:
                # Kick the supervisor (it also polls) and report the
                # condition as retryable: recovery is about to begin.
                self._supervisor_wake.set()
                self._raise_recovering((index,))
            self._note_failure(
                f"worker process {index} (pid {process.pid}) died"
                f" with exit code {process.exitcode}"
            )
            self._raise_failure()

    def _queue_depth(self) -> int:
        """Messages currently sitting in worker inboxes (callback gauge).
        Best effort: ``qsize`` is unimplemented on some platforms and the
        queues may already be closed when a late snapshot fires."""
        total = 0
        for inbox in self._inboxes:
            try:
                total += inbox.qsize()
            except (NotImplementedError, OSError, ValueError):
                pass
        return total

    #: Ops that cannot change any fleet total.  Everything else ("apply",
    #: "applyc", "advance", "set_state", and the lazy-clock-advancing
    #: "sample"/"frequent") invalidates the cached stats.
    _NONMUTATING_OPS = frozenset(
        {"barrier", "stats", "keys", "generations", "contains", "sampler",
         "items", "hottest", "moments", "get_state", "checkpoint", "perf",
         "metrics"}
    )

    def _send(self, index: int, message: Tuple[Any, ...]) -> None:
        if index in self._recovering:
            # Defence in depth: every caller checks first (dispatch parks,
            # queries raise, barriers skip), but nothing may interleave with
            # a recovery drain on the fresh worker's queue.
            self._raise_recovering((index,))
        if message[0] not in self._NONMUTATING_OPS:
            self._stats_cache = None
            self._generations_cache = None
        stalled: Optional[float] = None
        while True:
            try:
                self._inboxes[index].put(message, timeout=_POLL_INTERVAL)
                if stalled is not None:
                    self._m_backpressure_seconds.inc(time.perf_counter() - stalled)
                return
            except queue.Full:
                if stalled is None:
                    # Backdate to the start of the first timed-out put: the
                    # stall began when the queue first refused the message.
                    stalled = time.perf_counter() - _POLL_INTERVAL
                self._ensure_alive(index)  # raises once the worker is gone
            except (ValueError, OSError):
                # The channel was torn down (worker death noticed elsewhere,
                # or a recovery replaced the queues under a racing caller).
                self._ensure_alive(index)
                raise ExecutorError(f"channel to worker {index} is closed")

    def _receive(self, index: int, rid: int) -> Tuple[Any, ...]:
        while True:
            try:
                reply = self._replies[index].get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                self._ensure_alive(index)
                continue
            except (ValueError, OSError):
                self._ensure_alive(index)
                raise ExecutorError(f"channel to worker {index} is closed")
            if reply[1] != rid:
                # Stale reply from an exchange interrupted by a failure;
                # everything after a failure raises anyway, so just drop it.
                continue
            return reply

    def _request(self, index: int, op: str, *args: Any) -> Any:
        rid = self._next_rid()
        self._send(index, (op, rid) + args)
        reply = self._receive(index, rid)
        if reply[0] == "error":
            raise reply[2]
        return reply[2]

    def _broadcast(self, op: str, *args: Any) -> List[Any]:
        """Fan one request out to every worker; collect replies in worker
        order.  Workers compute concurrently — the sends all complete before
        the first receive blocks."""
        rid = self._next_rid()
        for index in range(self._workers):
            self._send(index, (op, rid) + args)
        results: List[Any] = []
        errors: List[BaseException] = []
        for index in range(self._workers):
            reply = self._receive(index, rid)
            if reply[0] == "error":
                errors.append(reply[2])
            else:
                results.append(reply[2])
        if errors:
            raise errors[0]
        return results

    def _merged(self, op: str, *args: Any) -> Dict[int, Any]:
        """Broadcast an op whose replies are per-shard dicts; merge them."""
        merged: Dict[int, Any] = {}
        for result in self._broadcast(op, *args):
            merged.update(result)
        return merged

    # -- dataflow ------------------------------------------------------------

    def _dispatch(self, shard: int, batch: List[Tuple[Any, Any, Optional[float]]]) -> None:
        perf = time.perf_counter
        transport = self._transport
        payload: Optional[bytes] = None
        message: Optional[Tuple[Any, ...]] = None
        if transport == "pickle":
            message = ("apply", shard, batch)
            if self._wal is not None:
                # The journal always holds the columnar wire form, whatever
                # the live transport: replay goes through the exact codec.
                payload = encode_batch(batch)
        else:
            started = perf()
            payload = encode_batch(batch)
            self._m_encode_seconds.inc(perf() - started)
            self._m_encoded_bytes.inc(len(payload))
            if transport != "shm":
                message = ("applyc", shard, payload)
        self._m_dispatched_batches.inc()
        self._m_dispatched_records.inc(len(batch))
        worker = self._worker_of(shard)
        if self._supervise and self._park_dispatch(worker, shard, payload):
            self._unbarriered = True
            return
        # Journal-before-send: once appended, the sub-batch survives worker
        # death — the supervisor's tail read is serialised behind this
        # ingest's API lock, so it replays exactly the journaled prefix.
        if self._wal is not None:
            self._wal.append(shard, payload, records=len(batch))
        # The dispatch stage covers the whole hand-off: for shm that is the
        # ring write (and any ring-backpressure stall) plus the descriptor
        # put, keeping the stage comparable across transports.
        started = perf()
        try:
            if message is None:
                message = self._ring_message(worker, shard, payload)
            self._send(worker, message)
        except ShardRecovering:
            # The worker died under our feet, after the journal append:
            # abandon the send — the record is in the tail the supervisor
            # replays, so delivering it here too would double-apply.
            pass
        finally:
            self._m_dispatch_seconds.inc(perf() - started)
        self._unbarriered = True

    def _ring_message(
        self, worker: int, shard: int, payload: bytes
    ) -> Tuple[Any, ...]:
        """Place ``payload`` in the worker's ring and build its descriptor
        message; payloads too large for the ring fall back to the queue."""
        ring = self._rings[worker]
        if not ring.fits(len(payload)):
            self._m_ring_fallbacks.inc()
            return ("applyc", shard, payload)
        waited = 0.0
        stalled = 0.0
        try:
            while True:
                slot = ring.offer(payload)
                if slot is not None:
                    return ("applym", shard, slot[0], len(payload), slot[1])
                # Ring full: the worker is behind — byte-level backpressure.
                time.sleep(0.001)
                waited += 0.001
                stalled += 0.001
                if waited >= _POLL_INTERVAL:
                    self._ensure_alive(worker)  # raises once the worker is gone
                    waited = 0.0
        finally:
            if stalled:
                self._m_backpressure_seconds.inc(stalled)

    def transport_report(self) -> Dict[str, Any]:
        """Cumulative per-stage transport cost of this fleet's ingest path.

        Returns a dict with the coordinator-side stages (``encode_seconds``
        — columnar packing; ``dispatch_seconds`` — time spent handing
        messages to the workers, which includes ring writes and any
        backpressure stalls) and the worker-side stages summed over the
        fleet (``decode_seconds``, ``apply_seconds``), plus
        batch/record/byte counters.  ``workers`` breaks the worker-side
        stages down per worker (in worker order, each entry carrying
        ``worker``/``decode_seconds``/``apply_seconds``/``batches``/
        ``records``), so a straggler hiding inside a healthy fleet-wide sum
        is visible directly.  ``transport`` is the *effective* transport
        (``"shm"`` downgrades to ``"columnar"`` where
        ``multiprocessing.shared_memory`` is unavailable;
        ``requested_transport`` preserves what the caller asked for);
        ``ring_fallbacks`` counts shm payloads that exceeded the ring and
        travelled through the queue instead.  ``encoded_bytes`` is 0 under
        the ``"pickle"`` transport.  ``kernel`` is the *resolved*
        batched-ingest kernel running in the workers (``"auto"`` already
        resolved per host) and ``cascade_compiled`` reports whether the
        ``repro.core._cascade`` merge-cascade module is the mypyc-compiled
        extension — together they say which apply-path implementation
        produced ``apply_seconds``.

        All of these numbers live and die with the engine instance: they
        are not checkpointed, and ``close()`` discards them — in particular
        ``ring_fallbacks`` resets to 0 on every fresh engine, so a restart
        after heavy fallback traffic starts the count over.
        """
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            decode_seconds = 0.0
            apply_seconds = 0.0
            workers: List[Dict[str, Any]] = []
            for index, partial in enumerate(self._broadcast("perf")):
                decode_seconds += partial["decode_seconds"]
                apply_seconds += partial["apply_seconds"]
                workers.append({"worker": index, **partial})
            return {
                "transport": self._transport,
                "requested_transport": self._requested_transport,
                "kernel": self._kernel,
                "cascade_compiled": _CASCADE_COMPILED,
                "batches": self._m_dispatched_batches.value,
                "records": self._m_dispatched_records.value,
                "encoded_bytes": self._m_encoded_bytes.value,
                "encode_seconds": self._m_encode_seconds.value,
                "dispatch_seconds": self._m_dispatch_seconds.value,
                "decode_seconds": decode_seconds,
                "apply_seconds": apply_seconds,
                "ring_fallbacks": self._m_ring_fallbacks.value,
                "workers": workers,
            }

    def _barrier(self) -> None:
        if self._failure is not None or not self._unbarriered:
            return  # sticky failures re-raise in flush(); nothing in flight
        # Recovering workers are skipped: their parked/journaled work drains
        # through the supervisor, and the fleet stays unbarriered until then
        # so the first post-recovery flush barriers the drained records.
        targets = [
            index
            for index in range(self._workers)
            if index not in self._recovering
        ]
        rid = self._next_rid()
        for index in targets:
            self._send(index, ("barrier", rid))
        for index in targets:
            reply = self._receive(index, rid)
            if reply[2] is not None:
                self._note_failure(
                    f"a shard worker failed while applying records: {reply[2]}"
                )
        self._unbarriered = bool(self._recovering)

    def close(self) -> None:
        """Drain outstanding work and reap the worker processes (idempotent).

        Unlike the thread engine, a closed :class:`ProcessEngine` cannot
        answer queries — its shard state lived in the workers.  Checkpoint
        (or ``state_dict()``) before closing if the state matters.
        """
        with self._api_lock:
            if self._closed:
                return
            try:
                if self._failure is None:
                    try:
                        self._barrier()
                    except ShardRecovering:
                        pass  # recovering worker: reap it without draining
            finally:
                self._closed = True
                with self._recover_cond:
                    self._recover_cond.notify_all()
                self._stop_supervisor()
                self._shutdown_fleet()
                if self._wal is not None:
                    self._wal.close()
            self._raise_failure()

    def _stop_supervisor(self) -> None:
        supervisor = self._supervisor
        if supervisor is None:
            return
        self._supervisor_wake.set()
        if supervisor is not threading.current_thread():
            supervisor.join(timeout=_JOIN_TIMEOUT)
        self._supervisor = None

    def _shutdown_fleet(self) -> None:
        for inbox in self._inboxes:
            try:
                inbox.put(("shutdown",), timeout=_POLL_INTERVAL)
            except (queue.Full, ValueError, OSError):
                pass  # dead or wedged worker: escalate to terminate below
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
        _reap_processes(self._processes)
        for ring in self._rings:
            ring.close()  # unlink after the workers are gone
        self._finalizer.detach()  # fleet reaped; nothing left for GC to do
        for channel in self._inboxes + self._replies:
            channel.close()
            # The queue feeder thread would otherwise block interpreter exit
            # if a dead worker left pipe buffers full.
            channel.cancel_join_thread()

    # -- supervision (self-healing worker restarts) ---------------------------

    def _supervisor_loop(self) -> None:
        """Daemon loop: notice dead workers and recover them in place.

        API threads that trip over a corpse first set ``_supervisor_wake``
        so detection is immediate under traffic; the poll is only the
        ceiling for an otherwise idle fleet.
        """
        while True:
            self._supervisor_wake.wait(timeout=_SUPERVISOR_POLL)
            self._supervisor_wake.clear()
            if self._closed or self._failure is not None:
                return
            for index in range(self._workers):
                if self._closed or self._failure is not None:
                    return
                if index in self._recovering:
                    continue
                if not self._processes[index].is_alive():
                    self._recover_worker(index)

    def _recover_worker(self, index: int) -> None:
        """Restart one dead worker within the restart budget; on success the
        fleet is healthy again, on exhaustion it goes sticky-failed."""
        with span("recovery", registry=self._obs):
            last_error: Optional[BaseException] = None
            while not self._closed and self._failure is None:
                self._restart_counts[index] += 1
                attempt = self._restart_counts[index]
                if attempt > self._restart_policy.max_restarts:
                    self._give_up(
                        index,
                        f"restart budget exhausted after"
                        f" {self._restart_policy.max_restarts} attempt(s)"
                        f" (last error: {last_error})",
                    )
                    return
                self._m_restarts.inc()
                self._total_restarts += 1
                delay = self._restart_policy.delay(attempt)
                if delay:
                    time.sleep(delay)
                try:
                    self._restart_and_replay(index)
                except _RecoveryAborted:
                    return
                except Exception as error:
                    last_error = error
                    logger.warning(
                        "restart attempt %d for worker %d failed: %s",
                        attempt,
                        index,
                        error,
                    )
                    continue
                logger.info("worker %d recovered on attempt %d", index, attempt)
                return

    def _lock_api_for_supervisor(self) -> None:
        """Take the API lock from the supervisor thread, bailing out if the
        engine closes or goes sticky-failed while waiting."""
        while not self._api_lock.acquire(timeout=_POLL_INTERVAL):
            if self._closed or self._failure is not None:
                raise _RecoveryAborted
        if self._closed or self._failure is not None:
            self._api_lock.release()
            raise _RecoveryAborted

    def _restart_and_replay(self, index: int) -> None:
        """One restart attempt: mark, restore from checkpoint, replay the
        journal tail, swap the fresh worker in, drain parked dispatches.

        Exactly-once reasoning: the mark-and-read-tail step holds the API
        lock, so every dispatch either journaled *before* the tail was read
        (its queued copy dies with the old worker and the tail replays it)
        or observes ``recovering`` afterwards and parks.  Parked entries are
        journaled one by one as the drain sends them, keeping the journal in
        true dispatch order for any *subsequent* crash.
        """
        from .checkpoint import forget_saved_segments

        # Phase 1 — mark the worker recovering and freeze its journal tail,
        # serialised against the whole public surface.
        self._lock_api_for_supervisor()
        try:
            with self._recover_cond:
                self._recovering.add(index)
            self._stats_cache = None
            self._generations_cache = None
            shard_set = self._shard_sets[index]
            tails = {shard: self._wal.tail(shard) for shard in shard_set}
            checkpoint_path = self._last_checkpoint_path
            # The rebuilt pools restart generation counting, so a later
            # incremental save must rewrite these shards' segments rather
            # than reuse entries memoised from the dead worker's lifetime.
            forget_saved_segments(self, shard_set)
        finally:
            self._api_lock.release()
        # Phase 2 — reap the corpse and its channels (outside the API lock:
        # ingest and queries keep flowing to the healthy workers).
        _reap_processes([self._processes[index]])
        for channel in (self._inboxes[index], self._replies[index]):
            try:
                channel.close()
                channel.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover - already torn
                pass
        if self._transport == "shm":
            try:
                self._rings[index].close()
            except (OSError, ValueError):  # pragma: no cover - already torn
                pass
        # Phase 3 — spawn the replacement and rebuild its shard state.
        inbox, replies, ring, process = self._spawn_worker(index)
        swapped = False
        try:
            states: Dict[int, Any] = {}
            if checkpoint_path is not None:
                states = self._segment_states(checkpoint_path, shard_set)
            if states:
                self._recovery_put(process, inbox, ("set_state", -1, states))
                reply = self._recovery_get(process, replies, -1)
                if reply[0] == "error":
                    raise reply[2]
            # Phase 4 — replay the journal tail in original dispatch order.
            for shard in shard_set:
                for payload in tails.get(shard, ()):
                    self._recovery_put(process, inbox, ("applyc", shard, payload))
            self._recovery_put(process, inbox, ("barrier", -2))
            reply = self._recovery_get(process, replies, -2)
            if reply[2] is not None:
                raise ExecutorError(
                    f"worker {index} failed while replaying its journal:"
                    f" {reply[2]}"
                )
            # Phase 5 — swap the fresh worker into the fleet.
            with self._recover_cond:
                self._processes[index] = process
                self._inboxes[index] = inbox
                self._replies[index] = replies
                if ring is not None:
                    self._rings[index] = ring
                swapped = True
            self._rebuild_finalizer()
        except BaseException:
            if not swapped:
                _reap_processes([process])
                for channel in (inbox, replies):
                    try:
                        channel.close()
                        channel.cancel_join_thread()
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                if ring is not None:
                    ring.close()
            raise
        # Phase 6 — drain parked dispatches, then mark the worker healthy.
        self._drain_pending(index, process, inbox)

    def _segment_states(
        self, path: str, shard_set: Tuple[int, ...]
    ) -> Dict[int, Any]:
        """Load this worker's shard states from the last checkpoint's
        digest-verified segments (coordinator-side; only these shards)."""
        from .checkpoint import load_shard_states

        return load_shard_states(path, shard_set, self.shards)

    def _recovery_put(self, process: Any, inbox: Any, message: Tuple[Any, ...]) -> None:
        while True:
            if self._closed:
                raise _RecoveryAborted
            try:
                inbox.put(message, timeout=_POLL_INTERVAL)
                return
            except queue.Full:
                if not process.is_alive():
                    raise ExecutorError(
                        f"worker process died again during recovery"
                        f" (exit code {process.exitcode})"
                    )

    def _recovery_get(self, process: Any, replies: Any, rid: int) -> Tuple[Any, ...]:
        while True:
            if self._closed:
                raise _RecoveryAborted
            try:
                reply = replies.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                if not process.is_alive():
                    raise ExecutorError(
                        f"worker process died again during recovery"
                        f" (exit code {process.exitcode})"
                    )
                continue
            if reply[1] != rid:
                continue  # residue from an abandoned earlier exchange
            return reply

    def _drain_pending(self, index: int, process: Any, inbox: Any) -> None:
        """Flush the park buffer to the fresh worker, journaling each entry
        as it goes out, then clear the recovering mark."""
        while True:
            with self._recover_cond:
                pending = self._pending[index]
                if not pending:
                    # Degraded-mode reads never cached, but invalidate too:
                    # the recovered worker changed the fleet totals.
                    self._stats_cache = None
                    self._generations_cache = None
                    self._unbarriered = True
                    self._recovering.discard(index)
                    self._restart_counts[index] = 0
                    self._recover_cond.notify_all()
                    return
                shard, payload = pending[0]
                # Journal before popping: if the send below fails, the entry
                # is already in the tail the next attempt replays — and no
                # longer pending.  Exactly once either way.
                self._wal.append(shard, payload)
                pending.pop(0)
                self._recover_cond.notify_all()
            self._recovery_put(process, inbox, ("applyc", shard, payload))

    def _give_up(self, index: int, reason: str) -> None:
        logger.error("giving up on worker %d: %s", index, reason)
        with self._recover_cond:
            self._note_failure(
                f"supervised worker {index} could not be recovered: {reason}"
            )
            self._recovering.discard(index)
            self._pending[index].clear()
            self._recover_cond.notify_all()

    def _rebuild_finalizer(self) -> None:
        """Re-arm the GC finalizer over the post-recovery fleet (the old one
        captured the dead process and its ring)."""
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self, _cleanup_fleet, list(self._processes), list(self._rings)
        )

    def _park_dispatch(self, worker: int, shard: int, payload: bytes) -> bool:
        """Hold a sub-batch for a recovering worker (bounded, blocking).

        Parked entries are journaled by the drain, not here, so the journal
        stays in true dispatch order.  Returns ``False`` when the worker is
        healthy (the caller dispatches normally)."""
        with self._recover_cond:
            while True:
                if self._failure is not None:
                    self._raise_failure()
                if worker not in self._recovering:
                    return False
                if len(self._pending[worker]) < self._queue_depth * _PENDING_DEPTH_FACTOR:
                    self._pending[worker].append((shard, payload))
                    return True
                started = time.perf_counter()
                self._recover_cond.wait(timeout=_POLL_INTERVAL)
                self._m_backpressure_seconds.inc(time.perf_counter() - started)

    def _check_recovering_for(self, shard: int) -> None:
        """Per-key queries: retryable error when this shard's owner is
        mid-recovery (healthy shards keep answering)."""
        if not self._recovering:
            return
        worker = self._worker_of(shard)
        if worker in self._recovering:
            self._raise_recovering((worker,))

    def _check_fleet_ready(self) -> None:
        """Fleet-wide operations need every shard: raise the retryable
        :class:`ShardRecovering` rather than a silently-partial answer."""
        if self._recovering:
            self._raise_recovering(tuple(self._recovering))

    def liveness(self) -> Dict[str, Any]:
        """Lock-free per-worker liveness report (drives ``/healthz``):
        ``degraded`` plus one row per worker with pid / alive / recovering /
        current-incident restart count / owned shards.  Best effort — it
        deliberately does not take the API lock, so a row can be a moment
        stale, but it can never block behind a slow query or a recovery."""
        recovering = set(self._recovering)
        workers: List[Dict[str, Any]] = []
        for index in range(self._workers):
            process = self._processes[index]
            try:
                alive = bool(process.is_alive())
            except (OSError, ValueError):  # pragma: no cover - torn process
                alive = False
            workers.append(
                {
                    "worker": index,
                    "pid": process.pid,
                    "alive": alive,
                    "recovering": index in recovering,
                    "restarts": self._restart_counts[index],
                    "shards": list(self._shard_sets[index]),
                }
            )
        return {
            "degraded": bool(recovering),
            "failed": self._failure is not None,
            "recovering_shards": sorted(
                shard for index in recovering for shard in self._shard_sets[index]
            ),
            "restarts": self._total_restarts,
            "workers": workers,
        }

    def replay_wal(self) -> int:
        """Re-apply every journaled sub-batch left behind by a previous
        coordinator (call after resuming from a checkpoint whose WAL
        directory outlived it).  Returns the number of records re-applied.

        The journal is *not* truncated afterwards — the records are not yet
        covered by a checkpoint; the next committed save truncates it.
        """
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            if self._wal is None:
                return 0
            replayed = 0
            max_ts: Optional[float] = None
            clocked = self._spec.is_timestamp
            for shard, payloads in self._wal.replay():
                if shard >= self.shards:
                    raise ConfigurationError(
                        f"journal names shard {shard} but this engine has"
                        f" {self.shards} shards — the WAL directory belongs"
                        f" to a different engine recipe"
                    )
                worker = self._worker_of(shard)
                for payload in payloads:
                    batch = decode_batch(payload)
                    replayed += len(batch)
                    if clocked and batch:
                        stamp = batch[-1][2]
                        if stamp is not None and (max_ts is None or stamp > max_ts):
                            max_ts = stamp
                    self._send(worker, ("applyc", shard, payload))
                    self._unbarriered = True
            if max_ts is not None and max_ts > self._now:
                self._now = max_ts
            self.flush()
            return replayed

    def discard_wal(self) -> int:
        """Drop any journal left behind by a previous coordinator; returns
        the bytes discarded.

        A fresh (non-resuming) start over an old WAL directory must call
        this: the stale records belong to state this fleet never held, and
        a later recovery would otherwise replay them into the wrong window.
        Resume paths call :meth:`replay_wal` instead and keep the journal.
        """
        with self._api_lock:
            self._check_query()
            if self._wal is None:
                return 0
            stale = self._wal.bytes_on_disk()
            if stale:
                logger.warning(
                    "discarding %d byte(s) of stale WAL in %s (fresh start,"
                    " not resuming)",
                    stale,
                    self._wal.directory,
                )
            self._wal.truncate()
            return stale

    def _checkpoint_committed(self, path: str) -> None:
        # Called by write_checkpoint after the manifest swap: the journal is
        # now fully covered by on-disk segments, so recovery restarts from
        # this checkpoint and the journal resets.
        self._last_checkpoint_path = path
        if self._wal is not None:
            self._wal.truncate()

    def _restored_from(self, path: str) -> None:
        self._last_checkpoint_path = path

    # -- queries (request/reply; workers compute, results travel) ------------

    def _check_query(self) -> None:
        if self._closed:
            raise ExecutorError(
                "engine is closed — a ProcessEngine's shards lived in its"
                " worker processes; query (or checkpoint) before close()"
            )
        self._raise_failure()

    def advance_time(self, now: float) -> None:
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            if now > self._now:
                self._now = now
            self._broadcast("advance", now)

    def sampler_for(self, key: Any) -> WindowSampler:
        """A **detached copy** of the key's sampler (read-only; ``KeyError``
        when absent).  The live sampler stays resident in its worker —
        mutating the copy does not touch fleet state."""
        with self._api_lock:
            self._check_query()
            self.flush()
            shard = self.shard_of(key)
            self._check_recovering_for(shard)
            return self._request(self._worker_of(shard), "sampler", shard, key)

    def __contains__(self, key: Any) -> bool:
        with self._api_lock:
            self._check_query()
            self.flush()
            shard = self.shard_of(key)
            self._check_recovering_for(shard)
            return self._request(self._worker_of(shard), "contains", shard, key)

    def sample(self, key: Any) -> List[StreamElement]:
        with self._api_lock:
            self._check_query()
            self.flush()
            shard = self.shard_of(key)
            self._check_recovering_for(shard)
            return self._cached_query(
                ("sample", key),
                lambda: self._request(
                    self._worker_of(shard), "sample", shard, key, self._now
                ),
            )

    def _stats(self, strict: bool = True) -> Tuple[int, int, int, int, int, int]:
        # One broadcast returns all six fleet totals (keys, ticks, evictions,
        # memory words, LRU evictions, TTL evictions); they are cached until
        # the next mutating message so the common read-them-all pattern
        # (key_count, evictions, memory_words back to back) pays one IPC
        # round trip instead of several.  Strict callers (the scalar
        # properties) refuse to answer from a degraded fleet; ``stats()``
        # passes strict=False and labels the partial totals ``degraded``.
        self._check_query()
        if strict:
            self._check_fleet_ready()
        self.flush()
        if self._stats_cache is not None:
            return self._stats_cache
        recovering = set(self._recovering)
        targets = [
            index for index in range(self._workers) if index not in recovering
        ]
        totals = (0, 0, 0, 0, 0, 0)
        rid = self._next_rid()
        for index in targets:
            self._send(index, ("stats", rid))
        errors: List[BaseException] = []
        for index in targets:
            reply = self._receive(index, rid)
            if reply[0] == "error":
                errors.append(reply[2])
            else:
                totals = tuple(a + b for a, b in zip(totals, reply[2]))
        if errors:
            raise errors[0]
        if not recovering and not self._recovering:
            # Partial (degraded) totals are never cached: the fleet totals
            # jump when the recovered worker rejoins.
            self._stats_cache = totals  # type: ignore[assignment]
        return totals  # type: ignore[return-value]

    def _degraded_stats_fields(self, recovering: List[int]) -> Dict[str, Any]:
        return {
            "degraded": True,
            "workers": {
                "recovering": sorted(recovering),
                "recovering_shards": sorted(
                    shard
                    for index in recovering
                    for shard in self._shard_sets[index]
                ),
                "restarts": self._total_restarts,
            },
        }

    def stats(self) -> Dict[str, Any]:
        """Fleet statistics (same shape as :meth:`ShardedEngine.stats`),
        computed from one ``stats`` broadcast over the resident pools.

        While a worker restart is in flight the totals cover only the
        healthy workers and the payload carries ``degraded: True`` plus a
        ``workers`` block naming the recovering workers/shards — a health
        answer, never a silent partial masquerading as the whole fleet.
        """
        with self._api_lock:
            recovering = sorted(self._recovering)
            keys, arrivals, evictions, memory, lru, ttl = self._stats(strict=False)
            payload: Dict[str, Any] = {
                "shards": self._shards,
                "kernel": self._kernel,
                "keys": keys,
                "arrivals": arrivals,
                "memory_words": memory,
                "evictions": {"total": evictions, "lru": lru, "ttl": ttl},
                "degraded": False,
            }
            if recovering:
                payload.update(self._degraded_stats_fields(recovering))
            return payload

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One fleet-wide metrics snapshot: the coordinator's registry
        merged with every worker process's resident registry (fetched over
        the ``metrics`` op).

        Deliberately lenient about worker death: a SIGKILL'd worker cannot
        report, so its metrics are simply missing from the merge, and the
        gauges ``fleet.workers`` / ``fleet.workers.reporting`` /
        ``fleet.workers.lost`` record how complete the snapshot is.  Unlike
        queries, this never raises :class:`WorkerFailure` — a partial
        snapshot of a dying fleet is exactly when metrics matter most.
        Raises :class:`ExecutorError` only on a closed engine.
        """
        with self._api_lock:
            if self._closed:
                raise ExecutorError(
                    "engine is closed — a ProcessEngine's shards lived in its"
                    " worker processes; snapshot metrics before close()"
                )
            try:
                self._barrier()
            except (WorkerFailure, ShardRecovering):
                pass  # dead or healing fleet: merge whatever still answers
            snapshots = [self._obs.snapshot()]
            reporting = 0
            for index in range(self._workers):
                if index in self._recovering:
                    continue  # mid-recovery: nothing to ask yet
                try:
                    snapshots.append(self._request(index, "metrics"))
                    reporting += 1
                except (WorkerFailure, ExecutorError):
                    continue
            merged = merge_snapshots(snapshots)
            if self._obs.enabled:
                merged["gauges"]["fleet.workers"] = self._workers
                merged["gauges"]["fleet.workers.reporting"] = reporting
                merged["gauges"]["fleet.workers.lost"] = self._workers - reporting
            return merged

    @property
    def key_count(self) -> int:
        with self._api_lock:
            return self._stats()[0]

    @property
    def total_arrivals(self) -> int:
        with self._api_lock:
            return self._stats()[1]

    @property
    def evictions(self) -> int:
        with self._api_lock:
            return self._stats()[2]

    def memory_words(self) -> int:
        with self._api_lock:
            return self._stats()[3]

    def keys(self) -> List[Any]:
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            by_shard = self._merged("keys")
            result: List[Any] = []
            for shard in range(self._shards):
                result.extend(by_shard.get(shard, []))
            return result

    def items(self) -> Iterator[Tuple[Any, WindowSampler]]:
        """Iterate ``(key, sampler)`` over every live key — the samplers are
        **detached copies** (see :meth:`sampler_for`), yielded in the serial
        engine's shard order."""
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            by_shard = self._merged("items")
            result: List[Tuple[Any, WindowSampler]] = []
            for shard in range(self._shards):
                result.extend(by_shard.get(shard, []))
            return iter(result)

    def hottest_keys(self, top: int = 10) -> List[Tuple[Any, int]]:
        """Bit-identical to the serial engine, ties included: workers rank
        their shards and the coordinator re-ranks the partials under the
        same total order (arrival count, then the stable key tiebreak)."""
        if top <= 0:
            raise ConfigurationError("top must be positive")
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()

            def compute() -> List[Tuple[Any, int]]:
                partials = self._broadcast("hottest", top)
                pairs = (pair for partial in partials for pair in partial)
                return _rank_hottest(pairs, top)

            return self._cached_query(("hottest", int(top)), compute)

    def merged_frequent_items(
        self, threshold: float, *, top: Optional[int] = None
    ) -> List[Tuple[Any, float]]:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must lie strictly between 0 and 1")
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()

            def compute() -> List[Tuple[Any, float]]:
                clocked = self._spec.is_timestamp and self._now != float("-inf")
                pooled: Counter = Counter()
                total_weight = 0.0
                for partial, weight in self._broadcast("frequent", self._now, clocked):
                    for value, mass in partial.items():
                        pooled[value] += mass
                    total_weight += weight
                return _frequent_report(pooled, total_weight, threshold, top)

            return self._cached_query(("frequent", float(threshold), top), compute)

    def per_key_moments(self, order: float) -> Dict[Any, float]:
        self._check_moment_config()
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()

            def compute() -> Dict[Any, float]:
                estimates: Dict[Any, float] = {}
                for partial in self._broadcast("moments", order):
                    estimates.update(partial)
                return estimates

            return self._cached_query(("moments", float(order)), compute)

    def _cached_query(self, cache_key: Tuple[Any, ...], compute: Any) -> Any:
        if self._recovering:
            # Degraded: generations are in flux (and fetching them would
            # need the recovering worker anyway) — compute without memoising.
            return compute()
        return super()._cached_query(cache_key, compute)

    def query_batch(self, ops: Iterable[Any]) -> List[Tuple[Any, ...]]:
        plans = self._query_plans(ops)
        with self._api_lock:
            self._check_query()
            self.flush()
            if self._recovering:
                # Degraded: bypass the result cache (its generation fetch
                # needs every worker); per-op ShardRecovering errors are
                # captured inline below, healthy-shard ops answer normally.
                return self._compute_query_ops(plans)
            return self._query_batch_resolve(plans)

    def _compute_query_ops(
        self, plans: List[Tuple[Any, ...]]
    ) -> List[Tuple[Any, ...]]:
        """One ``qbatch`` round over the fleet: per-key ops ship only to the
        worker owning their shard, aggregate ops ship to every worker, and
        all workers compute concurrently (send-all-then-receive).  Aggregate
        partials merge coordinator-side under the same total orders as the
        scalar paths, so batched results are bit-identical to scalar ones.

        While a worker is mid-recovery the batch degrades per op: per-key
        ops for recovering shards and ranked/merged aggregates (which need
        every shard) capture :class:`ShardRecovering` inline; ``stats``
        answers with healthy-worker totals labelled ``degraded``.
        """
        recovering_set = frozenset(self._recovering)
        recovering = sorted(recovering_set)
        degraded_outcome: Optional[Tuple[Any, ...]] = None
        if recovering:
            shards = tuple(
                sorted(
                    shard
                    for index in recovering
                    for shard in self._shard_sets[index]
                )
            )
            attempt = max(self._restart_counts[index] for index in recovering) + 1
            degraded_outcome = _query_error(
                ShardRecovering(
                    f"shards {list(shards)} are mid-recovery — retry shortly",
                    shards=shards,
                    retry_after=self._restart_policy.delay(attempt) + 1.0,
                )
            )
        outcomes: List[Optional[Tuple[Any, ...]]] = [None] * len(plans)
        perkey_by_worker: Dict[int, List[Tuple[int, str, int, Any]]] = {
            index: [] for index in range(self._workers)
        }
        aggregates: List[Tuple[Any, ...]] = []
        for slot, plan in enumerate(plans):
            kind = plan[0]
            if kind in ("sample", "contains"):
                shard = self.shard_of(plan[1])
                worker = self._worker_of(shard)
                if worker in recovering_set:
                    outcomes[slot] = degraded_outcome
                else:
                    perkey_by_worker[worker].append((slot, kind, shard, plan[1]))
            elif degraded_outcome is not None and kind != "stats":
                # Ranked/merged aggregates need every shard; a partial
                # answer would be silently wrong — degrade to the
                # retryable error instead.
                outcomes[slot] = degraded_outcome
            else:
                aggregates.append((slot,) + plan)
        now = self._now
        frequent_clocked = self._spec.is_timestamp and now != float("-inf")
        targets = [
            index
            for index in range(self._workers)
            if index not in recovering_set
        ]
        rid = self._next_rid()
        for index in targets:
            self._send(
                index,
                (
                    "qbatch",
                    rid,
                    perkey_by_worker[index],
                    aggregates,
                    now,
                    frequent_clocked,
                ),
            )
        partials_by_slot: Dict[int, List[Any]] = {entry[0]: [] for entry in aggregates}
        errors: List[BaseException] = []
        for index in targets:
            reply = self._receive(index, rid)
            if reply[0] == "error":
                errors.append(reply[2])
                continue
            key_results, agg_results = reply[2]
            for slot, outcome in key_results:
                outcomes[slot] = outcome
            for slot, partial in agg_results:
                partials_by_slot[slot].append(partial)
        if errors:
            raise errors[0]
        for entry in aggregates:
            slot, kind = entry[0], entry[1]
            partials = partials_by_slot[slot]
            if kind == "hottest":
                pairs = (pair for partial in partials for pair in partial)
                value: Any = _rank_hottest(pairs, entry[2])
            elif kind == "frequent":
                pooled: Counter = Counter()
                total_weight = 0.0
                for partial, weight in partials:
                    for item, mass in partial.items():
                        pooled[item] += mass
                    total_weight += weight
                value = _frequent_report(pooled, total_weight, entry[2], entry[3])
            elif kind == "moments":
                value = {}
                for partial in partials:
                    value.update(partial)
            else:  # "stats"
                totals = (0, 0, 0, 0, 0, 0)
                for partial in partials:
                    totals = tuple(a + b for a, b in zip(totals, partial))
                keys, arrivals, evictions, memory, lru, ttl = totals
                value = {
                    "shards": self._shards,
                    "kernel": self._kernel,
                    "keys": keys,
                    "arrivals": arrivals,
                    "memory_words": memory,
                    "evictions": {"total": evictions, "lru": lru, "ttl": ttl},
                    "degraded": False,
                }
                if recovering:
                    value.update(self._degraded_stats_fields(recovering))
            outcomes[slot] = ("ok", value)
        return outcomes  # type: ignore[return-value]

    # -- state & checkpointing -----------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            by_shard = self._merged("get_state")
            return {
                **self._state_header(),
                "pools": [by_shard[shard] for shard in range(self._shards)],
            }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            self._validate_state(state)
            # Send-all-then-receive (the _broadcast pattern, with per-worker
            # payloads): every worker deserialises and loads its shards
            # concurrently, so restore latency is the slowest worker's, not
            # the sum.
            rid = self._next_rid()
            for index in range(self._workers):
                self._send(
                    index,
                    (
                        "set_state",
                        rid,
                        {shard: state["pools"][shard] for shard in self._shard_sets[index]},
                    ),
                )
            errors: List[BaseException] = []
            for index in range(self._workers):
                reply = self._receive(index, rid)
                if reply[0] == "error":
                    errors.append(reply[2])
            if errors:
                raise errors[0]
            self._now = float(state["now"])

    def _segment_generations(self) -> List[int]:
        with self._api_lock:
            self._check_query()
            self._check_fleet_ready()
            self.flush()
            if self._generations_cache is None:
                by_shard = self._merged("generations")
                self._generations_cache = [
                    by_shard[shard] for shard in range(self._shards)
                ]
            return list(self._generations_cache)

    @contextlib.contextmanager
    def _checkpoint_guard(self):
        with self._api_lock:
            if self._recovering:
                # A snapshot now would capture a stale segment for the
                # recovering shards (their live state is mid-rebuild).  Wait
                # for the drain; if it does not finish in time, fail loudly
                # naming the shards rather than write a wrong checkpoint.
                with self._recover_cond:
                    self._recover_cond.wait_for(
                        lambda: not self._recovering
                        or self._failure is not None
                        or self._closed,
                        timeout=_CHECKPOINT_DRAIN_TIMEOUT,
                    )
                if self._recovering:
                    shards = sorted(
                        shard
                        for index in self._recovering
                        for shard in self._shard_sets[index]
                    )
                    raise CheckpointError(
                        f"cannot checkpoint while shards {shards} are"
                        f" mid-recovery: the snapshot would capture stale"
                        f" segments — wait for recovery to drain and retry"
                    )
            try:
                self._check_query()
                self.flush()
            except ExecutorError as error:
                # A checkpoint attempt against a dead or closed fleet is a
                # checkpoint failure to its caller, whatever the root cause.
                raise CheckpointError(f"cannot checkpoint this fleet: {error}") from error
            yield

    def _checkpoint_segments(self, path: str, plan: Dict[int, Any]) -> List[Dict[str, Any]]:
        # Workers persist their own resident shards — the pickling happens
        # in parallel across processes and only manifest entries come back.
        rid = self._next_rid()
        try:
            for index in range(self._workers):
                worker_plan = {
                    shard: plan[shard]
                    for shard in self._shard_sets[index]
                    if shard in plan
                }
                self._send(index, ("checkpoint", rid, path, worker_plan))
            by_shard: Dict[int, Dict[str, Any]] = {}
            for index in range(self._workers):
                reply = self._receive(index, rid)
                if reply[0] == "error":
                    raise reply[2]
                by_shard.update(reply[2])
        except CheckpointError:
            raise
        except (ExecutorError, OSError) as error:
            raise CheckpointError(
                f"checkpoint failed: a worker could not write its shard"
                f" segments ({error})"
            ) from error
        return [by_shard[shard] for shard in range(self._shards)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessEngine(workers={self._workers}, shards={self.shards}, "
            f"spec={self._spec.describe()!r})"
        )
