"""Compact columnar encoding for cross-process record batches.

:class:`~repro.engine.executor.ProcessEngine` ships every sub-batch of
``(key, value, timestamp)`` records through a multiprocessing queue.  The
queue pickles whatever it is given, and pickling a list of thousands of
*small tuples of small objects* pays per-object framing on both sides — the
dominant transport cost for the engine's typical records (short keys, small
payloads).  This module replaces that with a columnar batch encoding: the
batch is split into its three columns, each column is type-sniffed once and
struct-packed as a single homogeneous buffer, and the queue then pickles one
``bytes`` object (a memcpy) instead of N tuples.

Wire format (version ``SWT1``, little-endian)::

    b"SWT1" | uint32 record_count | keys column | values column | timestamps column

    column  := tag (1 byte) | payload
    tag "b"/"h"/"i"/"q" : record_count signed ints of width 1/2/4/8 bytes
                          (the narrowest width containing the column's range)
    tag "d"             : record_count float64s
    tag "u"             : utf-8 strings — uint32 per-string *character*
                          lengths, then uint32 blob byte-length, then the
                          joined utf-8 blob
    tag "n"             : every entry is None (no payload)
    tag "p"             : pickle fallback — uint32 byte-length, then the
                          pickled list (heterogeneous or exotic columns)

The encoding is exact: ``decode_batch(encode_batch(batch)) == batch`` for
every picklable batch (``bool`` deliberately falls through to the pickle tag
so it round-trips as ``bool``, not ``int``).  Bit-identity of engine results
therefore does not depend on which transport carried the records.

Shared-memory ring (transport ``"shm"``)
----------------------------------------
Even as a single buffer, a columnar payload shipped through a
``multiprocessing.Queue`` is pickled by the coordinator's feeder thread,
squeezed through a pipe, and reassembled worker-side — two copies plus pipe
syscalls per sub-batch.  :class:`ShmRingWriter`/:class:`ShmRingReader`
eliminate that: the coordinator memcpys the payload into a per-worker
``multiprocessing.shared_memory`` ring and the queue carries only a tiny
``(start, length, counter)`` descriptor; the worker copies the payload
straight out of the mapping.  Space is reclaimed through a monotonic
consumed-bytes counter the worker advances after each read, which doubles as
byte-level backpressure: a producer that outruns the worker waits for ring
space.  Payloads larger than the ring fall back to the plain queue, so the
ring bounds memory without limiting record size.

Accounting
----------
This module stays measurement-free on purpose: encode/decode run on the
hot path and the codec has no stable home for counters (it is called from
both coordinator and workers).  Transport-stage accounting — encode time,
encoded bytes, dispatch time, ring fallbacks — lives in the coordinator's
metrics registry, maintained by :class:`~repro.engine.executor.ProcessEngine`
and exposed via ``transport_report()`` / ``metrics_snapshot()`` (see
:mod:`repro.obs`).
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..exceptions import TransportError

try:  # pragma: no cover - import guard exercised via HAS_SHARED_MEMORY
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None  # type: ignore[assignment]

#: Whether ``multiprocessing.shared_memory`` is importable here.  When it is
#: not (stripped-down or very old interpreters), ``ProcessEngine`` silently
#: downgrades ``transport="shm"`` to ``"columnar"`` — same results, one more
#: copy — and reports the effective transport in ``transport_report()``.
HAS_SHARED_MEMORY = _shared_memory is not None

__all__ = [
    "encode_batch",
    "decode_batch",
    "decode_columns",
    "MAGIC",
    "HAS_SHARED_MEMORY",
    "ShmRingWriter",
    "ShmRingReader",
]

#: Format magic; bump the digit on incompatible changes.
MAGIC = b"SWT1"

#: Signed-integer tags, narrowest first, with their inclusive ranges.
_INT_WIDTHS = (
    (b"b", "b", -(1 << 7), (1 << 7) - 1),
    (b"h", "h", -(1 << 15), (1 << 15) - 1),
    (b"i", "i", -(1 << 31), (1 << 31) - 1),
    (b"q", "q", -(1 << 63), (1 << 63) - 1),
)
_INT_SIZE = {"b": 1, "h": 2, "i": 4, "q": 8}


def _pickle_column(column: Sequence[Any]) -> bytes:
    payload = pickle.dumps(list(column), protocol=pickle.HIGHEST_PROTOCOL)
    return b"p" + struct.pack("<I", len(payload)) + payload


def _encode_column(column: Sequence[Any], count: int) -> bytes:
    kinds = set(map(type, column))
    if kinds == {int}:
        low = min(column)
        high = max(column)
        for tag, fmt, fmt_low, fmt_high in _INT_WIDTHS:
            if fmt_low <= low and high <= fmt_high:
                return tag + struct.pack(f"<{count}{fmt}", *column)
        return _pickle_column(column)  # bigints beyond int64
    if kinds == {float}:
        return b"d" + struct.pack(f"<{count}d", *column)
    if kinds == {str}:
        try:
            blob = "".join(column).encode("utf-8")
            lengths = struct.pack(f"<{count}I", *map(len, column))
            header = struct.pack("<I", len(blob))
        except (UnicodeEncodeError, struct.error):
            return _pickle_column(column)  # lone surrogates / absurd lengths
        return b"u" + lengths + header + blob
    if kinds == {type(None)}:
        return b"n"
    return _pickle_column(column)


def encode_batch(batch: Sequence[Tuple[Any, Any, Optional[float]]]) -> bytes:
    """Encode a batch of ``(key, value, timestamp)`` records into one buffer."""
    count = len(batch)
    if count == 0:
        return MAGIC + struct.pack("<I", 0)
    keys, values, stamps = zip(*batch)
    return b"".join(
        (
            MAGIC,
            struct.pack("<I", count),
            _encode_column(keys, count),
            _encode_column(values, count),
            _encode_column(stamps, count),
        )
    )


#: Buffers the codec accepts.  ``memoryview`` matters: the shm ring reader
#: hands decode a zero-copy view over the shared mapping (see
#: :meth:`ShmRingReader.view`), so every slice below must go through
#: ``bytes()`` / ``struct.unpack_from`` rather than assuming ``bytes`` methods.
Buffer = Union[bytes, bytearray, memoryview]

#: Decode-side failures worth translating into :class:`TransportError`:
#: truncated fixed-width columns (``struct.error``), corrupt utf-8 blobs,
#: and torn pickle payloads.
_DECODE_ERRORS = (struct.error, UnicodeDecodeError, pickle.UnpicklingError, EOFError)


def _decode_column(buffer: Buffer, offset: int, count: int) -> Tuple[Sequence[Any], int]:
    fmt = chr(buffer[offset])
    offset += 1
    if fmt in _INT_SIZE:
        size = _INT_SIZE[fmt] * count
        column = struct.unpack_from(f"<{count}{fmt}", buffer, offset)
        return column, offset + size
    if fmt == "d":
        column = struct.unpack_from(f"<{count}d", buffer, offset)
        return column, offset + 8 * count
    if fmt == "u":
        lengths = struct.unpack_from(f"<{count}I", buffer, offset)
        offset += 4 * count
        (blob_length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        blob = buffer[offset : offset + blob_length]
        if len(blob) != blob_length:
            raise TransportError(
                f"truncated utf-8 column blob at offset {offset}:"
                f" need {blob_length} bytes, have {len(blob)}"
            )
        text = (blob if isinstance(blob, bytes) else bytes(blob)).decode("utf-8")
        column_list: List[str] = []
        cursor = 0
        for length in lengths:
            column_list.append(text[cursor : cursor + length])
            cursor += length
        return column_list, offset + blob_length
    if fmt == "n":
        return (None,) * count, offset
    if fmt == "p":
        (payload_length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        return pickle.loads(buffer[offset : offset + payload_length]), offset + payload_length
    raise TransportError(f"unknown transport column tag {fmt!r} at offset {offset - 1}")


def decode_columns(
    buffer: Buffer,
    column_decoder: Any = None,
) -> Tuple[Sequence[Any], Sequence[Any], Sequence[Any], int]:
    """Decode one payload into its three raw columns plus the record count.

    The column-major twin of :func:`decode_batch` — used by
    :func:`repro.engine.kernels.decode_batch_arrays` to reach the typed
    columns without paying the ``list(zip(...))`` re-tupling.  Raises
    :class:`~repro.exceptions.TransportError` (a ``ValueError``) on a bad
    magic or a malformed/truncated buffer, with byte-offset context.

    ``column_decoder`` swaps the per-column decoder (same signature as the
    default ``_decode_column``); the kernels module passes a numpy-aware one
    that materialises numeric columns as zero-copy typed arrays while
    reusing this function's header parsing and error context.
    """
    decode_one = _decode_column if column_decoder is None else column_decoder
    if len(buffer) < 8:
        raise TransportError(
            f"truncated transport header: {len(buffer)} bytes (need >= 8)"
        )
    if bytes(buffer[:4]) != MAGIC:
        raise TransportError(
            f"bad transport magic {bytes(buffer[:4])!r} (expected {MAGIC!r})"
        )
    (count,) = struct.unpack_from("<I", buffer, 4)
    if count == 0:
        return (), (), (), 0
    offset = 8
    columns: List[Sequence[Any]] = []
    for name in ("keys", "values", "timestamps"):
        started = offset
        try:
            column, offset = decode_one(buffer, offset, count)
        except IndexError:
            raise TransportError(
                f"truncated {name} column: tag byte missing at offset {started}"
                f" (buffer is {len(buffer)} bytes)"
            ) from None
        except _DECODE_ERRORS as error:
            raise TransportError(
                f"malformed {name} column at offset {started}"
                f" (buffer is {len(buffer)} bytes, {count} records): {error}"
            ) from error
        columns.append(column)
    return columns[0], columns[1], columns[2], count


def decode_batch(buffer: Buffer) -> List[Tuple[Any, Any, Optional[float]]]:
    """Decode :func:`encode_batch` output back into record tuples.

    Accepts any bytes-like buffer — in particular the zero-copy
    ``memoryview`` handed out by :meth:`ShmRingReader.view`.  Malformed or
    truncated payloads raise :class:`~repro.exceptions.TransportError`.
    """
    keys, values, stamps, count = decode_columns(buffer)
    if count == 0:
        return []
    return list(zip(keys, values, stamps))


# -- shared-memory ring -------------------------------------------------------
#
# One writer (the coordinator) and one reader (the owning worker) share a
# fixed-size mapping.  Positions are *monotonic byte counters* reduced modulo
# the capacity on access: the writer tracks `reserved` locally, the reader
# publishes `consumed` through a locked shared value after each read.  A
# payload is stored contiguously — when it would straddle the physical end of
# the mapping the writer skips (pads) to the start — so readers never stitch.
# Because descriptors travel through the worker's FIFO inbox, payloads are
# consumed in write order and one counter per side fully describes the ring.


class ShmRingWriter:
    """Coordinator half of one worker's payload ring."""

    def __init__(self, context: Any, capacity: int) -> None:
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._shm = _shared_memory.SharedMemory(create=True, size=capacity)
        self._capacity = int(capacity)
        self._consumed = context.Value("Q", 0)
        self._reserved = 0
        self._closed = False

    @property
    def capacity(self) -> int:
        return self._capacity

    def worker_config(self) -> Tuple[str, Any, int]:
        """What the worker process needs to build its :class:`ShmRingReader`:
        the segment name, the shared consumed counter, and the capacity."""
        return (self._shm.name, self._consumed, self._capacity)

    def fits(self, length: int) -> bool:
        """Whether a payload of this size can ever be carried by the ring."""
        return length <= self._capacity

    def offer(self, payload: bytes) -> Optional[Tuple[int, int]]:
        """Try to write ``payload`` into the ring.

        Returns ``(start, end_counter)`` for the descriptor message, or
        ``None`` when the ring currently lacks space (the caller should check
        worker liveness and retry).  Callers must pre-check :meth:`fits`.
        """
        length = len(payload)
        reserved = self._reserved
        start = reserved % self._capacity
        if start + length > self._capacity:
            # Straddles the physical end: pad to the start of the mapping.
            reserved += self._capacity - start
            start = 0
        end = reserved + length
        with self._consumed.get_lock():
            consumed = self._consumed.value
        if end - consumed > self._capacity:
            return None
        self._shm.buf[start : start + length] = payload
        self._reserved = end
        return start, end

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


class ShmRingReader:
    """Worker half of one payload ring (attached by segment name)."""

    def __init__(self, name: str, consumed: Any, capacity: int) -> None:
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        try:
            self._shm = _shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Pre-3.13 interpreters lack ``track=False`` and unconditionally
            # register attachments with the resource tracker, which would
            # later unlink (or warn about) a segment the coordinator still
            # owns (bpo-39959).  Suppress the registration for the attach.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args: None
            try:
                self._shm = _shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        self._consumed = consumed
        self._capacity = int(capacity)

    def read(self, start: int, length: int) -> bytes:
        """Copy one payload out of the mapping.

        Kept for callers that need the payload to outlive the ring slot;
        the hot decode path uses :meth:`view` instead and skips the copy.
        """
        return bytes(self._shm.buf[start : start + length])

    def view(self, start: int, length: int) -> "memoryview":
        """A zero-copy ``memoryview`` over one payload in the mapping.

        The view aliases ring memory that the coordinator will reuse once
        :meth:`release` publishes the payload's ``end_counter`` — so decode
        from the view first, release after, and ``release()`` the view
        object itself before :meth:`close` (an exported view blocks the
        mapping's ``close()`` with ``BufferError``).
        """
        return self._shm.buf[start : start + length]

    def release(self, end_counter: int) -> None:
        """Publish that everything up to ``end_counter`` has been consumed.

        Call after the payload bytes are done with: immediately after
        :meth:`read` (the returned bytes are a copy), but only *after
        decode* when working from a zero-copy :meth:`view` — releasing
        earlier would let the coordinator overwrite bytes still being
        parsed."""
        with self._consumed.get_lock():
            self._consumed.value = end_counter

    def close(self) -> None:
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - torn shutdown
            pass
