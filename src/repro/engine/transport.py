"""Compact columnar encoding for cross-process record batches.

:class:`~repro.engine.executor.ProcessEngine` ships every sub-batch of
``(key, value, timestamp)`` records through a multiprocessing queue.  The
queue pickles whatever it is given, and pickling a list of thousands of
*small tuples of small objects* pays per-object framing on both sides — the
dominant transport cost for the engine's typical records (short keys, small
payloads).  This module replaces that with a columnar batch encoding: the
batch is split into its three columns, each column is type-sniffed once and
struct-packed as a single homogeneous buffer, and the queue then pickles one
``bytes`` object (a memcpy) instead of N tuples.

Wire format (version ``SWT1``, little-endian)::

    b"SWT1" | uint32 record_count | keys column | values column | timestamps column

    column  := tag (1 byte) | payload
    tag "b"/"h"/"i"/"q" : record_count signed ints of width 1/2/4/8 bytes
                          (the narrowest width containing the column's range)
    tag "d"             : record_count float64s
    tag "u"             : utf-8 strings — uint32 per-string *character*
                          lengths, then uint32 blob byte-length, then the
                          joined utf-8 blob
    tag "n"             : every entry is None (no payload)
    tag "p"             : pickle fallback — uint32 byte-length, then the
                          pickled list (heterogeneous or exotic columns)

The encoding is exact: ``decode_batch(encode_batch(batch)) == batch`` for
every picklable batch (``bool`` deliberately falls through to the pickle tag
so it round-trips as ``bool``, not ``int``).  Bit-identity of engine results
therefore does not depend on which transport carried the records.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["encode_batch", "decode_batch", "MAGIC"]

#: Format magic; bump the digit on incompatible changes.
MAGIC = b"SWT1"

#: Signed-integer tags, narrowest first, with their inclusive ranges.
_INT_WIDTHS = (
    (b"b", "b", -(1 << 7), (1 << 7) - 1),
    (b"h", "h", -(1 << 15), (1 << 15) - 1),
    (b"i", "i", -(1 << 31), (1 << 31) - 1),
    (b"q", "q", -(1 << 63), (1 << 63) - 1),
)
_INT_SIZE = {"b": 1, "h": 2, "i": 4, "q": 8}


def _pickle_column(column: Sequence[Any]) -> bytes:
    payload = pickle.dumps(list(column), protocol=pickle.HIGHEST_PROTOCOL)
    return b"p" + struct.pack("<I", len(payload)) + payload


def _encode_column(column: Sequence[Any], count: int) -> bytes:
    kinds = set(map(type, column))
    if kinds == {int}:
        low = min(column)
        high = max(column)
        for tag, fmt, fmt_low, fmt_high in _INT_WIDTHS:
            if fmt_low <= low and high <= fmt_high:
                return tag + struct.pack(f"<{count}{fmt}", *column)
        return _pickle_column(column)  # bigints beyond int64
    if kinds == {float}:
        return b"d" + struct.pack(f"<{count}d", *column)
    if kinds == {str}:
        try:
            blob = "".join(column).encode("utf-8")
            lengths = struct.pack(f"<{count}I", *map(len, column))
            header = struct.pack("<I", len(blob))
        except (UnicodeEncodeError, struct.error):
            return _pickle_column(column)  # lone surrogates / absurd lengths
        return b"u" + lengths + header + blob
    if kinds == {type(None)}:
        return b"n"
    return _pickle_column(column)


def encode_batch(batch: Sequence[Tuple[Any, Any, Optional[float]]]) -> bytes:
    """Encode a batch of ``(key, value, timestamp)`` records into one buffer."""
    count = len(batch)
    if count == 0:
        return MAGIC + struct.pack("<I", 0)
    keys, values, stamps = zip(*batch)
    return b"".join(
        (
            MAGIC,
            struct.pack("<I", count),
            _encode_column(keys, count),
            _encode_column(values, count),
            _encode_column(stamps, count),
        )
    )


def _decode_column(buffer: bytes, offset: int, count: int) -> Tuple[Sequence[Any], int]:
    tag = buffer[offset : offset + 1]
    offset += 1
    fmt = tag.decode("ascii")
    if fmt in _INT_SIZE:
        size = _INT_SIZE[fmt] * count
        column = struct.unpack_from(f"<{count}{fmt}", buffer, offset)
        return column, offset + size
    if tag == b"d":
        column = struct.unpack_from(f"<{count}d", buffer, offset)
        return column, offset + 8 * count
    if tag == b"u":
        lengths = struct.unpack_from(f"<{count}I", buffer, offset)
        offset += 4 * count
        (blob_length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        text = buffer[offset : offset + blob_length].decode("utf-8")
        column_list: List[str] = []
        cursor = 0
        for length in lengths:
            column_list.append(text[cursor : cursor + length])
            cursor += length
        return column_list, offset + blob_length
    if tag == b"n":
        return (None,) * count, offset
    if tag == b"p":
        (payload_length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        return pickle.loads(buffer[offset : offset + payload_length]), offset + payload_length
    raise ValueError(f"unknown transport column tag {tag!r}")


def decode_batch(buffer: bytes) -> List[Tuple[Any, Any, Optional[float]]]:
    """Decode :func:`encode_batch` output back into record tuples."""
    if buffer[:4] != MAGIC:
        raise ValueError(f"bad transport magic {buffer[:4]!r} (expected {MAGIC!r})")
    (count,) = struct.unpack_from("<I", buffer, 4)
    if count == 0:
        return []
    offset = 8
    keys, offset = _decode_column(buffer, offset, count)
    values, offset = _decode_column(buffer, offset, count)
    stamps, offset = _decode_column(buffer, offset, count)
    return list(zip(keys, values, stamps))
