"""The sharded keyed engine: batched ingest, per-key queries, aggregates.

:class:`ShardedEngine` hash-partitions the keyspace over N
:class:`~repro.engine.pool.KeyedSamplerPool` shards.  Shard routing uses the
stable hash of :mod:`repro.engine.hashing` with a fixed salt, so a key's
shard is a pure function of ``(key, shard_count)`` — independent of the
engine seed, of ingest order, and of process restarts.

The shard layer exists for scale-out: each shard is an independent ingest
point with its own eviction bookkeeping, so later PRs can pin shards to
threads or processes without touching the per-key machinery.  Within this PR
it already pays for itself by bounding per-shard key-table sizes and by
making eviction sweeps shard-local.

Cross-key aggregates reuse the Section-5 application estimators: merged
frequent items use the sample-and-count heavy-hitter argument (one weighted
pool over every key's window sample), and per-key frequency moments feed the
samplers' :class:`~repro.core.tracking.OccurrenceCounter` statistics through
:func:`repro.applications.ams_estimate_from_counts`.
"""

from __future__ import annotations

import heapq
import time
from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.base import SequenceWindowSampler, WindowSampler
from ..core.serialization import STATE_FORMAT, require_state_fields
from ..core.tracking import OccurrenceCounter
from ..exceptions import (
    ConfigurationError,
    EmptyWindowError,
    InsufficientSampleError,
    SamplingFailureError,
    StreamOrderError,
    WorkerFailure,
)
from ..obs import get_registry
from ..streams.element import StreamElement
from .hashing import stable_key_bytes, stable_key_hash
from .kernels import resolve_kernel
from .pool import KeyedSamplerPool
from .querycache import QueryCache
from .spec import SamplerSpec

__all__ = ["ShardedEngine"]

#: Fixed salt for shard routing (kept distinct from the per-key seed salt so
#: shard placement and sampler randomness are independent hash families).
_ROUTE_SALT = 0x51A2DED

#: Records buffered by the serial ingest path before the per-shard batches
#: are flushed into the pools.  Bounds the transient partitioning memory on
#: arbitrarily long record iterables; pool state is chunk-boundary-invariant
#: (see :meth:`KeyedSamplerPool.extend_batch`), so the value only affects
#: locality, never results.
_INGEST_CHUNK = 32768


def _unpack_record(record: Any) -> Tuple[Any, Any, Optional[float]]:
    """Normalise one keyed record to ``(key, value, timestamp_or_None)``.

    Shared by the serial and parallel ingest paths so both enforce the same
    record contract.  Clock semantics (stamping missing timestamps, the
    global non-decreasing check) stay with the caller.
    """
    if isinstance(record, (str, bytes)):
        # Strings are sized and unpackable, so they would silently shred
        # into per-character records.
        raise ConfigurationError(
            f"keyed records must be (key, value[, timestamp]) tuples, got {record!r}"
        )
    try:
        width = len(record)
    except TypeError:
        raise ConfigurationError(
            f"keyed records must be (key, value[, timestamp]) tuples, got {record!r}"
        ) from None
    if width == 3:
        key, value, timestamp = record
        return key, value, timestamp
    if width == 2:
        key, value = record
        return key, value, None
    raise ConfigurationError(
        f"keyed records must have 2 or 3 fields, got {width}: {record!r}"
    )


#: Per-key sampling failures that must not take down a fleet aggregate:
#: expired windows, strict (allow_partial=False) windows below k, and the
#: probabilistic failures of baseline backends.  The affected key is
#: skipped; every other key still contributes.
_SKIPPABLE_SAMPLE_ERRORS = (EmptyWindowError, InsufficientSampleError, SamplingFailureError)


def _window_size_estimate(
    sampler: WindowSampler, sample_len: int, counter: Optional[Any] = None
) -> int:
    """Best available active-window-size estimate for one sampler.

    Sequence windows know their active size exactly.  The optimal timestamp
    samplers expose a covering-decomposition bound (exact in Lemma 3.5 case
    1, within half the straddler width in case 2).  Baseline timestamp
    samplers have neither, so the pool attaches a per-key
    exponential-histogram counter (DGIM) whose (1 ± ε) estimate stands in;
    the bare sample size remains only as the last-resort fallback for
    counter-less legacy snapshots mid-refill.
    """
    if isinstance(sampler, SequenceWindowSampler):
        return sampler.window_size
    estimate = getattr(sampler, "active_count_estimate", None)
    if estimate is not None:
        return estimate()
    if counter is not None:
        estimated = counter.estimate()
        if estimated > 0:
            return estimated
    return sample_len


def _advance_and_sample(
    pool: KeyedSamplerPool, key: Any, now: float, clocked: bool
) -> List[StreamElement]:
    """One key's window sample, with the engine-clock lazy advance applied.

    Shared by the serial query path and the shard-worker loop, so an
    engine-hosted sampler sees exactly the same advance/mark-dirty sequence
    whether its pool lives on the caller's thread or in a worker process.
    """
    sampler = pool.sampler_for(key)
    if clocked and now != float("-inf"):
        # The lazy advance mutates checkpointable state (clock fields,
        # expiry) only when this sampler's clock actually moves.
        changed = getattr(sampler, "now", None) != now
        sampler.advance_time(now)
        counter = pool.counter_for(key)
        if counter is not None:
            if counter.now != now:
                changed = True
            counter.advance_time(now)
        if changed:
            pool.mark_dirty()
    return sampler.sample()


def _tie_break_bytes(value: Any) -> bytes:
    """A deterministic total-order tiebreak for ranked reports.

    Keys engine-routable values through :func:`stable_key_bytes` (the same
    canonical encoding shard routing hashes), and falls back to ``repr`` for
    arbitrary sampled *values* outside that domain — deterministic for any
    value with a content-based repr, which is what makes tied ranks order
    identically whether a report was computed serially or merged from
    worker partials.
    """
    try:
        return stable_key_bytes(value)
    except ConfigurationError:
        return repr(value).encode("utf-8", "backslashreplace")


def _hottest_order(pair: Tuple[Any, int]) -> Tuple[int, bytes]:
    """Selection key for hottest-keys ranking: arrival count, then the
    stable tiebreak — a total order, so top-N of worker-local top-Ns equals
    top-N of the union (keys are shard-partitioned, hence distinct)."""
    return (pair[1], _tie_break_bytes(pair[0]))


def _rank_hottest(pairs: Iterable[Tuple[Any, int]], top: int) -> List[Tuple[Any, int]]:
    """Select and order the ``top`` hottest pairs deterministically:
    hottest first, ties in ascending tiebreak order."""
    result = heapq.nlargest(top, pairs, key=_hottest_order)
    result.sort(key=lambda pair: (-pair[1], _tie_break_bytes(pair[0])))
    return result


def _hottest_partial(
    pools: Iterable[KeyedSamplerPool], top: int
) -> List[Tuple[Any, int]]:
    """The ``top`` hottest keys across ``pools`` (one worker's share)."""
    pairs = (
        (key, sampler.total_arrivals) for pool in pools for key, sampler in pool.items()
    )
    return _rank_hottest(pairs, top)


def _frequent_partial(
    pools: Iterable[KeyedSamplerPool], now: float, clocked: bool
) -> Tuple[Counter, float]:
    """The merged-frequent-items accumulator over ``pools``.

    Returns ``(pooled_mass, total_weight)``; partials from disjoint shard
    sets merge additively, which is what lets worker processes compute their
    share locally and ship only the counters.
    """
    pooled: Counter = Counter()
    total_weight = 0.0
    for pool in pools:
        if clocked:
            pool.advance_time(now)
        for _, sampler, counter in pool.entries():
            try:
                values = sampler.sample_values()
            except _SKIPPABLE_SAMPLE_ERRORS:
                continue
            if not values:
                continue
            weight = _window_size_estimate(sampler, len(values), counter) / len(values)
            for value in values:
                pooled[value] += weight
            total_weight += weight * len(values)
    return pooled, total_weight


def _frequent_report(
    pooled: Counter, total_weight: float, threshold: float, top: Optional[int]
) -> List[Tuple[Any, float]]:
    """Turn a merged-frequent-items accumulator into the sorted report."""
    if total_weight == 0.0:
        return []
    report = [
        (value, mass / total_weight)
        for value, mass in pooled.items()
        if mass / total_weight >= threshold
    ]
    # Most frequent first; tied frequencies order by the stable tiebreak so
    # serial and worker-merged reports are identical (Counter iteration
    # order would otherwise leak shard-partitioning into tie order).
    report.sort(key=lambda item: (-item[1], _tie_break_bytes(item[0])))
    return report if top is None else report[:top]


def _moment_partial(pools: Iterable[KeyedSamplerPool], order: float) -> Dict[Any, float]:
    """Per-key AMS moment estimates over ``pools`` (one worker's share)."""
    from ..applications import ams_estimate_from_counts

    estimates: Dict[Any, float] = {}
    for pool in pools:
        for key, sampler in pool.items():
            try:
                counts = [
                    OccurrenceCounter.count_of(candidate)
                    for candidate in sampler.sample_candidates()
                ]
            except _SKIPPABLE_SAMPLE_ERRORS:
                continue
            window_size = _window_size_estimate(sampler, len(counts))
            if not counts or window_size <= 0:
                continue
            estimates[key] = ams_estimate_from_counts(counts, window_size, order)
    return estimates


def _query_error(error: BaseException) -> Tuple[str, str, str]:
    """The per-op error encoding of :meth:`ShardedEngine.query_batch`:
    ``("error", type_name, message)`` — picklable, JSON-mappable, and
    comparable across executors (unlike exception instances)."""
    return ("error", type(error).__name__, str(error))


def _copy_query_result(value: Any) -> Any:
    """A defensive copy of a cached query result.

    Cached values must not alias what callers receive (a caller sorting a
    hottest-keys list in place would otherwise poison every later hit).
    Query results are lists of immutable rows (samples, reports) or one
    level of dict (moments, stats with its nested eviction split), so a
    shallow copy with one nested-dict level is exact.
    """
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return {
            key: dict(item) if isinstance(item, dict) else item
            for key, item in value.items()
        }
    return value


def _stamp_timestamp(timestamp: Any, now: float) -> float:
    """Apply the global clock contract to one clocked record's timestamp.

    A missing timestamp means "now" (zero before any timestamped record);
    an explicit one must be numeric and globally non-decreasing.  Shared by
    the serial and parallel ingest paths — one contract, one implementation.
    """
    if timestamp is None:
        # "Now" must be the engine's clock, not the key-local sampler's
        # (a fresh key's sampler has seen no time).
        return now if now != float("-inf") else 0.0
    try:
        timestamp = float(timestamp)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"record timestamp must be a number, got {timestamp!r}"
        ) from None
    if timestamp < now:
        raise StreamOrderError(
            f"batch timestamps must be globally non-decreasing: {timestamp} < {now}"
        )
    return timestamp


class ShardedEngine:
    """Thousands of per-key sliding-window samplers behind one ingest API.

    Parameters
    ----------
    spec:
        The per-key sampler recipe (shared by every key).
    shards:
        Number of hash partitions.
    seed:
        Root seed; per-key sampler seeds are derived from it and a stable
        hash of the key, so results are reproducible end to end.
    max_keys_per_shard, idle_ttl:
        Eviction policy, enforced independently by each shard's pool (see
        :class:`~repro.engine.pool.KeyedSamplerPool`).
    track_occurrences:
        Attach an :class:`~repro.core.tracking.OccurrenceCounter` to every
        per-key sampler, enabling :meth:`per_key_moments` /
        :meth:`aggregate_moment` at one extra word per retained candidate.
    registry:
        A :class:`repro.obs.MetricsRegistry` receiving the engine's
        instrumentation (ingest counters, chunk latencies, eviction counts,
        active-key/memory gauges).  Defaults to the process-wide registry
        from :func:`repro.obs.get_registry` — the no-op null registry unless
        :func:`repro.obs.enable` was called.  Instrumentation lives at
        batch/chunk granularity, never per record, and never touches sampler
        randomness: ingest results are bit-identical with metrics on or off.
    query_cache:
        An optional :class:`~repro.engine.querycache.QueryCache` consulted
        by the query surface (``sample``, ``hottest_keys``,
        ``merged_frequent_items``, ``per_key_moments``, ``query_batch``).
        Entries are stamped with the per-shard ``generation`` tuple, so any
        mutation (ingest, eviction, clock advance, restore) invalidates
        exactly the answers it could have changed; cached and uncached
        results are bit-identical.  ``None`` (default) disables caching.
    """

    def __init__(
        self,
        spec: SamplerSpec,
        *,
        shards: int = 4,
        seed: int = 0,
        max_keys_per_shard: Optional[int] = None,
        idle_ttl: Optional[int] = None,
        track_occurrences: bool = False,
        registry: Optional[Any] = None,
        query_cache: Optional[QueryCache] = None,
    ) -> None:
        if shards <= 0:
            raise ConfigurationError("shards must be positive")
        self._spec = spec
        self._shards = int(shards)
        self._seed = int(seed)
        self._max_keys_per_shard = max_keys_per_shard
        self._idle_ttl = idle_ttl
        self._track_occurrences = bool(track_occurrences)
        self._obs = registry if registry is not None else get_registry()
        self._m_ingest_records = self._obs.counter("engine.ingest.records")
        self._m_ingest_batches = self._obs.counter("engine.ingest.batches")
        self._m_chunks_grouped = self._obs.counter("engine.ingest.chunks.grouped")
        self._m_chunks_partitioned = self._obs.counter("engine.ingest.chunks.partitioned")
        self._m_chunk_seconds = self._obs.histogram("engine.ingest.chunk.seconds")
        # The batched-ingest kernel this host will actually run ("auto"
        # resolves here, and kernel="numpy" without numpy fails at engine
        # construction instead of at first ingest).  Exposed through
        # stats()/transport_report() and mirrored as a 0/1 gauge so /metrics
        # shows which kernel produced the apply-path numbers.
        self._kernel = resolve_kernel(spec.kernel)
        self._obs.gauge("engine.kernel.numpy").set(1.0 if self._kernel == "numpy" else 0.0)
        self._query_cache = query_cache
        self._pools = self._create_pools()
        self._now = float("-inf")

    def _create_pools(self) -> List[KeyedSamplerPool]:
        """Build the per-shard pools.  :class:`ProcessEngine` overrides this
        to return no pools at all — its shards are resident in worker
        processes, built there by the same recipe."""
        observer_factory = OccurrenceCounter if self._track_occurrences else None
        return [
            KeyedSamplerPool(
                self._spec,
                seed=self._seed,
                max_keys=self._max_keys_per_shard,
                idle_ttl=self._idle_ttl,
                observer_factory=observer_factory,
                registry=self._obs,
            )
            for _ in range(self._shards)
        ]

    # -- topology ------------------------------------------------------------

    @property
    def spec(self) -> SamplerSpec:
        return self._spec

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def pools(self) -> Tuple[KeyedSamplerPool, ...]:
        """The per-shard pools (read-only view)."""
        return tuple(self._pools)

    @property
    def now(self) -> float:
        """The engine's logical clock: the latest timestamp ingested or
        advanced to.  Only meaningful for timestamp-window specs (stays
        ``-inf`` otherwise — sequence windows have no clock)."""
        return self._now

    def shard_of(self, key: Any) -> int:
        """The shard index that owns ``key`` (stable across processes)."""
        return stable_key_hash(key, salt=_ROUTE_SALT) % self._shards

    def _pool_of(self, key: Any) -> KeyedSamplerPool:
        # Deliberately uncached: a routing memo would silently retain every
        # key ever seen (including evicted ones) outside the memory budget
        # the engine exists to enforce.  One BLAKE2b over a short key costs
        # well under a microsecond.
        return self._pools[stable_key_hash(key, salt=_ROUTE_SALT) % self._shards]

    # -- ingest --------------------------------------------------------------

    def ingest(self, records: Iterable[Any]) -> int:
        """Route a batch of keyed records to their per-key samplers.

        Every record is a :class:`~repro.streams.element.KeyedRecord` or a
        plain ``(key, value)`` / ``(key, value, timestamp)`` tuple.  Returns
        the number of records ingested.

        For timestamp-window specs, timestamps must be **globally**
        non-decreasing across the whole feed — the engine runs one logical
        clock, so every key's window expires against the same "now" (a key
        that goes quiet for ``t0`` has an empty window), and queries may
        safely advance any key's sampler to that clock.  A missing timestamp
        means "now": the record is stamped with the engine's clock (zero
        before any timestamped record).  Sequence-window specs treat
        timestamps as inert metadata and skip the contract.  An out-of-order
        or malformed record raises mid-batch; everything before it has been
        ingested and the clock reflects exactly the ingested prefix.

        Internally the batch is grouped per key in a single pass (hashing
        each distinct key once per chunk, not once per record) and each key's
        run of records is applied through its sampler's batched
        ``process_batch`` path — for pools without an eviction policy the
        result is identical to per-record routing.  Engines with a
        ``max_keys_per_shard``/``idle_ttl`` policy partition per shard
        instead and route through :meth:`KeyedSamplerPool.extend_batch`,
        whose per-record fallback keeps eviction decisions exact.
        """
        if self._max_keys_per_shard is None and self._idle_ttl is None:
            count = self._ingest_grouped(records)
        else:
            count = self._ingest_partitioned(records)
        if self._obs.enabled:
            self._m_ingest_batches.inc()
            self._m_ingest_records.inc(count)
        return count

    def _ingest_grouped(self, records: Iterable[Any]) -> int:
        """The eviction-free hot path: one grouping pass, batched samplers."""
        count = 0
        clocked = self._spec.is_timestamp
        now = self._now
        shard_count = self._shards
        route = stable_key_hash
        # NOTE: the inlined record-unpack + clock-stamp block below is
        # mirrored in _WorkerBackedEngine.ingest (executor.py) — both inline
        # it because a shared helper costs a function call per record on the
        # hottest loop in the codebase.  Change one, change the other.
        # key -> [shard, last pool-local position, values, stamps-or-None];
        # one flat dict per chunk, so each distinct key is hashed once.
        groups: Dict[Any, List[Any]] = {}
        get_group = groups.get
        shard_counts = [0] * shard_count
        pending = 0
        # Sized chunks bound the transient grouping memory on unbounded
        # iterables; list inputs are already materialised, so one chunk.
        chunk_limit = len(records) if isinstance(records, (list, tuple)) else _INGEST_CHUNK
        try:
            for record in records:
                if isinstance(record, tuple):
                    width = len(record)
                    if width == 3:
                        key, value, timestamp = record
                    elif width == 2:
                        key, value = record
                        timestamp = None
                    else:
                        raise ConfigurationError(
                            f"keyed records must have 2 or 3 fields, got {width}: {record!r}"
                        )
                else:
                    key, value, timestamp = _unpack_record(record)
                if clocked:
                    if type(timestamp) is float and timestamp >= now:
                        now = timestamp
                    else:
                        timestamp = _stamp_timestamp(timestamp, now)
                        now = timestamp
                group = get_group(key)
                if group is None:
                    shard = route(key, salt=_ROUTE_SALT) % shard_count
                    position = shard_counts[shard] = shard_counts[shard] + 1
                    groups[key] = [
                        shard,
                        position,
                        [value],
                        None if timestamp is None else [timestamp],
                    ]
                else:
                    shard = group[0]
                    group[1] = shard_counts[shard] = shard_counts[shard] + 1
                    group[2].append(value)
                    stamps = group[3]
                    if stamps is not None:
                        stamps.append(timestamp)
                    elif timestamp is not None:
                        # Back-fill the missing prefix; mixed runs are rare.
                        group[3] = [None] * (len(group[2]) - 1) + [timestamp]
                count += 1
                pending += 1
                if pending >= chunk_limit:
                    self._flush_groups(groups, shard_counts)
                    pending = 0
        finally:
            self._now = now
            if pending or groups:
                self._flush_groups(groups, shard_counts)
        return count

    def _flush_groups(self, groups: Dict[Any, List[Any]], shard_counts: List[int]) -> None:
        """Hand one chunk's per-key groups to their shards' pools.

        The chunk state is consumed *before* the pools run, so a pool error
        mid-flush can never lead to the same group being applied twice (the
        ``finally`` in :meth:`_ingest_grouped` re-flushes on error paths).
        """
        started = time.perf_counter() if self._obs.enabled else 0.0
        per_shard: List[List[Tuple[Any, int, List[Any], Optional[List[Any]]]]] = [
            [] for _ in shard_counts
        ]
        for key, (shard, last, values, stamps) in groups.items():
            per_shard[shard].append((key, last, values, stamps))
        groups.clear()
        for shard, shard_groups in enumerate(per_shard):
            if shard_groups:
                count = shard_counts[shard]
                shard_counts[shard] = 0
                self._pools[shard].extend_grouped(shard_groups, count)
        if self._obs.enabled:
            self._m_chunks_grouped.inc()
            self._m_chunk_seconds.observe(time.perf_counter() - started)

    def _ingest_partitioned(self, records: Iterable[Any]) -> int:
        """Ingest for engines with an eviction policy: partition per shard,
        let :meth:`KeyedSamplerPool.extend_batch` keep per-record eviction
        semantics exact."""
        count = 0
        clocked = self._spec.is_timestamp
        now = self._now
        pools = self._pools
        shard_count = self._shards
        route = stable_key_hash
        # Per-chunk shard memo: repeated keys in a hot batch hash once.  It
        # is cleared at every chunk flush, so — unlike a persistent routing
        # cache — it cannot retain evicted keys outside the memory budget.
        shard_memo: Dict[Any, int] = {}
        buffers: Dict[int, List[Tuple[Any, Any, Optional[float]]]] = {}
        pending = 0
        try:
            for record in records:
                key, value, timestamp = _unpack_record(record)
                if clocked:
                    timestamp = _stamp_timestamp(timestamp, now)
                    now = timestamp
                shard = shard_memo.get(key, -1)
                if shard < 0:
                    shard = shard_memo[key] = route(key, salt=_ROUTE_SALT) % shard_count
                buffer = buffers.get(shard)
                if buffer is None:
                    buffer = buffers[shard] = []
                buffer.append((key, value, timestamp))
                count += 1
                pending += 1
                if pending >= _INGEST_CHUNK:
                    self._flush_partitioned(buffers, pools)
                    shard_memo.clear()
                    pending = 0
        finally:
            self._now = now
            if buffers:
                self._flush_partitioned(buffers, pools)
        return count

    def _flush_partitioned(
        self,
        buffers: Dict[int, List[Tuple[Any, Any, Optional[float]]]],
        pools: List[KeyedSamplerPool],
    ) -> None:
        """Drain one chunk's per-shard buffers through ``extend_batch``."""
        started = time.perf_counter() if self._obs.enabled else 0.0
        while buffers:
            index, chunk = buffers.popitem()
            pools[index].extend_batch(chunk)
        if self._obs.enabled:
            self._m_chunks_partitioned.inc()
            self._m_chunk_seconds.observe(time.perf_counter() - started)

    def append(self, key: Any, value: Any, timestamp: Optional[float] = None) -> None:
        """Single-record convenience form of :meth:`ingest` (same contract)."""
        self.ingest(((key, value, timestamp),))

    def advance_time(self, now: float) -> None:
        """Broadcast a clock advance to every key's timestamp sampler.

        O(live keys); per-key queries already advance lazily, so this is only
        needed when a caller wants every shard's expiry state settled at once
        (e.g. right before a checkpoint of a quiescent engine).
        """
        if now > self._now:
            self._now = now
        for pool in self._pools:
            pool.advance_time(now)

    def flush(self) -> None:
        """Wait until every ingested record is applied.  The serial engine
        applies records synchronously, so this is a no-op; the parallel
        executor overrides it with a real drain barrier.  Callers that may
        hold either engine flavour can call it unconditionally."""

    def _checkpoint_guard(self):
        """Context manager under which pool state may be read consistently.

        The serial engine needs no locking (single caller by contract); the
        parallel executor overrides this to hold its API lock across the
        whole save so concurrent producers cannot tear a checkpoint.
        """
        import contextlib

        return contextlib.nullcontext()

    # -- per-key queries -----------------------------------------------------

    def sampler_for(self, key: Any) -> WindowSampler:
        """The key's live sampler (read-only; ``KeyError`` when absent —
        samplers are created by ingest, never by lookup)."""
        return self._pool_of(key).sampler_for(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._pool_of(key)

    def sample(self, key: Any) -> List[StreamElement]:
        """The current window sample of one key.

        Raises ``KeyError`` for a key with no live sampler (never seen, or
        evicted) and :class:`~repro.exceptions.EmptyWindowError` when the
        key's window has expired.
        """
        return self._cached_query(
            ("sample", key),
            lambda: _advance_and_sample(
                self._pool_of(key), key, self._now, self._spec.is_timestamp
            ),
        )

    def sample_values(self, key: Any) -> List[Any]:
        """Values-only form of :meth:`sample`."""
        return [element.value for element in self.sample(key)]

    # -- fleet introspection ---------------------------------------------------

    @property
    def key_count(self) -> int:
        """Number of live per-key samplers across all shards."""
        return sum(len(pool) for pool in self._pools)

    @property
    def total_arrivals(self) -> int:
        """Total records ingested (including records of evicted keys)."""
        return sum(pool.ticks for pool in self._pools)

    @property
    def evictions(self) -> int:
        """Total keys evicted across all shards."""
        return sum(pool.evictions for pool in self._pools)

    def stats(self) -> Dict[str, Any]:
        """One fleet-wide statistics dict: live keys, arrivals, memory, and
        the eviction breakdown (``total`` / ``lru`` / ``ttl`` — discards via
        :meth:`KeyedSamplerPool.discard` count only toward the total).

        Unlike :meth:`metrics_snapshot` this needs no registry: the numbers
        come from the pools' own bookkeeping, so eviction pressure is
        visible even on fully uninstrumented engines.
        """
        self.flush()
        return self._query_stats()

    def _query_stats(self) -> Dict[str, Any]:
        """The :meth:`stats` payload, computed from already-flushed pools
        (shared with the batched query path, which flushes once up front)."""
        pools = self._pools
        return {
            "shards": self._shards,
            "kernel": self._kernel,
            "keys": sum(len(pool) for pool in pools),
            "arrivals": sum(pool.ticks for pool in pools),
            "memory_words": sum(pool.memory_words() for pool in pools),
            "evictions": {
                "total": sum(pool.evictions for pool in pools),
                "lru": sum(pool.evictions_lru for pool in pools),
                "ttl": sum(pool.evictions_ttl for pool in pools),
            },
            # In-process pools can never be mid-recovery; the supervised
            # ProcessEngine flips this while a worker restart is in flight.
            "degraded": False,
        }

    def liveness(self) -> Dict[str, Any]:
        """Degradation/liveness report for health endpoints.  In-process
        engines are never degraded; the supervised :class:`ProcessEngine`
        overrides this with per-worker rows (lock-free, best effort)."""
        return {
            "degraded": False,
            "failed": False,
            "recovering_shards": [],
            "restarts": 0,
            "workers": [],
        }

    def discard_wal(self) -> int:
        """Drop a stale write-ahead journal.  Only the process executor
        keeps one; everywhere else this is a no-op so fresh-start paths can
        call it unconditionally."""
        return 0

    def replay_wal(self) -> int:
        """Re-apply a write-ahead journal left by a previous run.  Only the
        process executor keeps one; everywhere else this is a no-op so
        resume paths can call it unconditionally."""
        return 0

    def _checkpoint_committed(self, path: str) -> None:
        """Hook: a checkpoint manifest for this engine just swapped into
        place at ``path`` (the supervised engine truncates its journal)."""

    def _restored_from(self, path: str) -> None:
        """Hook: this engine's state was just loaded from the checkpoint at
        ``path`` (recovery restores dead workers' shards from it)."""

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The engine's metrics registry snapshot (counters / gauges /
        histograms as plain dicts).  Flushes first so queued work is
        reflected; a dead worker fleet still yields the coordinator's view
        rather than raising.  :class:`ProcessEngine` overrides this to merge
        worker-resident registries into one fleet-wide snapshot."""
        try:
            self.flush()
        except WorkerFailure:
            pass
        return self._obs.snapshot()

    def keys(self) -> List[Any]:
        """Every live key (shard by shard; no global order guarantee)."""
        result: List[Any] = []
        for pool in self._pools:
            result.extend(pool.keys())
        return result

    def items(self) -> Iterator[Tuple[Any, WindowSampler]]:
        """Iterate ``(key, sampler)`` over every live key."""
        for pool in self._pools:
            yield from pool.items()

    def memory_words(self) -> int:
        """Aggregate word-RAM footprint of the whole fleet."""
        return sum(pool.memory_words() for pool in self._pools)

    # -- cross-key aggregates --------------------------------------------------

    #: Kept as a class attribute for introspection; the shared aggregate
    #: helpers above use the module-level tuple directly.
    _SKIPPABLE_SAMPLE_ERRORS = _SKIPPABLE_SAMPLE_ERRORS

    #: Delegates to the module-level helper so worker loops (which have no
    #: engine) and the engine share one estimator.
    _window_size_estimate = staticmethod(_window_size_estimate)

    def hottest_keys(self, top: int = 10) -> List[Tuple[Any, int]]:
        """The ``top`` keys by lifetime arrival count, hottest first.

        Counts are per-sampler arrivals, so they reset when a key is evicted
        and recreated — by construction the engine retains no state at all
        for evicted keys.
        """
        if top <= 0:
            raise ConfigurationError("top must be positive")
        self.flush()
        return self._cached_query(
            ("hottest", int(top)), lambda: _hottest_partial(self._pools, top)
        )

    def merged_frequent_items(
        self, threshold: float, *, top: Optional[int] = None
    ) -> List[Tuple[Any, float]]:
        """Frequent values across *all* keys' windows, most frequent first.

        Pools every key's window sample, weighting each key by its (estimated)
        window size, and reports values whose estimated global frequency
        reaches ``threshold`` — the same sample-and-count estimate as
        :class:`repro.applications.SlidingHeavyHitters`, lifted from one
        window to the union of every key's window.
        """
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must lie strictly between 0 and 1")
        self.flush()

        def compute() -> List[Tuple[Any, float]]:
            clocked = self._spec.is_timestamp and self._now != float("-inf")
            pooled, total_weight = _frequent_partial(self._pools, self._now, clocked)
            return _frequent_report(pooled, total_weight, threshold, top)

        return self._cached_query(("frequent", float(threshold), top), compute)

    def _check_moment_config(self) -> None:
        if not self._track_occurrences:
            raise ConfigurationError(
                "per-key moments need track_occurrences=True at engine construction"
            )
        if not self._spec.replacement:
            raise ConfigurationError("per-key moments need a with-replacement spec")
        if self._spec.is_timestamp:
            raise ConfigurationError(
                "per-key moments need a sequence window (timestamp window sizes are not tracked)"
            )

    def per_key_moments(self, order: float) -> Dict[Any, float]:
        """Per-key AMS frequency-moment estimates ``F_order`` (Corollary 5.2).

        Requires ``track_occurrences=True`` (the observer maintains each
        candidate's occurrence count ``r``), a with-replacement spec (the AMS
        position sample must be uniform and independent) and a sequence
        window (whose exact size the estimator needs).  Keys with empty
        windows are omitted.
        """
        self._check_moment_config()
        self.flush()
        return self._cached_query(
            ("moments", float(order)), lambda: _moment_partial(self._pools, order)
        )

    def aggregate_moment(self, order: float) -> float:
        """The summed per-key moment — ``sum_key F_order(key's window)``.

        Values are namespaced per key (the same payload under two keys counts
        as two tenants' values), which is the per-tenant analytics reading of
        "total moment" and keeps the sum exact in expectation.
        """
        return sum(self.per_key_moments(order).values())

    # -- batched & cached queries ----------------------------------------------

    @property
    def query_cache(self) -> Optional[QueryCache]:
        """The engine's result cache, or ``None`` when caching is off."""
        return self._query_cache

    @query_cache.setter
    def query_cache(self, cache: Optional[QueryCache]) -> None:
        # Settable so hosts that build engines through factories that do not
        # thread the constructor argument (``load_checkpoint``, the serve
        # daemon's recipe) can still attach a cache before serving traffic.
        self._query_cache = cache

    def _cached_query(self, cache_key: Tuple[Any, ...], compute: Any) -> Any:
        """Run one query through the result cache.

        Lookups use the *pre*-compute generation tuple; stores use the
        *post*-compute tuple when the spec is clocked, because the lazy
        clock advance inside ``sample``/``frequent`` may legitimately bump
        generations while computing — the freshly computed answer is valid
        for the settled post-compute state (the engine clock is fixed for
        the duration of a query).  Errors are never cached.  Hit values are
        defensively copied so callers cannot mutate cache contents.
        """
        cache = self._query_cache
        if cache is None:
            return compute()
        generations = tuple(self._segment_generations())
        hit, value = cache.lookup(cache_key, generations)
        if hit:
            return _copy_query_result(value)
        value = compute()
        if self._spec.is_timestamp:
            generations = tuple(self._segment_generations())
        cache.store(cache_key, generations, value)
        return _copy_query_result(value)

    #: Operations understood by :meth:`query_batch`, with their canonical
    #: argument shapes (after normalisation).
    _QUERY_OPS = ("sample", "contains", "hottest", "frequent", "moments", "stats")

    def _normalize_query_op(self, op: Any) -> Tuple[Any, ...]:
        """Validate one batched-query op and return its canonical tuple.

        Accepted shapes (``op`` may be a tuple or list):

        * ``("sample", key)`` — the key's window sample
        * ``("contains", key)`` — whether the key has a live sampler
        * ``("hottest", top)`` — fleet-wide hottest keys
        * ``("frequent", threshold[, top])`` — merged frequent items
        * ``("moments", order)`` — per-key AMS moments
        * ``("stats",)`` — the fleet statistics dict

        Malformed ops raise :class:`~repro.exceptions.ConfigurationError`
        before anything executes (a batch is all-or-nothing on shape);
        per-key *runtime* failures are captured per op instead.
        """
        if isinstance(op, list):
            op = tuple(op)
        if not isinstance(op, tuple) or not op or not isinstance(op[0], str):
            raise ConfigurationError(
                f"query ops must be (name, *args) tuples, got {op!r}"
            )
        kind = op[0]
        if kind in ("sample", "contains"):
            if len(op) != 2:
                raise ConfigurationError(f"{kind!r} takes exactly one key, got {op!r}")
            return (kind, op[1])
        if kind == "hottest":
            if len(op) != 2:
                raise ConfigurationError(f"'hottest' takes (top,), got {op!r}")
            top = int(op[1])
            if top <= 0:
                raise ConfigurationError("top must be positive")
            return ("hottest", top)
        if kind == "frequent":
            if len(op) not in (2, 3):
                raise ConfigurationError(
                    f"'frequent' takes (threshold[, top]), got {op!r}"
                )
            threshold = float(op[1])
            if not 0 < threshold < 1:
                raise ConfigurationError("threshold must lie strictly between 0 and 1")
            top = None if len(op) == 2 or op[2] is None else int(op[2])
            if top is not None and top <= 0:
                raise ConfigurationError("top must be positive")
            return ("frequent", threshold, top)
        if kind == "moments":
            if len(op) != 2:
                raise ConfigurationError(f"'moments' takes (order,), got {op!r}")
            self._check_moment_config()
            return ("moments", float(op[1]))
        if kind == "stats":
            if len(op) != 1:
                raise ConfigurationError(f"'stats' takes no arguments, got {op!r}")
            return ("stats",)
        raise ConfigurationError(
            f"unknown query op {kind!r} (expected one of {self._QUERY_OPS})"
        )

    def _query_plans(self, ops: Iterable[Any]) -> List[Tuple[Any, ...]]:
        return [self._normalize_query_op(op) for op in ops]

    def query_batch(self, ops: Iterable[Any]) -> List[Tuple[Any, ...]]:
        """Resolve many queries in one pass over the fleet.

        ``ops`` is a sequence of ``(name, *args)`` tuples (see
        :meth:`_normalize_query_op` for the vocabulary).  Returns one result
        per op, in order: ``("ok", value)`` on success or ``("error",
        type_name, message)`` for per-op runtime failures (unknown key,
        empty window) — one missing key never aborts the rest of the batch.

        This is the fleet-wide query hot path: the whole batch pays one
        flush barrier, one cache-generation fetch, and — on the process
        executor — **one request/reply round per worker** instead of one
        per key, with per-key ops shipped only to the worker owning their
        shard and aggregates merged coordinator-side from per-worker
        partials (the query-side analogue of how ``extend_batch`` groups
        ingest).  Results are bit-identical to issuing the equivalent
        scalar calls in order.
        """
        plans = self._query_plans(ops)
        self.flush()
        return self._query_batch_resolve(plans)

    def _query_batch_resolve(self, plans: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
        """Serve a normalised batch through the cache; compute the misses."""
        cache = self._query_cache
        results: List[Optional[Tuple[Any, ...]]] = [None] * len(plans)
        if cache is None:
            miss_indexes = list(range(len(plans)))
            generations: Tuple[int, ...] = ()
        else:
            generations = tuple(self._segment_generations())
            miss_indexes = []
            for index, plan in enumerate(plans):
                hit, value = cache.lookup(plan, generations)
                if hit:
                    results[index] = ("ok", _copy_query_result(value))
                else:
                    miss_indexes.append(index)
        if miss_indexes:
            computed = self._compute_query_ops([plans[i] for i in miss_indexes])
            if cache is not None and self._spec.is_timestamp:
                # Lazy clock advances during compute may have bumped
                # generations; stamp stores with the settled signal.
                generations = tuple(self._segment_generations())
            for index, outcome in zip(miss_indexes, computed):
                if cache is not None and outcome[0] == "ok":
                    cache.store(plans[index], generations, outcome[1])
                    outcome = ("ok", _copy_query_result(outcome[1]))
                results[index] = outcome
        return results  # type: ignore[return-value]

    def _compute_query_ops(
        self, plans: List[Tuple[Any, ...]]
    ) -> List[Tuple[Any, ...]]:
        """Execute normalised ops against local pools (serial and thread
        engines; :class:`ProcessEngine` overrides this with a one-round
        request/reply fan-out)."""
        clocked = self._spec.is_timestamp
        now = self._now
        outcomes: List[Tuple[Any, ...]] = []
        for plan in plans:
            kind = plan[0]
            try:
                if kind == "sample":
                    value: Any = _advance_and_sample(
                        self._pool_of(plan[1]), plan[1], now, clocked
                    )
                elif kind == "contains":
                    value = plan[1] in self._pool_of(plan[1])
                elif kind == "hottest":
                    value = _hottest_partial(self._pools, plan[1])
                elif kind == "frequent":
                    pooled, total_weight = _frequent_partial(
                        self._pools, now, clocked and now != float("-inf")
                    )
                    value = _frequent_report(pooled, total_weight, plan[1], plan[2])
                elif kind == "moments":
                    value = _moment_partial(self._pools, plan[1])
                else:  # "stats"
                    value = self._query_stats()
            except Exception as error:
                outcomes.append(_query_error(error))
            else:
                outcomes.append(("ok", value))
        return outcomes

    # -- checkpointing ---------------------------------------------------------

    def _state_header(self) -> Dict[str, Any]:
        """The topology/policy half of :meth:`state_dict` (everything but
        the pools) — shared with executors whose pools live elsewhere."""
        return {
            "format": STATE_FORMAT,
            "spec": self._spec.to_dict(),
            "shards": self._shards,
            "seed": self._seed,
            "max_keys_per_shard": self._max_keys_per_shard,
            "idle_ttl": self._idle_ttl,
            "track_occurrences": self._track_occurrences,
            "now": self._now,
        }

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the engine: topology, policy and every shard's pool."""
        return {
            **self._state_header(),
            "pools": [pool.state_dict() for pool in self._pools],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore an engine snapshot in place (topology must match)."""
        self._validate_state(state)
        for pool, pool_state in zip(self._pools, state["pools"]):
            pool.load_state_dict(pool_state)
        self._now = float(state["now"])

    def _validate_state(self, state: Dict[str, Any]) -> None:
        """Check a snapshot against this engine's topology and policy.

        Shared by the in-process restore above and by executors that ship
        pool states elsewhere (worker processes) instead of loading them
        into local pools.
        """
        require_state_fields(
            state,
            ("format", "spec", "shards", "seed", "now", "pools"),
            "ShardedEngine",
        )
        if state["format"] != STATE_FORMAT:
            raise ConfigurationError(
                f"unsupported snapshot format {state['format']!r} (expected {STATE_FORMAT})"
            )
        if SamplerSpec.from_dict(state["spec"]) != self._spec:
            raise ConfigurationError("snapshot spec does not match this engine's spec")
        if int(state["shards"]) != self._shards:
            raise ConfigurationError(
                f"snapshot has {state['shards']} shards, engine has {self._shards}"
                " (resharding a snapshot is not supported)"
            )
        if int(state["seed"]) != self._seed:
            raise ConfigurationError(
                f"snapshot seed {state['seed']} does not match engine seed {self._seed}"
            )
        for field in ("max_keys_per_shard", "idle_ttl", "track_occurrences"):
            if field in state and state[field] != getattr(self, f"_{field}"):
                raise ConfigurationError(
                    f"snapshot {field}={state[field]!r} does not match this engine's"
                    f" {getattr(self, f'_{field}')!r} (restore via from_state_dict, or"
                    " build the engine with the snapshot's policy)"
                )
        if len(state["pools"]) != self._shards:
            raise ConfigurationError(
                f"snapshot carries {len(state['pools'])} pool states for {state['shards']}"
                " declared shards — corrupt checkpoint"
            )

    # -- checkpoint hooks ------------------------------------------------------

    def _checkpoint_segments(self, path: str, plan: Dict[int, Any]) -> List[Dict[str, Any]]:
        """Write (or reuse) one checkpoint segment per shard under ``path``.

        ``plan`` maps shard index to the reuse candidate recorded by the last
        save (see :func:`repro.engine.checkpoint.write_shard_segment`).  The
        serial and thread engines write from their in-process pools;
        :class:`ProcessEngine` overrides this so each worker *process* writes
        its own shards' segments and ships back only the manifest entries.
        """
        from .checkpoint import write_shard_segment  # lazy: avoids an import cycle

        return [
            write_shard_segment(path, index, pool, plan.get(index))
            for index, pool in enumerate(self._pools)
        ]

    def _segment_generations(self) -> List[int]:
        """Current per-shard checkpoint generations (memo seeding on load)."""
        return [pool.generation for pool in self._pools]

    @classmethod
    def from_state_dict(
        cls, state: Dict[str, Any], *, registry: Optional[Any] = None
    ) -> "ShardedEngine":
        """Rebuild a full engine from :meth:`state_dict` output."""
        require_state_fields(
            state,
            ("format", "spec", "shards", "seed", "now", "pools"),
            "ShardedEngine",
        )
        engine = cls(
            SamplerSpec.from_dict(state["spec"]),
            shards=int(state["shards"]),
            seed=int(state["seed"]),
            max_keys_per_shard=state.get("max_keys_per_shard"),
            idle_ttl=state.get("idle_ttl"),
            track_occurrences=bool(state.get("track_occurrences", False)),
            registry=registry,
        )
        engine.load_state_dict(state)
        return engine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEngine(shards={self._shards}, keys={self.key_count}, "
            f"arrivals={self.total_arrivals}, spec={self._spec.describe()!r})"
        )
