"""Stable key hashing for shard routing and per-key seeding.

Python's built-in ``hash()`` is salted per process (PYTHONHASHSEED), so it
must never decide which shard owns a key or which seed a key's sampler gets:
a restarted engine would route differently and every checkpoint would be
useless.  The engine instead hashes a *stable byte encoding* of the key with
BLAKE2b, which is deterministic across processes, platforms and Python
versions.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..exceptions import ConfigurationError

__all__ = ["stable_key_bytes", "stable_key_hash"]


def stable_key_bytes(key: Any) -> bytes:
    """A deterministic byte encoding of a stream key.

    Strings, bytes, integers, floats, booleans, ``None`` and (nested) tuples
    of these — which covers user ids, topic names and flow 5-tuples — get
    direct, type-tagged encodings (the tag keeps ``"1"`` and ``1`` distinct;
    tuple items are length-framed so ``("ab", "c")`` and ``("a", "bc")``
    differ).  Any other type is refused: a ``repr`` fallback would embed the
    object address for classes with a default ``repr``, making equal keys
    route to different shards and checkpointed keys unreachable on restore.
    """
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, bool):  # bool is an int subclass; tag it separately.
        return b"o:1" if key else b"o:0"
    if isinstance(key, int):
        return b"i:" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f:" + repr(key).encode("ascii")
    if key is None:
        return b"n:"
    if isinstance(key, tuple):
        parts = [stable_key_bytes(item) for item in key]
        return b"t:" + b"".join(len(part).to_bytes(4, "little") + part for part in parts)
    raise ConfigurationError(
        f"unsupported stream key type {type(key).__name__!r}: keys must be str, bytes,"
        " int, float, bool, None, or tuples of these (other types have no stable"
        " cross-process encoding)"
    )


def stable_key_hash(key: Any, salt: int = 0) -> int:
    """A 64-bit stable hash of ``key``, mixed with ``salt``.

    The same (key, salt) pair always yields the same value, in every process.
    Different salts give independent hash families — the engine uses one salt
    for shard routing and another (derived from its seed) for per-key sampler
    seeds, so shard assignment reveals nothing about sampler randomness.
    """
    digest = hashlib.blake2b(
        stable_key_bytes(key),
        digest_size=8,
        key=(salt & (2**64 - 1)).to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")
