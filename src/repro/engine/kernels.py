"""Vectorized (numpy) kernels for the batched sampler hot path.

The pure-python samplers in :mod:`repro.core` remain the *bit-identity
reference*: their default (``fast=False``) batched path consumes the stdlib
generator exactly like per-element appends and is byte-identical across every
executor.  This module adds an optional second implementation of the
``fast=True`` batched path that replaces the per-element / per-skip Python
loops with closed-form whole-batch draws:

* **seq-WR** (:func:`seq_wr_process_batch`) — after a batch only the *last
  completed* bucket and the current partial bucket matter, so each lane's
  post-batch state is sampled directly with at most two uniforms per lane,
  drawn for all ``k`` lanes in one generator call.
* **seq-WOR** (:func:`seq_wor_process_batch`) — the post-batch k-subset of a
  bucket reservoir is drawn in one step: a hypergeometric split decides how
  many of the new arrivals displace held slots, then positions are chosen
  without replacement.
* **timestamp WR/WoR** (:func:`coverage_observe_batch`) — the covering
  decomposition's merge cascade is purely structural, so extending
  ``ζ(a, b)`` by a whole run of arrivals is done by *rebuilding* the canonical
  boundaries (Definition 3.1) and drawing each rebuilt bucket's R/Q samples
  width-weighted over its constituents — O(log) work per expiry run instead
  of a Python cascade per element.  Expiry runs are located with
  ``searchsorted`` over the (sorted) clock track plus an exact-predicate
  fixup, so Lemma 3.5 transitions fire at exactly the reference positions.

All of these are *distributionally* exact (gated by the same χ²+KS suites as
the python ``fast`` path) but consume a separate numpy generator, so they are
not bit-identical to either python path.  ``kernel="python"`` (the default)
never touches this module; ``kernel="numpy"`` with ``fast=False`` still runs
the reference default path, so engine results stay byte-identical.

numpy is an *optional* extra (``pip install repro[fast]``): import is
guarded, ``kernel="auto"`` downgrades to ``"python"`` when numpy is missing,
and ``kernel="numpy"`` fails loudly with
:class:`~repro.exceptions.ConfigurationError`.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, TransportError
from .transport import Buffer, decode_columns, _decode_column

try:  # pragma: no cover - exercised via HAS_NUMPY in both CI lanes
    import numpy as _np
except ImportError:  # pragma: no cover - the numpy-free tier-1 lane
    _np = None  # type: ignore[assignment]

#: Whether numpy is importable here.  Controls ``kernel="auto"`` resolution
#: and is monkeypatched by tests to simulate a numpy-free host.
HAS_NUMPY = _np is not None

#: Kernel names accepted by :func:`resolve_kernel` / ``SamplerSpec``.
KERNELS = ("python", "numpy", "auto")

__all__ = [
    "HAS_NUMPY",
    "KERNELS",
    "resolve_kernel",
    "make_generator",
    "decode_batch_arrays",
    "seq_wr_process_batch",
    "seq_wor_process_batch",
    "coverage_observe_batch",
]


def resolve_kernel(requested: str) -> str:
    """Resolve a requested kernel name to the concrete one to run.

    ``"auto"`` picks ``"numpy"`` when the import succeeded and ``"python"``
    otherwise; ``"numpy"`` on a numpy-free host raises
    :class:`~repro.exceptions.ConfigurationError` (loudly, at construction
    time — never a silent downgrade); ``"python"`` always resolves.
    """
    name = str(requested).lower()
    if name not in KERNELS:
        raise ConfigurationError(
            f"unknown kernel {requested!r}; expected one of {', '.join(KERNELS)}"
        )
    if name == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if name == "numpy" and not HAS_NUMPY:
        raise ConfigurationError(
            "kernel='numpy' requires numpy, which is not installed;"
            " install the optional extra (pip install 'swsample[fast]')"
            " or use kernel='python'/'auto'"
        )
    return name


def make_generator(root: random.Random) -> Any:
    """A numpy ``Generator`` seeded from the sampler's root stdlib generator.

    Called *after* every stdlib ``spawn`` in a sampler's constructor, so
    requesting ``kernel="numpy"`` leaves the python lanes' streams untouched
    (drawing more bits from the root after spawning does not perturb the
    already-derived child generators) — ``kernel="numpy", fast=False`` stays
    bit-identical to ``kernel="python"``.
    """
    if _np is None:  # pragma: no cover - callers resolve the kernel first
        raise ConfigurationError("numpy is not installed")
    return _np.random.default_rng(root.getrandbits(64))


# -- typed-array transport decode ---------------------------------------------

#: Transport column tags with a fixed-width numpy dtype.
_DTYPES = {"b": "<i1", "h": "<i2", "i": "<i4", "q": "<i8", "d": "<f8"}


def _decode_column_array(buffer: Buffer, offset: int, count: int) -> Tuple[Sequence[Any], int]:
    """Like ``transport._decode_column`` but fixed-width numeric columns come
    back as zero-copy numpy arrays over the buffer instead of tuples."""
    fmt = chr(buffer[offset])
    if fmt in _DTYPES:
        dtype = _np.dtype(_DTYPES[fmt])
        offset += 1
        end = offset + dtype.itemsize * count
        if end > len(buffer):
            raise TransportError(
                f"truncated numeric column at offset {offset}:"
                f" need {end - offset} bytes, have {len(buffer) - offset}"
            )
        return _np.frombuffer(buffer, dtype=dtype, count=count, offset=offset), end
    return _decode_column(buffer, offset, count)


def decode_batch_arrays(buffer: Buffer) -> Tuple[Sequence[Any], Sequence[Any], Sequence[Any], int]:
    """Decode a columnar transport payload straight into typed columns.

    The column-major, array-typed twin of
    :func:`repro.engine.transport.decode_batch`: fixed-width numeric columns
    (int8/16/32/64 and float64 tags) are returned as read-only numpy arrays
    aliasing the buffer (zero copy); string, ``None`` and pickle-fallback
    columns come back exactly as :func:`decode_batch` produces them.  Values,
    timestamps and key order are element-for-element equal to the tuple-list
    decoder — property-tested in ``tests/test_kernels.py``.

    Requires numpy; raises :class:`~repro.exceptions.ConfigurationError`
    when it is missing.
    """
    if not HAS_NUMPY:
        raise ConfigurationError(
            "decode_batch_arrays requires numpy (pip install 'swsample[fast]')"
        )
    return decode_columns(buffer, column_decoder=_decode_column_array)


# -- sequence-window kernels --------------------------------------------------


def _element_timestamp(
    timestamps: Optional[Sequence[Optional[float]]], position: int, index: int
) -> float:
    """The reservoir ``_slice_timestamp`` contract: missing -> arrival index."""
    if timestamps is None:
        return float(index)
    raw = timestamps[position]
    return float(index) if raw is None else float(raw)


def seq_wr_process_batch(sampler: Any, values: Sequence[Any], timestamps: Optional[Sequence[Optional[float]]], count: int) -> None:
    """Whole-batch update of every :class:`SequenceSamplerWR` lane.

    Per lane, the post-batch state only depends on the last completed bucket
    and the tail (partial) bucket, each of which needs one uniform sample:

    * no bucket boundary crossed — the partial reservoir absorbs ``count``
      more offers; the retained candidate survives with probability
      ``c / (c + count)``, otherwise a uniform new position wins (one draw
      decides both, via ``x = u * (c + count)``);
    * boundary crossed — the active sample becomes a uniform draw of the last
      *completed* bucket (hybrid old-partial + batch prefix when that bucket
      was already partially filled, pure batch segment otherwise) and the
      partial reservoir restarts as a uniform draw of the tail segment.

    All ``2k`` uniforms are drawn in a single generator call.
    """
    from ..core.reservoir import SingleReservoir
    from ..core.tracking import SampleCandidate

    n = sampler._n
    start = sampler._arrivals
    gen = sampler._np_gen
    lanes = sampler._lanes
    draws = gen.random((len(lanes), 2))
    pb_new = (start + count - 1) // n
    tail_start = pb_new * n - start  # batch position where the final bucket begins
    if tail_start < 0:
        tail_start = 0
    tail_len = count - tail_start
    for lane_at, lane in enumerate(lanes):
        partial = lane.partial
        if lane.partial_bucket is None:
            lane.partial_bucket = start // n
        pb_old = lane.partial_bucket
        u0 = draws[lane_at, 0]
        if pb_new == pb_old:
            # No roll-over: one reservoir transition for the whole batch.
            held = partial._count
            x = u0 * (held + count)
            if x >= held:
                position = int(x) - held
                if position >= count:  # float edge: u0 ~ 1.0
                    position = count - 1
                index = start + position
                partial._candidate = SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_element_timestamp(timestamps, position, index),
                )
            partial._count = held + count
            continue
        last_completed = pb_new - 1
        if last_completed == pb_old:
            # The old partial bucket completes inside this batch: its final
            # reservoir is `held` old offers + the `n - held` completing ones.
            held = partial._count
            x = u0 * n
            if x < held:
                active = partial._candidate
            else:
                position = int(x) - held
                if position >= n - held:
                    position = n - held - 1
                index = start + position
                active = SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_element_timestamp(timestamps, position, index),
                )
        else:
            # The last completed bucket lies entirely inside the batch.
            base = last_completed * n - start
            offset = int(u0 * n)
            if offset >= n:
                offset = n - 1
            position = base + offset
            index = start + position
            active = SampleCandidate(
                value=values[position],
                index=index,
                timestamp=_element_timestamp(timestamps, position, index),
            )
        lane.active_sample = active
        lane.active_bucket = last_completed
        fresh = SingleReservoir(rng=lane.rng, observer=None)
        offset = int(draws[lane_at, 1] * tail_len)
        if offset >= tail_len:
            offset = tail_len - 1
        position = tail_start + offset
        index = start + position
        fresh._candidate = SampleCandidate(
            value=values[position],
            index=index,
            timestamp=_element_timestamp(timestamps, position, index),
        )
        fresh._count = tail_len
        lane.partial = fresh
        lane.partial_bucket = pb_new
    sampler._arrivals = start + count


def _wor_extend(
    reservoir: Any,
    base_index: int,
    lo: int,
    hi: int,
    values: Sequence[Any],
    timestamps: Optional[Sequence[Optional[float]]],
    gen: Any,
) -> None:
    """Extend one k-reservoir with batch positions ``[lo, hi)`` in one step.

    With ``c`` prior offers and ``m`` new ones, a uniform k-subset of the
    ``c + m`` total contains ``d ~ Hypergeometric(m, c, k)`` new elements;
    keep ``k - d`` of the held slots uniformly (the held slots are themselves
    a uniform subset of the old offers) and insert ``d`` distinct uniform new
    positions.  Exactly the reservoir's post-slice law, without the
    per-element (or per-skip) loop.
    """
    from ..core.tracking import SampleCandidate

    held_count = reservoir._count
    fresh = hi - lo
    if fresh <= 0:
        return
    k = reservoir._k
    slots = reservoir._slots
    total = held_count + fresh
    if total <= k:
        for position in range(lo, hi):
            index = base_index + position
            slots.append(
                SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_element_timestamp(timestamps, position, index),
                )
            )
        reservoir._count = total
        return
    new_wins = int(gen.hypergeometric(fresh, held_count, k)) if held_count else k
    keep = k - new_wins
    if keep < len(slots):
        kept_at = gen.choice(len(slots), size=keep, replace=False) if keep else ()
        kept = [slots[int(at)] for at in kept_at]
    else:
        kept = list(slots)
    winners: List[Any] = []
    if new_wins:
        for position_offset in gen.choice(fresh, size=new_wins, replace=False):
            position = lo + int(position_offset)
            index = base_index + position
            winners.append(
                SampleCandidate(
                    value=values[position],
                    index=index,
                    timestamp=_element_timestamp(timestamps, position, index),
                )
            )
    reservoir._slots = kept + winners
    reservoir._count = total


def seq_wor_process_batch(sampler: Any, values: Sequence[Any], timestamps: Optional[Sequence[Optional[float]]], count: int) -> None:
    """Whole-batch update of :class:`SequenceSamplerWOR`'s bucket reservoirs.

    Mirrors :func:`seq_wr_process_batch`'s case split; each reservoir
    transition collapses to one hypergeometric split plus two
    without-replacement position draws (:func:`_wor_extend`).
    """
    from ..core.reservoir import ReservoirWithoutReplacement

    n = sampler._n
    k = sampler._k
    start = sampler._arrivals
    gen = sampler._np_gen
    if sampler._partial_bucket is None:
        sampler._partial_bucket = start // n
    pb_old = sampler._partial_bucket
    pb_new = (start + count - 1) // n
    partial = sampler._partial
    if pb_new == pb_old:
        _wor_extend(partial, start, 0, count, values, timestamps, gen)
        sampler._arrivals = start + count
        return
    last_completed = pb_new - 1
    if last_completed == pb_old:
        # Complete the old partial bucket with the batch prefix, then freeze
        # its k-sample as the active slots.
        held = partial._count
        _wor_extend(partial, start, 0, n - held, values, timestamps, gen)
        sampler._active_slots = list(partial._slots)
    else:
        # The last completed bucket lies entirely inside the batch.
        fresh = ReservoirWithoutReplacement(k, rng=sampler._reservoir_rng, observer=None)
        base = last_completed * n - start
        _wor_extend(fresh, start, base, base + n, values, timestamps, gen)
        sampler._active_slots = list(fresh._slots)
    sampler._active_bucket = last_completed
    tail_start = pb_new * n - start
    fresh = ReservoirWithoutReplacement(k, rng=sampler._reservoir_rng, observer=None)
    _wor_extend(fresh, start, tail_start, count, values, timestamps, gen)
    sampler._partial = fresh
    sampler._partial_bucket = pb_new
    sampler._arrivals = start + count


# -- timestamp-window (covering decomposition) kernel -------------------------


def as_float_array(stamps: Sequence[float]) -> Any:
    """A float64 array view/copy of a timestamp column."""
    return _np.asarray(stamps, dtype=_np.float64)


def _extend_canonical(
    buckets: List[Any],
    new_base: int,
    new_count: int,
    values: Sequence[Any],
    values_offset: int,
    base_index: int,
    stamps: Any,
    gen: Any,
) -> None:
    """Extend a canonical bucket list by ``new_count`` arrivals in one step.

    ``Incr`` (Lemma 3.4) maintains exactly the canonical boundaries of
    Definition 3.1, never splits a bucket, and every merge picks each side's
    R/Q sample with probability proportional to nothing but the fair coin —
    which, applied along the (equal-width) merge tree, makes a final bucket's
    R sample a *width-weighted* pick among its constituents' R samples, with
    Q an independent identical pick.  So the post-run structure is rebuilt
    directly: compute ``canonical_boundaries(a, b + new_count)``, reuse
    untouched buckets, and for each widened bucket draw one uniform element
    index for R and one for Q, resolving each to the constituent that covers
    it (an old bucket's stored sample, or a fresh singleton candidate).
    """
    from ..core.bucket_structure import BucketStructure
    from ..core.covering import canonical_boundaries
    from ..core.tracking import SampleCandidate

    a = buckets[0].start if buckets else new_base
    pairs = canonical_boundaries(a, new_base + new_count - 1)
    result: List[Any] = []
    old_at = 0
    old_len = len(buckets)
    for bucket_start, bucket_end in pairs:
        if (
            old_at < old_len
            and buckets[old_at].start == bucket_start
            and buckets[old_at].end == bucket_end
        ):
            result.append(buckets[old_at])
            old_at += 1
            continue
        constituents: List[Any] = []
        while old_at < old_len and buckets[old_at].start < bucket_end:
            constituents.append(buckets[old_at])
            old_at += 1
        width = bucket_end - bucket_start
        rebuilt = BucketStructure.__new__(BucketStructure)
        rebuilt.start = bucket_start
        rebuilt.end = bucket_end
        if constituents:
            rebuilt.first_value = constituents[0].first_value
            rebuilt.first_timestamp = constituents[0].first_timestamp
        else:
            position = bucket_start - base_index
            rebuilt.first_value = values[values_offset + position]
            rebuilt.first_timestamp = float(stamps[position])
        if width == 1:
            # A fresh singleton (the trailing BS(b, b+1), or a width-1 step of
            # a freshly anchored decomposition): R and Q are the element.
            position = bucket_start - base_index
            candidate = SampleCandidate(
                value=values[values_offset + position],
                index=bucket_start,
                timestamp=float(stamps[position]),
            )
            rebuilt.r_sample = candidate
            rebuilt.q_sample = candidate
            result.append(rebuilt)
            continue

        def _resolve(element: int) -> Any:
            position = element - base_index
            return SampleCandidate(
                value=values[values_offset + position],
                index=element,
                timestamp=float(stamps[position]),
            )

        pick_r, pick_q = (int(p) for p in gen.integers(0, width, size=2))
        element_r = bucket_start + pick_r
        element_q = bucket_start + pick_q
        r_sample = None
        q_sample = None
        for member in constituents:
            if r_sample is None and element_r < member.end:
                r_sample = member.r_sample
            if q_sample is None and element_q < member.end:
                q_sample = member.q_sample
        rebuilt.r_sample = r_sample if r_sample is not None else _resolve(element_r)
        rebuilt.q_sample = q_sample if q_sample is not None else _resolve(element_q)
        result.append(rebuilt)
    buckets[:] = result


def coverage_observe_batch(
    coverage: Any,
    values: Sequence[Any],
    values_offset: int,
    base_index: int,
    stamps: Any,
    clocks: Any,
    gen: Any,
) -> None:
    """Vectorized :meth:`WindowCoverage.observe_batch` (``fast`` semantics).

    Element ``j`` of the chunk has stream index ``base_index + j``, value
    ``values[values_offset + j]``, timestamp ``stamps[j]`` and clock track
    ``clocks[j]`` (both float64 arrays; identical objects for undelayed
    feeds).  The chunk is processed as *runs* between Lemma 3.5 expiry
    transitions: within a run the front bucket's first timestamp is
    invariant, so the next transition position is found with one
    ``searchsorted`` over the sorted clock track (plus an exact-predicate
    fixup walk so float rounding matches the per-element reference), the run
    is applied structurally via :func:`_extend_canonical`, and the transition
    itself reuses the reference :meth:`_refresh` verbatim.
    """
    total = len(stamps)
    if total == 0:
        return
    t0 = coverage._t0
    now = coverage._now
    position = 0
    buckets = coverage._decomposition._buckets
    while position < total:
        if not buckets:
            # Lemma 4.1: while nothing active is stored, delayed elements
            # already expired on arrival are skipped wholesale.
            sub_clocks = clocks[position:]
            if now > float(sub_clocks[0]):
                sub_clocks = _np.maximum(sub_clocks, now)
            active = sub_clocks - stamps[position:] < t0
            hit = int(_np.argmax(active))
            if not bool(active[hit]):
                coverage._now = max(now, float(clocks[total - 1]))
                return
            position += hit
            now = max(now, float(clocks[position]))
            front_ts = float(stamps[position])
        else:
            front_ts = buckets[0].first_timestamp
        # Find where the next expiry transition fires: the first j with
        # clocks[j] - front_ts >= t0 (the reference's exact predicate).
        run_end = int(_np.searchsorted(clocks, front_ts + t0, side="left"))
        if run_end < position:
            run_end = position
        while run_end > position and float(clocks[run_end - 1]) - front_ts >= t0:
            run_end -= 1
        while run_end < total and float(clocks[run_end]) - front_ts < t0:
            run_end += 1
        if run_end > position:
            _extend_canonical(
                buckets,
                base_index + position,
                run_end - position,
                values,
                values_offset,
                base_index,
                stamps,
                gen,
            )
            now = max(now, float(clocks[run_end - 1]))
            position = run_end
        if position < total:
            # Transition: advance the clock to the triggering element and run
            # the reference Lemma 3.5 refresh, then continue with that
            # element still pending.
            now = max(now, float(clocks[position]))
            coverage._now = now
            coverage._refresh()
            buckets = coverage._decomposition._buckets
    coverage._now = now
