"""Legacy setup script.

Kept alongside ``pyproject.toml`` so that the package can be installed in
fully offline environments (where PEP-517 build isolation cannot download
build dependencies and the ``wheel`` package may be absent)::

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in ``pyproject.toml``; this file only delegates.
"""

from setuptools import setup

setup()
