"""Experiment E3 — timestamp-window sampling WITH replacement, memory words.

Regenerates the E3 table (optimal covering-decomposition sampler vs BDM
priority sampling, Poisson and bursty arrivals) and times ingest of both.
Paper claim: Theorem 3.9 — O(log n) words per sample, deterministic in the
arrival pattern; priority sampling matches only in expectation.
"""

import random

import pytest

from _helpers import feed_all, run_and_report
from repro.baselines import PrioritySamplerWR
from repro.core import TimestampSamplerWR
from repro.streams.element import make_stream


def _poisson_stream(length, seed=0):
    source = random.Random(seed)
    current, timestamps = 0.0, []
    for _ in range(length):
        current += source.expovariate(1.0)
        timestamps.append(current)
    return make_stream(range(length), timestamps)


SPAN = 1_000.0
STREAM = _poisson_stream(4_000)


def test_e3_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E3", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    optimal_rows = [row for row in table.as_dicts() if row["algorithm"] == "boz-optimal"]
    assert all(row["peak_var"] == 0 for row in optimal_rows)


@pytest.mark.parametrize("k", [1, 8])
def test_e3_kernel_optimal_ingest(benchmark, k):
    benchmark(lambda: feed_all(TimestampSamplerWR(t0=SPAN, k=k, rng=1), STREAM, advance_time=True))


@pytest.mark.parametrize("k", [1, 8])
def test_e3_kernel_priority_ingest(benchmark, k):
    benchmark(lambda: feed_all(PrioritySamplerWR(t0=SPAN, k=k, rng=1), STREAM, advance_time=True))


def test_e3_kernel_optimal_query(benchmark):
    sampler = feed_all(TimestampSamplerWR(t0=SPAN, k=8, rng=2), STREAM, advance_time=True)
    benchmark(sampler.sample)
