"""Ablation benchmarks — design choices called out in DESIGN.md.

Not tied to a single paper claim; instead they quantify the knobs of the
implementation:

* **A1 — over-sampling factor sweep.**  The over-sampling baseline trades
  memory against failure probability through its factor; the paper's point is
  that no factor removes the trade-off.  The sweep shows failure rate and
  memory side by side.
* **A2 — covering-decomposition growth.**  Bucket count (and therefore words)
  of one WindowCoverage as the window size grows by powers of two — the
  measured constant behind the Θ(log n) of Theorem 3.9.
* **A3 — cost of the delayed copies.**  The Theorem 4.4 sampler runs k delayed
  copies of the Theorem 3.9 machinery; the sweep over k shows the linear
  scaling of both time and memory.
"""

import random

import pytest

from repro.baselines import OversamplingSamplerSeqWOR
from repro.core import TimestampSamplerWOR, TimestampSamplerWR
from repro.core.covering import WindowCoverage
from repro.exceptions import SamplingFailureError
from repro.harness.tables import ResultTable
from repro.streams.element import make_stream

from _helpers import feed_all


def test_a1_oversampling_factor_sweep(benchmark):
    """Memory vs failure probability as the over-sampling factor grows."""
    n, k, length, runs = 2_000, 16, 8_000, 10
    stream = make_stream(range(length))
    table = ResultTable(
        "A1",
        "Over-sampling factor ablation (n=2000, k=16): memory vs failure rate",
        ["factor", "mean_retained", "peak_words", "failure_rate"],
    )

    def sweep():
        for factor in (0.1, 0.25, 0.5, 1.0, 2.0):
            peak = 0
            retained_total = 0
            failures = 0
            queries = 0
            for seed in range(runs):
                sampler = OversamplingSamplerSeqWOR(n=n, k=k, rng=seed, oversample_factor=factor)
                for position, element in enumerate(stream):
                    sampler.append(element.value)
                    if (position + 1) % 1_000 == 0:
                        queries += 1
                        try:
                            sampler.sample()
                        except SamplingFailureError:
                            failures += 1
                peak = max(peak, sampler.memory_words())
                retained_total += sampler.retained_count()
            table.add_row(factor, round(retained_total / runs, 1), peak, round(failures / queries, 4))
        return table

    result = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.to_text())
    rows = result.as_dicts()
    # More over-sampling -> fewer failures but more memory.
    assert rows[0]["failure_rate"] >= rows[-1]["failure_rate"]
    assert rows[0]["peak_words"] <= rows[-1]["peak_words"]


def test_a2_covering_decomposition_growth(benchmark):
    """Bucket count of one coverage automaton as the window doubles."""
    table = ResultTable(
        "A2",
        "Covering decomposition growth: window size vs buckets and words",
        ["window_size", "buckets", "memory_words", "words_per_log2"],
    )

    def sweep():
        import math

        for exponent in range(6, 15):
            size = 2**exponent
            coverage = WindowCoverage(float(size), random.Random(1))
            for index in range(size):
                coverage.advance_time(float(index))
                coverage.observe(index, index, float(index))
            buckets = coverage.decomposition.bucket_count + (1 if coverage.straddler else 0)
            words = coverage.memory_words()
            table.add_row(size, buckets, words, round(words / math.log2(size), 1))
        return table

    result = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.to_text())
    rows = result.as_dicts()
    # Logarithmic growth: doubling the window adds O(1) buckets.
    assert rows[-1]["buckets"] - rows[0]["buckets"] <= 2 * (len(rows) + 2)


@pytest.mark.parametrize("k", [1, 4, 16])
def test_a3_delayed_copies_cost(benchmark, k):
    """Ingest cost of Theorem 4.4's k delayed copies (linear in k)."""
    source = random.Random(5)
    current, timestamps = 0.0, []
    for _ in range(2_000):
        current += source.expovariate(1.0)
        timestamps.append(current)
    stream = make_stream(range(2_000), timestamps)
    sampler = benchmark(
        lambda: feed_all(TimestampSamplerWOR(t0=500.0, k=k, rng=1), stream, advance_time=True)
    )
    benchmark.extra_info["memory_words"] = sampler.memory_words()
    single = feed_all(TimestampSamplerWR(t0=500.0, k=1, rng=1), stream, advance_time=True)
    benchmark.extra_info["memory_words_single_wr"] = single.memory_words()
