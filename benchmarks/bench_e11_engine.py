"""Experiment E11 — keyed-engine ingest throughput at fleet scale.

Drives ≥1M keyed records spread over ≥10k keys through
:class:`repro.engine.ShardedEngine` in one run, timing the batched ingest
path (stable-hash routing + per-key Θ(k) sampler updates) and reporting the
fleet's aggregate word-RAM footprint.  Also times the two auxiliary paths a
production deployment exercises continuously: cross-key aggregation and
checkpoint serialisation.

Run with ``pytest benchmarks/bench_e11_engine.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.engine import SamplerSpec, ShardedEngine, load_checkpoint, save_checkpoint
from repro.streams.workloads import build_keyed_workload

RECORDS = 1_000_000
KEYS = 10_000
SHARDS = 8


def _spec() -> SamplerSpec:
    return SamplerSpec(window="sequence", n=256, k=4, replacement=True)


@pytest.fixture(scope="module")
def records():
    # One warm-up record per key (a Zipf tail this long leaves a handful of
    # keys undrawn even in 1M records), then the skewed bulk.  The warm-up
    # uses the bare (key, value) record form, the bulk the 3-field form.
    warmup = [(key, key % 1024) for key in range(KEYS)]
    bulk = build_keyed_workload("keyed-zipf", RECORDS - len(warmup), num_keys=KEYS, rng=11)
    return warmup + bulk


def test_e11_engine_ingest_1m_records(benchmark, records):
    """The headline number: 1M keyed records through 10k per-key samplers."""

    def ingest():
        engine = ShardedEngine(_spec(), shards=SHARDS, seed=3)
        engine.ingest(records)
        return engine

    engine = benchmark.pedantic(ingest, rounds=1, iterations=1, warmup_rounds=0)
    assert engine.total_arrivals >= 1_000_000
    assert engine.key_count >= 10_000
    benchmark.extra_info["records"] = engine.total_arrivals
    benchmark.extra_info["keys"] = engine.key_count
    benchmark.extra_info["memory_words"] = engine.memory_words()
    benchmark.extra_info["words_per_key"] = engine.memory_words() / engine.key_count
    print(
        f"\n[E11] {engine.total_arrivals:,} records, {engine.key_count:,} keys, "
        f"{engine.shards} shards, fleet memory {engine.memory_words():,} words "
        f"(~{engine.memory_words() // engine.key_count} words/key)"
    )


@pytest.fixture(scope="module")
def loaded_engine(records):
    engine = ShardedEngine(_spec(), shards=SHARDS, seed=3)
    engine.ingest(records)
    return engine


def test_e11_engine_aggregates(benchmark, loaded_engine):
    """Cross-key aggregation cost over the full 10k-key fleet."""

    def aggregate():
        hottest = loaded_engine.hottest_keys(10)
        merged = loaded_engine.merged_frequent_items(0.01, top=10)
        return hottest, merged

    hottest, merged = benchmark(aggregate)
    assert len(hottest) == 10
    assert merged, "the Zipf head must clear a 1% frequency threshold"


def test_e11_engine_checkpoint_round_trip(benchmark, loaded_engine, tmp_path):
    """Serialise + restore the whole fleet; restored samples must be identical."""
    path = tmp_path / "engine.ckpt"

    def round_trip():
        save_checkpoint(loaded_engine, path)
        return load_checkpoint(path)

    restored = benchmark.pedantic(round_trip, rounds=1, iterations=1, warmup_rounds=0)
    assert restored.key_count == loaded_engine.key_count
    probe = [key for key, _ in loaded_engine.hottest_keys(50)]
    assert all(restored.sample(key) == loaded_engine.sample(key) for key in probe)
    benchmark.extra_info["checkpoint_bytes"] = path.stat().st_size
