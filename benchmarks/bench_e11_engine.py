"""Experiment E11 — keyed-engine ingest throughput at fleet scale.

Drives ≥1M keyed records spread over ≥10k keys through
:class:`repro.engine.ShardedEngine` in one run, timing the batched ingest
path (stable-hash routing + per-key Θ(k) sampler updates) and reporting the
fleet's aggregate word-RAM footprint.  Also times the two auxiliary paths a
production deployment exercises continuously: cross-key aggregation and
checkpoint serialisation — and, since PR 2, the two scaling layers:

* a **workers sweep** over :class:`repro.engine.ParallelEngine` (1/2/4
  worker threads over the same shard fleet).  Caveat for reading the
  numbers: on a GIL CPython build the per-record sampler updates serialise,
  so thread workers buy producer/consumer pipelining rather than CPU
  parallelism — run on a free-threaded build (or enough cores) to see the
  ingest path scale; the sweep exists to keep the dispatch overhead honest
  and the architecture measured.
* a **process-workers sweep** over :class:`repro.engine.ProcessEngine`
  (1/2/4 worker processes).  Process workers *do* clear the GIL — sampler
  updates run on real cores — but only when cores exist: on a single-core
  container the sweep is flat, so each run prints the detected core count
  *and* the per-stage transport breakdown (encode / dispatch / decode /
  apply seconds from :meth:`ProcessEngine.transport_report`) next to its
  throughput — the caveat comes with numbers, not just a caption.  The
  safety net stays the same: the process fleet must be bit-identical to
  the serial fleet.
* a **batched-path comparison**: the serial 1M-record ingest through the
  per-record reference loop, the grouped batched path (bit-identical), and
  the ``fast=True`` skip-sampling path — the three numbers
  ``benchmarks/record.py`` tracks in ``BENCH_E11.json``.
* **incremental checkpoints**: a second save after touching ~1% of keys
  (clustered on ≤10% of shards) must rewrite ≤10% of the shard segments.

Run with ``pytest benchmarks/bench_e11_engine.py --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import (
    ParallelEngine,
    ProcessEngine,
    SamplerSpec,
    ShardedEngine,
    load_checkpoint,
    save_checkpoint,
    write_checkpoint,
)
from repro.streams.workloads import build_keyed_workload

RECORDS = 1_000_000
KEYS = 10_000
SHARDS = 8
#: Shard count for the incremental-checkpoint scenario: per-shard segments
#: only pay off when a key touch dirties a small *fraction* of shards, so
#: the persistence fleet runs many small shards (the production shape for
#: rebalancing anyway).
CHECKPOINT_SHARDS = 64


def _spec() -> SamplerSpec:
    return SamplerSpec(window="sequence", n=256, k=4, replacement=True)


@pytest.fixture(scope="module")
def records():
    # One warm-up record per key (a Zipf tail this long leaves a handful of
    # keys undrawn even in 1M records), then the skewed bulk.  The warm-up
    # uses the bare (key, value) record form, the bulk the 3-field form.
    warmup = [(key, key % 1024) for key in range(KEYS)]
    bulk = build_keyed_workload("keyed-zipf", RECORDS - len(warmup), num_keys=KEYS, rng=11)
    return warmup + bulk


def test_e11_engine_ingest_1m_records(benchmark, records):
    """The headline number: 1M keyed records through 10k per-key samplers."""

    def ingest():
        engine = ShardedEngine(_spec(), shards=SHARDS, seed=3)
        engine.ingest(records)
        return engine

    engine = benchmark.pedantic(ingest, rounds=1, iterations=1, warmup_rounds=0)
    assert engine.total_arrivals >= 1_000_000
    assert engine.key_count >= 10_000
    benchmark.extra_info["records"] = engine.total_arrivals
    benchmark.extra_info["keys"] = engine.key_count
    benchmark.extra_info["memory_words"] = engine.memory_words()
    benchmark.extra_info["words_per_key"] = engine.memory_words() / engine.key_count
    print(
        f"\n[E11] {engine.total_arrivals:,} records, {engine.key_count:,} keys, "
        f"{engine.shards} shards, fleet memory {engine.memory_words():,} words "
        f"(~{engine.memory_words() // engine.key_count} words/key)"
    )


def test_e11_engine_fast_ingest_1m_records(benchmark, records):
    """The same fleet with ``SamplerSpec(fast=True)``: skip-sampling ingest.

    Not bit-identical to the default path (by design), so the assertion is
    structural: same arrivals, same keys, valid per-key samples.  The
    statistical guarantees are gated in ``tests/test_batched_ingest.py``.
    """

    def ingest():
        spec = SamplerSpec(window="sequence", n=256, k=4, replacement=True, fast=True)
        engine = ShardedEngine(spec, shards=SHARDS, seed=3)
        engine.ingest(records)
        return engine

    engine = benchmark.pedantic(ingest, rounds=1, iterations=1, warmup_rounds=0)
    assert engine.total_arrivals >= 1_000_000
    assert engine.key_count >= 10_000
    assert len(engine.sample(0)) == 4
    benchmark.extra_info["fast"] = True


@pytest.fixture(scope="module")
def loaded_engine(records):
    engine = ShardedEngine(_spec(), shards=SHARDS, seed=3)
    engine.ingest(records)
    return engine


def test_e11_engine_aggregates(benchmark, loaded_engine):
    """Cross-key aggregation cost over the full 10k-key fleet."""

    def aggregate():
        hottest = loaded_engine.hottest_keys(10)
        merged = loaded_engine.merged_frequent_items(0.01, top=10)
        return hottest, merged

    hottest, merged = benchmark(aggregate)
    assert len(hottest) == 10
    assert merged, "the Zipf head must clear a 1% frequency threshold"


def test_e11_engine_checkpoint_round_trip(benchmark, loaded_engine, tmp_path):
    """Serialise + restore the whole fleet; restored samples must be identical."""
    path = tmp_path / "engine.ckpt"

    def round_trip():
        save_checkpoint(loaded_engine, path)
        return load_checkpoint(path)

    restored = benchmark.pedantic(round_trip, rounds=1, iterations=1, warmup_rounds=0)
    assert restored.key_count == loaded_engine.key_count
    probe = [key for key, _ in loaded_engine.hottest_keys(50)]
    assert all(restored.sample(key) == loaded_engine.sample(key) for key in probe)
    benchmark.extra_info["checkpoint_bytes"] = sum(
        entry.stat().st_size for entry in path.iterdir()
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_e11_parallel_ingest_workers_sweep(benchmark, records, workers):
    """The same 1M-record fleet through 1/2/4 shard-worker threads."""

    def ingest():
        with ParallelEngine(_spec(), shards=SHARDS, seed=3, workers=workers) as engine:
            engine.ingest(records)
            engine.flush()
            return engine.total_arrivals

    arrivals = benchmark.pedantic(ingest, rounds=1, iterations=1, warmup_rounds=0)
    assert arrivals >= 1_000_000
    benchmark.extra_info["workers"] = workers


def test_e11_parallel_matches_serial_fleet(records):
    """Safety net under the sweep: the parallel fleet is bit-identical."""
    serial = ShardedEngine(_spec(), shards=SHARDS, seed=3)
    serial.ingest(records[:100_000])
    with ParallelEngine(_spec(), shards=SHARDS, seed=3, workers=4) as parallel:
        parallel.ingest(records[:100_000])
        assert parallel.state_dict() == serial.state_dict()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_e11_process_ingest_workers_sweep(benchmark, records, workers):
    """The same 1M-record fleet through 1/2/4 shard-worker *processes*.

    Unlike threads, process workers run sampler updates on real cores — but
    the speed-up is bounded by the cores actually present, and every record
    pays pickling freight across the queue.  The caveat is printed with the
    number so a flat sweep on a 1-core container reads as what it is.
    """

    def ingest():
        with ProcessEngine(_spec(), shards=SHARDS, seed=3, workers=workers) as engine:
            engine.ingest(records)
            engine.flush()
            return engine.total_arrivals, engine.transport_report()

    arrivals, report = benchmark.pedantic(ingest, rounds=1, iterations=1, warmup_rounds=0)
    assert arrivals >= 1_000_000
    cores = os.cpu_count() or 1
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["executor"] = "process"
    benchmark.extra_info["cores"] = cores
    for stage in ("encode_seconds", "dispatch_seconds", "decode_seconds", "apply_seconds"):
        benchmark.extra_info[stage] = round(report[stage], 3)
    benchmark.extra_info["encoded_bytes_per_record"] = round(
        report["encoded_bytes"] / report["records"], 2
    )
    print(
        f"\n[E11] process sweep: workers={workers} on {cores} core(s) — "
        + (
            "single-core host: expect a flat sweep (no CPU parallelism to claim)"
            if cores == 1
            else "multi-core host: sampler updates run concurrently"
        )
    )
    print(
        f"[E11]   stages: encode {report['encode_seconds']:.2f}s"
        f" | dispatch {report['dispatch_seconds']:.2f}s (incl. backpressure)"
        f" | decode {report['decode_seconds']:.2f}s"
        f" | apply {report['apply_seconds']:.2f}s (summed over workers)"
        f" | {report['encoded_bytes'] / report['records']:.1f} B/rec on the wire"
    )


def test_e11_process_matches_serial_fleet(records):
    """Safety net under the process sweep: bit-identical through worker
    processes (same invariant E5/E9 rest on, crossing a pickle boundary)."""
    serial = ShardedEngine(_spec(), shards=SHARDS, seed=3)
    serial.ingest(records[:100_000])
    with ProcessEngine(_spec(), shards=SHARDS, seed=3, workers=4) as process:
        process.ingest(records[:100_000])
        assert process.state_dict() == serial.state_dict()


def test_e11_incremental_checkpoint_rewrites_only_dirty_shards(benchmark, records, tmp_path):
    """Touch ~1% of keys (clustered on ≤10% of shards, the hot-tenant
    shape); the follow-up save must rewrite ≤10% of the shard segments."""
    engine = ShardedEngine(_spec(), shards=CHECKPOINT_SHARDS, seed=3)
    engine.ingest(records)
    path = tmp_path / "engine.ckpt"
    first = write_checkpoint(engine, path)
    assert first.segments_written == CHECKPOINT_SHARDS

    hot_shards = max(1, CHECKPOINT_SHARDS // 10)
    touched = [
        key for key in range(KEYS) if engine.shard_of(key) < hot_shards
    ][: KEYS // 100]
    assert len(touched) == KEYS // 100
    engine.ingest([(key, key % 1024) for key in touched])

    second = benchmark.pedantic(
        lambda: write_checkpoint(engine, path), rounds=1, iterations=1, warmup_rounds=0
    )
    assert second.segments_written <= CHECKPOINT_SHARDS // 10
    assert second.segments_reused == CHECKPOINT_SHARDS - second.segments_written
    restored = load_checkpoint(path)
    assert all(restored.sample(key) == engine.sample(key) for key in touched[:25])
    benchmark.extra_info["segments_written"] = second.segments_written
    benchmark.extra_info["segments_total"] = CHECKPOINT_SHARDS
    print(
        f"\n[E11] incremental checkpoint: {second.segments_written}/{CHECKPOINT_SHARDS}"
        f" segments rewritten after touching {len(touched)} of {KEYS} keys"
        f" ({second.bytes_written:,} bytes)"
    )
