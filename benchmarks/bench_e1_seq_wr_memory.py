"""Experiment E1 — sequence-window sampling WITH replacement, memory words.

Regenerates the E1 table (optimal vs chain sampling vs full window buffer) and
times the core kernel: feeding a window-sized stream through each algorithm.
Paper claim: Theorem 2.1 — O(k) words, deterministic.
"""

import pytest

from _helpers import feed_all, run_and_report
from repro.baselines import BufferSamplerSeq, ChainSamplerWR
from repro.core import SequenceSamplerWR
from repro.streams.element import make_stream

WINDOW = 2_000
STREAM = make_stream(range(4 * WINDOW))


def test_e1_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E1", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    optimal_rows = [row for row in table.as_dicts() if row["algorithm"] == "boz-optimal"]
    assert optimal_rows
    assert all(row["peak_var"] == 0 for row in optimal_rows)


@pytest.mark.parametrize("k", [1, 16])
def test_e1_kernel_optimal_ingest(benchmark, k):
    benchmark(lambda: feed_all(SequenceSamplerWR(n=WINDOW, k=k, rng=1), STREAM))


@pytest.mark.parametrize("k", [1, 16])
def test_e1_kernel_chain_ingest(benchmark, k):
    benchmark(lambda: feed_all(ChainSamplerWR(n=WINDOW, k=k, rng=1), STREAM))


def test_e1_kernel_buffer_ingest(benchmark):
    benchmark(lambda: feed_all(BufferSamplerSeq(n=WINDOW, k=16, rng=1), STREAM))
