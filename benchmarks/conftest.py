"""Shared configuration for the benchmark suite.

Each ``bench_e*.py`` module regenerates one experiment from EXPERIMENTS.md:

* it runs the corresponding E1–E10 experiment once (at the ``default`` scale
  unless the ``SWSAMPLE_BENCH_SCALE`` environment variable says otherwise),
  prints its result table and attaches the headline figures to
  ``benchmark.extra_info``;
* it also times a representative kernel with pytest-benchmark so the usual
  timing statistics are collected.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make the src/ layout importable when the package is not installed.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture(scope="session")
def scale() -> str:
    """Experiment scale used by the benchmark suite (default: 'default')."""
    value = os.environ.get("SWSAMPLE_BENCH_SCALE", "default")
    return value if value in ("smoke", "default", "full") else "default"
