"""Experiment E7 — per-element update cost of every sampler.

Regenerates the E7 throughput table and provides the canonical
pytest-benchmark timings (per-element append cost) for all four optimal
variants and the two main baselines — the numbers quoted in EXPERIMENTS.md.
"""

import random

import pytest

from _helpers import feed_all, run_and_report
from repro.baselines import ChainSamplerWR, PrioritySamplerWR
from repro.core import (
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
)
from repro.streams.element import make_stream


def _poisson_stream(length, seed=0):
    source = random.Random(seed)
    current, timestamps = 0.0, []
    for _ in range(length):
        current += source.expovariate(1.0)
        timestamps.append(current)
    return make_stream(range(length), timestamps)


SEQ_STREAM = make_stream(range(5_000))
TS_STREAM = _poisson_stream(2_500)


def test_e7_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E7", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    assert all(row["kelements_per_s"] > 0 for row in table.as_dicts())


@pytest.mark.parametrize("k", [1, 16])
def test_e7_seq_wr_append(benchmark, k):
    benchmark(lambda: feed_all(SequenceSamplerWR(n=1_000, k=k, rng=1), SEQ_STREAM))


@pytest.mark.parametrize("k", [8, 32])
def test_e7_seq_wor_append(benchmark, k):
    benchmark(lambda: feed_all(SequenceSamplerWOR(n=1_000, k=k, rng=1), SEQ_STREAM))


def test_e7_chain_append(benchmark):
    benchmark(lambda: feed_all(ChainSamplerWR(n=1_000, k=16, rng=1), SEQ_STREAM))


@pytest.mark.parametrize("k", [1, 8])
def test_e7_ts_wr_append(benchmark, k):
    benchmark(lambda: feed_all(TimestampSamplerWR(t0=1_000.0, k=k, rng=1), TS_STREAM, advance_time=True))


def test_e7_ts_wor_append(benchmark):
    benchmark(lambda: feed_all(TimestampSamplerWOR(t0=1_000.0, k=8, rng=1), TS_STREAM, advance_time=True))


def test_e7_priority_append(benchmark):
    benchmark(lambda: feed_all(PrioritySamplerWR(t0=1_000.0, k=8, rng=1), TS_STREAM, advance_time=True))
