#!/usr/bin/env python
"""Record the repo's perf trajectory: E7 + E11 headline numbers as JSON.

Runs the two throughput experiments that the batched hot path targets and
writes ``BENCH_E7.json`` / ``BENCH_E11.json``:

* **E7** — per-element ingest cost of the four optimal samplers, measured
  three ways: the per-element ``append`` loop (the *before*), the batched
  default ``process_batch`` path (bit-identical), and the ``fast=True``
  skip-sampling path.  Each path is timed best-of-3 on a fresh sampler,
  with the three paths interleaved within each round — single-shot
  timings taken seconds apart made the guarded ratios flaky on 1-core CI
  runners (see ``timed_best_grouped``).
* **E11** — keyed-engine ingest at fleet scale (zipf keys through
  ``ShardedEngine``), same three ways, plus the process-transport freight
  (columnar vs pickled bytes per record — deterministic) and ``ProcessEngine``
  per-stage timing breakdowns (encode / dispatch / decode / apply) for both
  the ``columnar`` and the shared-memory-ring (``shm``) transports over the
  same decoded stream.  The ``obs`` row measures the metrics-enabled ingest
  overhead (hard-capped at 5% by the baseline guard), the process rows embed
  their fleet-merged ``repro.obs`` snapshots, and a standalone
  ``METRICS.json`` lands in ``--out`` for the CI artifact.  The ``query``
  row measures the fleet-wide query path on a ``ProcessEngine``: a ≥1k-key
  per-key ``sample`` loop (one request/reply round per key) vs one
  ``query_batch`` (one round per worker) vs a cached repeat through
  ``QueryCache`` — the batched speedup is guarded at the usual tolerance.
  The ``recovery`` row prices the self-healing machinery: the supervised
  WAL-on/WAL-off ingest ratio (hard-capped at 1.10) and the MTTR from
  SIGKILL to a healthy, bit-identical fleet after checkpoint restore plus
  a 100k-record journal replay.

The JSON files are committed, so the perf trajectory is recorded PR over PR.
Absolute throughput depends on the machine; the *speedup ratios* and the
*bytes-per-record* figures are the stable metrics, and they are what
``--baseline DIR`` checks: a fresh run regressing any guarded metric by more
than ``--tolerance`` (default 25%) exits non-zero.  CI runs
``record.py --quick --out <tmp> --baseline .`` as the ``bench-smoke`` job.

Usage::

    PYTHONPATH=src python benchmarks/record.py [--quick] [--out DIR]
                                               [--baseline DIR] [--tolerance PCT]
                                               [--kernel python|numpy|auto]
                                               [--cores N]

``--kernel numpy`` (requires the ``[fast]`` extra) adds the vectorized-kernel
rows: an E7 ``kernel`` timing per sampler family with the floor-guarded
``speedup_numpy`` ratio, an E11 serial kernel row, and the process-engine
apply-seconds split before/after the kernel.  ``--cores N`` appends an
advisory multi-core process row (skipped with a note on smaller hosts).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pickle
import platform
import random
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import (  # noqa: E402
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
)
from repro.engine import (  # noqa: E402
    ProcessEngine,
    QueryCache,
    RestartPolicy,
    SamplerSpec,
    ShardedEngine,
    chaos,
    encode_batch,
    write_checkpoint,
)
from repro.engine.engine import _unpack_record  # noqa: E402
from repro.engine.kernels import HAS_NUMPY, resolve_kernel  # noqa: E402
from repro.exceptions import ConfigurationError  # noqa: E402
from repro.engine.transport import (  # noqa: E402
    HAS_SHARED_MEMORY,
    ShmRingReader,
    ShmRingWriter,
    decode_batch,
)
from repro.obs import MetricsRegistry  # noqa: E402
from repro.streams.workloads import build_keyed_workload  # noqa: E402

#: Metrics guarded by --baseline, per experiment file.  Direction "min" means
#: a *smaller* fresh value than baseline/(1+tol) is a regression (throughput
#: ratios); "max" means a larger fresh value than baseline*(1+tol) is
#: (bytes per record).  A three-element ``(dotted, "cap", ceiling)`` guard is
#: baseline-independent: the fresh value must stay at or below the absolute
#: ceiling regardless of what was committed (used for the metrics-enabled
#: ingest overhead, which must never exceed 5%).  ``(dotted, "floor", min)``
#: is the cap's mirror for optional rows: the fresh value must be at or
#: above the floor when present, and a ``null`` row (the optional path was
#: inactive, e.g. the numpy kernel on a numpy-free host) skips the guard.
GUARDED_METRICS: Dict[str, List[tuple]] = {
    "BENCH_E7.json": [
        ("seq-wr.speedup_batched", "min"),
        ("seq-wr.speedup_fast", "min"),
        ("seq-wor.speedup_batched", "min"),
        # seq-wor.speedup_fast is recorded but not guarded: the skip-search
        # vs reference-loop ratio moves with stream length, so quick-vs-full
        # comparisons exceed any honest tolerance.  Its correctness is gated
        # statistically and its floor is tested in tests/test_perf_baseline.py.
        ("ts-wr.speedup_batched", "min"),
        ("ts-wr.speedup_fast", "min"),
        ("ts-wor.speedup_batched", "min"),
        ("ts-wor.speedup_fast", "min"),
        # The vectorized-kernel acceptance floors (PR 9): the numpy kernel
        # must beat the committed python fast path >= 2x on seq-WR and a
        # timestamp sampler.  "floor" guards are baseline-independent and
        # skipped when the row is null (the bench ran without the kernel).
        ("seq-wr.speedup_numpy", "floor", 2.0),
        ("ts-wr.speedup_numpy", "floor", 2.0),
    ],
    "BENCH_E11.json": [
        ("serial.speedup_batched", "min"),
        ("serial.speedup_fast", "min"),
        ("transport.columnar_bytes_per_record", "max"),
        ("transport.pickle_over_columnar", "min"),
        ("obs.enabled_over_disabled", "cap", 1.05),
        ("query.speedup_batched", "min"),
        # The supervised journal must stay a file append on the columnar
        # payload the transport already built — never a second encode.
        ("recovery.wal_overhead", "cap", 1.10),
    ],
}


def timed(action: Callable[[], Any]) -> float:
    started = time.perf_counter()
    action()
    return time.perf_counter() - started


def timed_best_grouped(
    setups: Dict[str, Callable[[], Callable[[], Any]]], repeats: int = 3
) -> Dict[str, float]:
    """Best-of-N wall time per path, with the paths interleaved within each
    round.  ``setup`` builds fresh state (samplers are stateful) outside the
    timed region, once per repeat.  Two defenses against 1-core CI runners,
    where the guarded metrics are *ratios* of these timings: the minimum is
    the standard microbenchmark estimator (a single scheduler hiccup cannot
    poison a path), and interleaving samples every path across the same wall
    window (machine speed drifts minute to minute; timing path A's repeats
    seconds apart from path B's turns that drift into ratio noise the
    regression guard cannot tell from a real regression)."""
    best = {name: float("inf") for name in setups}
    for _ in range(repeats):
        for name, setup in setups.items():
            action = setup()
            gc.collect()
            best[name] = min(best[name], timed(action))
    return best


def poisson_timestamps(length: int, seed: int = 0) -> List[float]:
    source = random.Random(seed)
    current, stamps = 0.0, []
    for _ in range(length):
        current += source.expovariate(1.0)
        stamps.append(current)
    return stamps


# -- E7: per-sampler ingest cost ---------------------------------------------


def bench_e7(quick: bool, kernel: str = "python") -> Dict[str, Any]:
    seq_length = 60_000 if quick else 200_000
    ts_length = 15_000 if quick else 40_000
    seq_values = list(range(seq_length))
    ts_values = list(range(ts_length))
    ts_stamps = poisson_timestamps(ts_length)
    cases = [
        ("seq-wr", lambda fast, kernel="python": SequenceSamplerWR(n=1000, k=8, rng=1, fast=fast, kernel=kernel), seq_values, None),
        ("seq-wor", lambda fast, kernel="python": SequenceSamplerWOR(n=1000, k=16, rng=1, fast=fast, kernel=kernel), seq_values, None),
        ("ts-wr", lambda fast, kernel="python": TimestampSamplerWR(t0=1000.0, k=4, rng=1, fast=fast, kernel=kernel), ts_values, ts_stamps),
        ("ts-wor", lambda fast, kernel="python": TimestampSamplerWOR(t0=1000.0, k=4, rng=1, fast=fast, kernel=kernel), ts_values, ts_stamps),
    ]
    results: Dict[str, Any] = {}
    for name, make, values, stamps in cases:
        count = len(values)

        def append_action(make=make, values=values, stamps=stamps):
            sampler = make(False)
            append = sampler.append
            if stamps is None:
                def run():
                    for value in values:
                        append(value)
            else:
                def run():
                    for position, value in enumerate(values):
                        append(value, stamps[position])
            return run

        def batch_action(fast, kernel="python", make=make, values=values, stamps=stamps):
            sampler = make(fast, kernel)
            return lambda: sampler.process_batch(values, stamps)

        setups = {
            "append": append_action,
            "batched": lambda: batch_action(False),
            "fast": lambda: batch_action(True),
        }
        if kernel == "numpy":
            # The vectorized lane-batch kernel, timed over the *same*
            # fast-path draws it replaces (fast=True is where the lanes are
            # wide enough to vectorize; the default path stays bit-identical
            # python by contract).
            setups["kernel"] = lambda: batch_action(True, "numpy")
        best = timed_best_grouped(setups)
        t_append, t_batched, t_fast = best["append"], best["batched"], best["fast"]
        t_kernel = best.get("kernel")
        results[name] = {
            "elements": count,
            "append_kel_per_s": round(count / t_append / 1e3, 1),
            "batched_kel_per_s": round(count / t_batched / 1e3, 1),
            "fast_kel_per_s": round(count / t_fast / 1e3, 1),
            "kernel_kel_per_s": round(count / t_kernel / 1e3, 1) if t_kernel else None,
            "speedup_batched": round(t_append / t_batched, 3),
            "speedup_fast": round(t_append / t_fast, 3),
            # numpy-kernel fast path vs the committed python fast path —
            # the PR 9 acceptance ratio (floor-guarded for seq-wr / ts-wr).
            "speedup_numpy": round(t_fast / t_kernel, 3) if t_kernel else None,
        }
        line = (
            f"[E7] {name:<8} append {results[name]['append_kel_per_s']:>8.1f} kel/s"
            f" | batched {results[name]['batched_kel_per_s']:>8.1f}"
            f" ({results[name]['speedup_batched']:.2f}x)"
            f" | fast {results[name]['fast_kel_per_s']:>8.1f}"
            f" ({results[name]['speedup_fast']:.2f}x)"
        )
        if t_kernel:
            line += (
                f" | kernel {results[name]['kernel_kel_per_s']:>8.1f}"
                f" ({results[name]['speedup_numpy']:.2f}x over fast)"
            )
        print(line)
    return results


# -- E11: keyed-engine ingest at fleet scale ----------------------------------


def e11_records(quick: bool) -> List[Any]:
    # Quick mode scales keys *and* records down together (same ~100
    # records/key as the canonical 1M/10k shape), so the speedup ratios —
    # the metrics the baseline guard compares — stay scale-stable: per-key
    # sampler construction amortises the same way at both sizes.
    keys = 2_000 if quick else 10_000
    total = 300_000 if quick else 1_000_000
    warmup = [(key, key % 1024) for key in range(keys)]
    bulk = build_keyed_workload("keyed-zipf", total - len(warmup), num_keys=keys, rng=11)
    return warmup + bulk


def e11_spec(fast: bool = False, kernel: str = "python") -> SamplerSpec:
    return SamplerSpec(window="sequence", n=256, k=4, replacement=True, fast=fast, kernel=kernel)


def per_record_ingest(engine: ShardedEngine, records: List[Any]) -> None:
    """The pre-batching ingest loop, kept as the *before* reference."""
    for record in records:
        key, value, timestamp = _unpack_record(record)
        engine._pool_of(key).append(key, value, timestamp)


#: Slice size for the interleaved obs-overhead A/B: one ingest chunk
#: (~100ms of batched serial ingest), small enough that machine-state
#: drift within a disabled/enabled slice pair is negligible.
_OBS_SLICE = 32_768


def bench_e11_serial(records: List[Any], kernel: str = "python") -> Dict[str, Any]:
    count = len(records)
    before = ShardedEngine(e11_spec(), shards=8, seed=3)
    t_before = timed(lambda: per_record_ingest(before, records))
    batched = ShardedEngine(e11_spec(), shards=8, seed=3)
    t_batched = timed(lambda: batched.ingest(records))
    if batched.state_dict() != before.state_dict():
        raise AssertionError("batched ingest diverged from the per-record reference")
    fast = ShardedEngine(e11_spec(fast=True), shards=8, seed=3)
    t_fast = timed(lambda: fast.ingest(records))
    t_kernel = None
    if kernel == "numpy":
        kern = ShardedEngine(e11_spec(fast=True, kernel="numpy"), shards=8, seed=3)
        t_kernel = timed(lambda: kern.ingest(records))
    result = {
        "records": count,
        "keys": batched.key_count,
        "per_record_krps": round(count / t_before / 1e3, 1),
        "batched_krps": round(count / t_batched / 1e3, 1),
        "fast_krps": round(count / t_fast / 1e3, 1),
        "kernel_krps": round(count / t_kernel / 1e3, 1) if t_kernel else None,
        "speedup_batched": round(t_before / t_batched, 3),
        "speedup_fast": round(t_before / t_fast, 3),
        # Informational only (not guarded): the keyed-engine stream spreads
        # records over ~10k samplers, so per-key lane batches are a few
        # records wide and numpy's per-call overhead can eat the win
        # entirely (<= 1x is normal here).  The guarded floors live in E7,
        # where the lanes are wide enough to vectorize.
        "speedup_numpy": round(t_fast / t_kernel, 3) if t_kernel else None,
    }
    line = (
        f"[E11] serial: per-record {result['per_record_krps']} krec/s"
        f" | batched {result['batched_krps']} krec/s ({result['speedup_batched']:.2f}x)"
        f" | fast {result['fast_krps']} krec/s ({result['speedup_fast']:.2f}x)"
    )
    if t_kernel:
        line += f" | kernel {result['kernel_krps']} krec/s ({result['speedup_numpy']:.2f}x over fast)"
    print(line)
    return result


def bench_obs(records: List[Any]) -> Dict[str, Any]:
    """Metrics-enabled ingest overhead on the serial batched path.

    Instrumentation is deliberately batch/chunk-granular (no per-record
    metric calls); this run guards that it stays that way.  A whole-run A/B
    on this class of shared hardware is noise-bound (±10% drift between two
    ~1s runs is routine, far above the effect being measured), so the two
    sides are interleaved at fine grain instead: the stream is cut into
    ~100ms slices and each slice is ingested back-to-back into a persistent
    disabled engine and a persistent enabled engine (order swapping every
    slice: whichever side runs second sees the slice's records cache-warm).
    Cyclic GC is paused around each round — gen-2 collections scanning the
    multi-million-object heap land quasi-deterministically on one side and
    were worth a structural ~15% before pausing (a null A/B of two identical
    engines confirms the harness reads ~1.00 with GC paused).  Both sides
    therefore sample the same machine state slice by slice — drift,
    cache-warmth and collector pauses cancel, while a real
    per-ingest/per-chunk overhead accrues on every slice.  Slicing is
    also the stricter test: it multiplies the number of instrumented ingest
    calls for the same record count.  Three rounds, minimum round ratio
    (the noise-floor treatment), capped at 1.05 by the baseline guard.
    """
    count = len(records)
    slices = [records[i : i + _OBS_SLICE] for i in range(0, count, _OBS_SLICE)]
    t_disabled = t_enabled = ratio = None
    registry = MetricsRegistry()
    rounds = 3
    for _ in range(rounds):
        plain = ShardedEngine(e11_spec(), shards=8, seed=3)
        instrumented = ShardedEngine(e11_spec(), shards=8, seed=3, registry=registry)
        gc.collect()
        gc.disable()
        try:
            sum_d = sum_e = 0.0
            for index, chunk in enumerate(slices):
                if index % 2 == 0:
                    sum_d += timed(lambda: plain.ingest(chunk))
                    sum_e += timed(lambda: instrumented.ingest(chunk))
                else:
                    sum_e += timed(lambda: instrumented.ingest(chunk))
                    sum_d += timed(lambda: plain.ingest(chunk))
        finally:
            gc.enable()
        t_disabled = sum_d if t_disabled is None else min(t_disabled, sum_d)
        t_enabled = sum_e if t_enabled is None else min(t_enabled, sum_e)
        round_ratio = sum_e / sum_d
        ratio = round_ratio if ratio is None else min(ratio, round_ratio)
    counted = registry.snapshot()["counters"]["engine.ingest.records"]
    if counted != rounds * count:
        raise AssertionError(
            f"registry counted {counted} records, expected {rounds * count}"
        )
    result = {
        "records": count,
        "disabled_krps": round(count / t_disabled / 1e3, 1),
        "enabled_krps": round(count / t_enabled / 1e3, 1),
        "enabled_over_disabled": round(ratio, 4),
    }
    print(
        f"[E11] obs: disabled {result['disabled_krps']} krec/s"
        f" | enabled {result['enabled_krps']} krec/s"
        f" ({result['enabled_over_disabled']:.3f}x time)"
    )
    return result


def bench_e11_transport(records: List[Any]) -> Dict[str, Any]:
    """Deterministic freight comparison on an E11-shaped sub-batch."""
    batch = [(key, value, None) for key, value in (r[:2] for r in records[:4096])]
    columnar = len(encode_batch(batch))
    pickled = len(pickle.dumps(batch, pickle.HIGHEST_PROTOCOL))
    result = {
        "batch_records": len(batch),
        "columnar_bytes_per_record": round(columnar / len(batch), 3),
        "pickle_bytes_per_record": round(pickled / len(batch), 3),
        "pickle_over_columnar": round(pickled / columnar, 3),
    }
    print(
        f"[E11] transport: columnar {result['columnar_bytes_per_record']} B/rec"
        f" vs pickle {result['pickle_bytes_per_record']} B/rec"
        f" ({result['pickle_over_columnar']:.2f}x smaller)"
    )
    return result


def _decode_proof(payloads: List[bytes]) -> tuple:
    """Record count + key checksum over decoded payloads (the equal-output
    proof both transport sinks reply with)."""
    records = 0
    checksum = 0
    for payload in payloads:
        batch = decode_batch(payload)
        records += len(batch)
        checksum += sum(record[0] for record in batch)
    return records, checksum


def _dispatch_sink_queue(inbox: Any, done: Any) -> None:
    """Echo worker for the queue transport: receive every payload (held in
    memory so the timed phase measures transport, not decoding), then decode
    and prove the output with a record count and key checksum."""
    held = []
    while True:
        message = inbox.get()
        if message is None:
            break
        held.append(message[1])
    done.put(_decode_proof(held))


def _dispatch_sink_shm(inbox: Any, done: Any, ring_config: Any) -> None:
    """Echo worker for the shm-ring transport (same proof of decoded output;
    the per-message work is the real worker-side transport cost: descriptor
    get, ring read, release)."""
    reader = ShmRingReader(*ring_config)
    held = []
    while True:
        message = inbox.get()
        if message is None:
            break
        held.append(reader.read(message[1], message[2]))
        reader.release(message[3])
    done.put(_decode_proof(held))
    reader.close()


def bench_e11_transport_dispatch(records: List[Any], quick: bool) -> Dict[str, Any]:
    """Dispatch-stage cost of the queue vs the shared-memory ring, isolated.

    Inside the full engine rows the dispatch stage is dominated by sampler
    apply time on the 1-core bench container, which buries the transport
    difference in scheduler noise.  This benchmark ships the *same* encoded
    E11 sub-batches (columnar payloads of ``payload_records`` records)
    through the two real transports to an echo worker that decodes and
    checksums every record once the stream ends, and times only the
    coordinator's hand-off loop — exactly the engine's ``dispatch_seconds``
    stage, backpressured by a depth-2 inbox so the hand-off includes each
    transport's real drain cost.  Each transport runs twice and the faster
    run is kept (the usual noise-floor treatment for sub-second timings).
    """
    import multiprocessing

    payload_records = 65_536
    rounds = 16 if quick else 32
    payloads = []
    low = 0
    while low + payload_records <= len(records) and len(payloads) < 6:
        chunk = records[low : low + payload_records]
        payloads.append(
            encode_batch([(key, value, None) for key, value in (r[:2] for r in chunk)])
        )
        low += payload_records
    sends = len(payloads) * rounds
    context = multiprocessing.get_context()
    results: Dict[str, Any] = {
        "payload_records": payload_records,
        "payload_bytes_mean": round(sum(map(len, payloads)) / len(payloads), 1),
        "sends": sends,
    }
    proofs = {}
    for mode in ("columnar", "shm"):
        if mode == "shm" and not HAS_SHARED_MEMORY:
            results["shm"] = None  # documented fallback platform
            continue
        best = None
        for _ in range(2):
            inbox = context.Queue(maxsize=2)
            done = context.Queue()
            if mode == "columnar":
                worker = context.Process(target=_dispatch_sink_queue, args=(inbox, done))
                worker.start()
                started = time.perf_counter()
                for _ in range(rounds):
                    for payload in payloads:
                        inbox.put(("applyc", payload))
                dispatch = time.perf_counter() - started
            else:
                ring = ShmRingWriter(context, 4 << 20)
                worker = context.Process(
                    target=_dispatch_sink_shm, args=(inbox, done, ring.worker_config())
                )
                worker.start()
                started = time.perf_counter()
                for _ in range(rounds):
                    for payload in payloads:
                        while True:
                            slot = ring.offer(payload)
                            if slot is not None:
                                break
                            time.sleep(0.0005)
                        inbox.put(("applym", slot[0], len(payload), slot[1]))
                dispatch = time.perf_counter() - started
            inbox.put(None)
            proof = done.get()
            worker.join()
            if mode == "shm":
                ring.close()
            proofs[mode] = proof
            if best is None or dispatch < best:
                best = dispatch
        results[mode] = {"dispatch_seconds": round(best, 4)}
    if results.get("shm") is not None:
        if proofs["columnar"] != proofs["shm"]:
            raise AssertionError(
                f"transports decoded different streams: {proofs}"
            )
        results["decoded_records"] = proofs["columnar"][0]
        results["shm_over_columnar_dispatch"] = round(
            results["shm"]["dispatch_seconds"] / results["columnar"]["dispatch_seconds"], 3
        )
        print(
            f"[E11] transport dispatch ({sends} x {results['payload_bytes_mean'] / 1024:.0f} KiB"
            f" payloads): columnar {results['columnar']['dispatch_seconds']}s"
            f" vs shm {results['shm']['dispatch_seconds']}s"
            f" ({results['shm_over_columnar_dispatch']}x)"
        )
    return results


def bench_e11_process(
    records: List[Any],
    quick: bool,
    transport: str = "columnar",
    fast: bool = False,
    kernel: str = "python",
    workers: int = 2,
    embed_metrics: bool = True,
) -> Dict[str, Any]:
    subset = records[: 60_000 if quick else 200_000]
    registry = MetricsRegistry()
    with ProcessEngine(
        e11_spec(fast=fast, kernel=kernel), shards=8, seed=3, workers=workers,
        transport=transport, registry=registry,
    ) as engine:
        elapsed = timed(lambda: (engine.ingest(subset), engine.flush()))
        report = engine.transport_report()
        keys = engine.key_count
        snapshot = engine.metrics_snapshot()  # fleet-merged (workers included)
    stages = {
        stage: round(report[stage], 4)
        for stage in ("encode_seconds", "dispatch_seconds", "decode_seconds", "apply_seconds")
    }
    result = {
        "transport": report["transport"],  # effective (shm may downgrade)
        "records": len(subset),
        "keys": keys,
        "workers": workers,
        "cores": os.cpu_count() or 1,
        "fast": fast,
        "kernel": report["kernel"],
        "cascade_compiled": report["cascade_compiled"],
        "krps": round(len(subset) / elapsed / 1e3, 1),
        "encoded_bytes_per_record": round(report["encoded_bytes"] / report["records"], 3),
        "stage_seconds": stages,
    }
    if embed_metrics:
        # The fleet-merged observability snapshot for this run, embedded so
        # every committed bench row carries its own metrics provenance.
        result["metrics"] = snapshot
    print(
        f"[E11] process/{result['transport']}"
        f" (workers={workers}, {result['cores']} core(s), kernel={result['kernel']}):"
        f" {result['krps']} krec/s, stages {stages}"
    )
    return result


def bench_e11_kernel_apply(records: List[Any], quick: bool) -> Dict[str, Any]:
    """Apply-seconds split before/after the vectorized kernel, on the real
    ProcessEngine fast path: the same stream through ``fast=True`` workers
    with the python kernel (the *before*) and the numpy kernel (the
    *after*).  Advisory — the guarded kernel floors live in E7, where the
    lanes are wide enough for the ratio to be stable on 1-core runners."""
    before = bench_e11_process(records, quick, fast=True, embed_metrics=False)
    after = bench_e11_process(records, quick, fast=True, kernel="numpy", embed_metrics=False)
    apply_before = before["stage_seconds"]["apply_seconds"]
    apply_after = after["stage_seconds"]["apply_seconds"]
    result = {
        "python_fast": {"krps": before["krps"], "apply_seconds": apply_before},
        "numpy_fast": {"krps": after["krps"], "apply_seconds": apply_after},
        "apply_speedup_numpy": round(apply_before / apply_after, 3) if apply_after else None,
        "cascade_compiled": after["cascade_compiled"],
    }
    print(
        f"[E11] kernel apply split: python-fast {apply_before}s"
        f" vs numpy-fast {apply_after}s"
        f" ({result['apply_speedup_numpy']}x apply)"
    )
    return result


def bench_multicore(records: List[Any], quick: bool, workers: int) -> Dict[str, Any]:
    """Advisory multi-core row (``--cores N``): the two process transports at
    N workers.  Skipped with a printed note when the host has fewer cores
    than requested — no ratio guard until a multi-core baseline is
    committed, so the row records the trajectory without gating CI on
    whatever runner class happens to execute it."""
    available = os.cpu_count() or 1
    if available < workers:
        print(
            f"[E11] multicore: skipped (requested {workers} workers,"
            f" {available} core(s) available)"
        )
        return {"requested_workers": workers, "available_cores": available, "skipped": True}
    result: Dict[str, Any] = {
        "requested_workers": workers,
        "available_cores": available,
        "skipped": False,
    }
    for transport in ("columnar", "shm"):
        row = bench_e11_process(
            records, quick, transport=transport, workers=workers, embed_metrics=False
        )
        result[transport] = {
            "transport": row["transport"],
            "krps": row["krps"],
            "stage_seconds": row["stage_seconds"],
        }
    return result


def bench_query(records: List[Any], quick: bool) -> Dict[str, Any]:
    """Fleet-wide query cost on a :class:`ProcessEngine`, measured three ways.

    The per-key loop (the *before*) pays one flush plus one request/reply
    round per key — the query-side analogue of per-record ingest.  The
    batched ``query_batch`` resolves the same ≥1k keys in one round per
    worker, and the cached repeat answers the identical unchanged batch out
    of the generation-stamped :class:`QueryCache` without touching the
    workers at all.  All three produce bit-identical samples (asserted).
    The per-key/batched ratio is guarded by ``--baseline``; the acceptance
    floor is 3x.
    """
    subset = records[: 60_000 if quick else 200_000]
    with ProcessEngine(e11_spec(), shards=8, seed=3, workers=2) as engine:
        engine.ingest(subset)
        engine.flush()
        query_keys = sorted(engine.keys(), key=repr)[:1_000]
        if len(query_keys) < 1_000:
            raise AssertionError(f"only {len(query_keys)} live keys; need >= 1000")
        ops = [("sample", key) for key in query_keys]

        def per_key_loop():
            for key in query_keys:
                engine.sample(key)

        # Interleaved best-of-3, same reasoning as timed_best_grouped: the
        # guarded metric is the loop/batched *ratio*, so both paths must
        # sample the same wall window of a drifting 1-core runner.
        t_loop = t_batched = float("inf")
        for _ in range(3):
            t_loop = min(t_loop, timed(per_key_loop))
            t_batched = min(t_batched, timed(lambda: engine.query_batch(ops)))
        # Equal-output proof: the batch is the per-key answers, bit for bit.
        batched_outcomes = engine.query_batch(ops)
        if batched_outcomes != [("ok", engine.sample(key)) for key in query_keys]:
            raise AssertionError("batched query diverged from the per-key loop")
        cache = QueryCache(max_entries=4 * len(ops))
        engine.query_cache = cache
        cold = engine.query_batch(ops)  # fills the cache
        t_cached = timed(lambda: engine.query_batch(ops))
        if cache.hits < len(ops):
            raise AssertionError(f"cached repeat missed: {cache.stats()}")
        if engine.query_batch(ops) != cold:
            raise AssertionError("cached batch diverged from the cold batch")
    result = {
        "records": len(subset),
        "queried_keys": len(query_keys),
        "per_key_qps": round(len(query_keys) / t_loop, 1),
        "batched_qps": round(len(query_keys) / t_batched, 1),
        "cached_qps": round(len(query_keys) / t_cached, 1),
        "speedup_batched": round(t_loop / t_batched, 3),
        "speedup_cached_over_batched": round(t_batched / t_cached, 3),
        "cache": cache.stats(),
    }
    print(
        f"[E11] query (1k keys, workers=2): per-key {result['per_key_qps']} q/s"
        f" | batched {result['batched_qps']} q/s ({result['speedup_batched']:.2f}x)"
        f" | cached {result['cached_qps']} q/s"
        f" ({result['speedup_cached_over_batched']:.2f}x over batched)"
    )
    return result


def bench_recovery(records: List[Any], quick: bool) -> Dict[str, Any]:
    """Self-healing cost, measured both ways the supervisor can hurt.

    *Steady-state tax*: the same stream through a plain ``ProcessEngine``
    and through a supervised one journaling every sub-batch to a per-shard
    WAL (``fsync="batch"``), interleaved best-of-3 on fresh fleets.  The
    WAL-on/WAL-off ratio is the guarded metric, hard-capped at 1.10 — the
    journal rides the already-encoded columnar payload, so it must stay a
    file append, not a second encode.

    *MTTR*: checkpoint a fleet, journal 100k further records (20k quick),
    SIGKILL one worker, and measure kill → healthy: death detection,
    respawn, checkpoint-segment restore and WAL tail replay.  Equal-output
    proof: the healed fleet's ``state_dict`` must equal a never-crashed
    serial run over the same stream.
    """
    baseline = records[: 60_000 if quick else 200_000]
    journal_size = 20_000 if quick else 100_000
    journaled = records[len(baseline) : len(baseline) + journal_size]
    policy = RestartPolicy(max_restarts=3, backoff_base=0.05, backoff_cap=0.5)

    def timed_ingest(wal_dir: str | None) -> float:
        config: Dict[str, Any] = {}
        if wal_dir is not None:
            config = dict(supervise=True, wal_dir=wal_dir, restart_policy=policy)
        with ProcessEngine(
            e11_spec(), shards=8, seed=3, workers=2, **config
        ) as engine:
            def work():
                engine.ingest(baseline)
                engine.flush()
            return timed(work)

    # Interleaved best-of-3 (same reasoning as timed_best_grouped): the
    # guarded metric is the WAL-on/WAL-off *ratio*, so both rows must sample
    # the same wall window of a drifting runner.
    t_plain = t_wal = float("inf")
    for _ in range(3):
        t_plain = min(t_plain, timed_ingest(None))
        with tempfile.TemporaryDirectory(prefix="swsample-bench-wal-") as wal_dir:
            t_wal = min(t_wal, timed_ingest(wal_dir))

    with tempfile.TemporaryDirectory(prefix="swsample-bench-mttr-") as tmp:
        wal_dir = os.path.join(tmp, "wal")
        with ProcessEngine(
            e11_spec(), shards=8, seed=3, workers=2,
            supervise=True, wal_dir=wal_dir, restart_policy=policy,
        ) as engine:
            engine.ingest(baseline)
            write_checkpoint(engine, os.path.join(tmp, "ckpt"))
            engine.ingest(journaled)
            engine.flush()
            wal_bytes = engine._wal.bytes_on_disk()
            chaos.kill_worker(engine, 0)
            started = time.perf_counter()
            chaos.wait_until_healthy(engine, timeout=300)
            mttr = time.perf_counter() - started
            oracle = ShardedEngine(e11_spec(), shards=8, seed=3)
            oracle.ingest(baseline)
            oracle.ingest(journaled)
            if engine.state_dict() != oracle.state_dict():
                raise AssertionError("healed fleet diverged from the serial oracle")
            restarts = engine.liveness()["restarts"]

    result = {
        "records_baseline": len(baseline),
        "records_journaled": len(journaled),
        "wal_bytes_journaled": wal_bytes,
        "restarts": restarts,
        "mttr_seconds": round(mttr, 3),
        "ingest_plain_rps": round(len(baseline) / t_plain, 1),
        "ingest_wal_rps": round(len(baseline) / t_wal, 1),
        "wal_overhead": round(t_wal / t_plain, 3),
    }
    print(
        f"[E11] recovery (workers=2, shards=8): WAL tax {result['wal_overhead']:.3f}x"
        f" ({result['ingest_wal_rps']} vs {result['ingest_plain_rps']} rec/s)"
        f" | MTTR {result['mttr_seconds']:.3f}s to restore + replay"
        f" {len(journaled)} journaled records"
    )
    return result


# -- recording & regression guard ---------------------------------------------


def meta(quick: bool, kernel: str = "python") -> Dict[str, Any]:
    return {
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        # The *resolved* kernel the run was invoked with ("auto" never lands
        # here).  The default process/serial rows always use the python
        # kernel so they stay comparable across baselines; kernel rows are
        # additive.
        "kernel": kernel,
        "numpy_available": HAS_NUMPY,
    }


def run(
    quick: bool,
    out_dir: str,
    skip_process: bool = False,
    kernel: str = "python",
    cores: int | None = None,
) -> Dict[str, Dict[str, Any]]:
    e7 = {"experiment": "E7", "meta": meta(quick, kernel), "results": bench_e7(quick, kernel)}
    records = e11_records(quick)
    e11_results: Dict[str, Any] = {
        "serial": bench_e11_serial(records, kernel),
        "obs": bench_obs(records),
        "transport": bench_e11_transport(records),
    }
    if not skip_process:
        e11_results["transport_dispatch"] = bench_e11_transport_dispatch(records, quick)
        e11_results["query"] = bench_query(records, quick)
        e11_results["recovery"] = bench_recovery(records, quick)
        e11_results["process"] = bench_e11_process(records, quick)
        shm = bench_e11_process(records, quick, transport="shm")
        e11_results["process_shm"] = shm
        # The shm row is only comparable when both rows decoded the same
        # stream into the same fleet shape.
        for field in ("records", "keys"):
            if shm[field] != e11_results["process"][field]:
                raise AssertionError(
                    f"shm and columnar process runs diverged on {field}:"
                    f" {shm[field]} != {e11_results['process'][field]}"
                )
        if kernel == "numpy":
            e11_results["process_kernel"] = bench_e11_kernel_apply(records, quick)
        if cores is not None:
            e11_results["multicore"] = bench_multicore(records, quick, cores)
    e11 = {"experiment": "E11", "meta": meta(quick, kernel), "results": e11_results}
    written = {"BENCH_E7.json": e7, "BENCH_E11.json": e11}
    os.makedirs(out_dir, exist_ok=True)
    for name, payload in written.items():
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")
    # A standalone fleet snapshot (the columnar ProcessEngine run's merged
    # metrics) for the CI artifact; not committed, so it lands in --out only.
    if not skip_process:
        metrics_path = os.path.join(out_dir, "METRICS.json")
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "source": "bench_e11_process[columnar]",
                    "meta": meta(quick),
                    "snapshot": e11_results["process"]["metrics"],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote {metrics_path}")
    return written


def _lookup(results: Dict[str, Any], dotted: str) -> Any:
    node: Any = results
    for part in dotted.split("."):
        node = node[part]
    return node


def check_against_baseline(
    fresh: Dict[str, Dict[str, Any]], baseline_dir: str, tolerance: float
) -> List[str]:
    """Compare guarded metrics against committed baselines; return failures."""
    failures: List[str] = []
    for name, guards in GUARDED_METRICS.items():
        path = os.path.join(baseline_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: no committed baseline at {path}")
            continue
        with open(path, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
        for guard in guards:
            dotted, direction = guard[0], guard[1]
            try:
                raw_value = _lookup(fresh[name]["results"], dotted)
            except (KeyError, TypeError) as error:
                failures.append(f"{name}: cannot compare {dotted}: {error!r}")
                continue
            if direction == "floor":
                # Baseline-independent acceptance floor for *optional* rows:
                # null means the optional path was not active in this run
                # (e.g. the numpy kernel on a numpy-free host) and the guard
                # is skipped; an active row below the floor fails outright.
                if raw_value is None:
                    continue
                floor = float(guard[2])
                if float(raw_value) < floor:
                    failures.append(
                        f"{name}: {dotted} is {raw_value},"
                        f" below the acceptance floor {floor}"
                    )
                continue
            try:
                fresh_value = float(raw_value)
            except (TypeError, ValueError) as error:
                failures.append(f"{name}: cannot compare {dotted}: {error!r}")
                continue
            if direction == "cap":
                # Absolute ceiling, independent of the committed baseline
                # (and of --tolerance): crossing it is a regression outright.
                ceiling = float(guard[2])
                if fresh_value > ceiling:
                    failures.append(
                        f"{name}: {dotted} is {fresh_value}, above the hard cap {ceiling}"
                    )
                continue
            try:
                base_value = float(_lookup(committed["results"], dotted))
            except (KeyError, TypeError) as error:
                failures.append(f"{name}: cannot compare {dotted}: {error!r}")
                continue
            if direction == "min" and fresh_value < base_value / (1.0 + tolerance):
                failures.append(
                    f"{name}: {dotted} regressed to {fresh_value} "
                    f"(baseline {base_value}, tolerance {tolerance:.0%})"
                )
            if direction == "max" and fresh_value > base_value * (1.0 + tolerance):
                failures.append(
                    f"{name}: {dotted} regressed to {fresh_value} "
                    f"(baseline {base_value}, tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller workloads (CI smoke)")
    parser.add_argument(
        "--out", default=os.path.dirname(_SRC), metavar="DIR",
        help="directory for BENCH_E7.json / BENCH_E11.json (default: repo root)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="DIR",
        help="compare fresh results against the committed BENCH_*.json in DIR"
        " and exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=25.0, metavar="PCT",
        help="allowed regression on guarded metrics, percent (default 25)",
    )
    parser.add_argument(
        "--skip-process", action="store_true",
        help="skip the ProcessEngine stage-timing run (e.g. sandboxes without mp)",
    )
    parser.add_argument(
        "--kernel", choices=["python", "numpy", "auto"], default="python",
        help="apply-path kernel for the additive kernel rows (default: python;"
        " 'numpy' fails loudly without the [fast] extra, 'auto' detects)",
    )
    parser.add_argument(
        "--cores", type=int, default=None, metavar="N",
        help="record an advisory multi-core process row at N workers"
        " (skipped with a note when the host has fewer cores)",
    )
    args = parser.parse_args(argv)
    try:
        kernel = resolve_kernel(args.kernel)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    fresh = run(
        args.quick, args.out, skip_process=args.skip_process,
        kernel=kernel, cores=args.cores,
    )
    if args.baseline is not None:
        failures = check_against_baseline(fresh, args.baseline, args.tolerance / 100.0)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check OK (tolerance {args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
