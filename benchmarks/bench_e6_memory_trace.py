"""Experiment E6 — deterministic vs randomized memory over time.

Regenerates the E6 checkpoint table (the optimal sampler's trace is flat; the
chain / over-sampling baselines wander and vary across runs) and times the
per-arrival update including the memory read-out.
Paper claim: the deterministic worst-case bounds are the paper's headline
improvement over Babcock-Datar-Motwani.
"""

import pytest

from _helpers import run_and_report
from repro.baselines import ChainSamplerWR
from repro.core import SequenceSamplerWR
from repro.streams.element import make_stream

STREAM = make_stream(range(5_000))


def test_e6_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E6", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = {row["algorithm"]: row for row in table.as_dicts()}
    optimal = rows["boz-seq-wr"]
    # Flat trace: every checkpoint equals the peak.
    checkpoints = [optimal[key] for key in ("t@20%", "t@40%", "t@60%", "t@80%", "t@100%")]
    assert len(set(checkpoints)) == 1
    assert optimal["peak_var"] == 0


def _ingest_with_memory_probe(sampler):
    peak = 0
    for element in STREAM:
        sampler.append(element.value, element.timestamp)
        peak = max(peak, sampler.memory_words())
    return peak


def test_e6_kernel_optimal_ingest_with_probe(benchmark):
    benchmark(lambda: _ingest_with_memory_probe(SequenceSamplerWR(n=1_000, k=16, rng=1)))


def test_e6_kernel_chain_ingest_with_probe(benchmark):
    benchmark(lambda: _ingest_with_memory_probe(ChainSamplerWR(n=1_000, k=16, rng=1)))
