"""Experiment E5 — uniformity of every sampler over window positions.

Regenerates the E5 table (χ² p-values and total-variation distances for all
four optimal variants, the valid baselines, and the intentionally wrong
whole-stream reservoir) and times the draw path of the optimal samplers.
Paper claim: the correctness statements of Theorems 2.1, 2.2, 3.9 and 4.4.
"""

import pytest

from _helpers import feed_all, run_and_report
from repro.core import SequenceSamplerWR, TimestampSamplerWR
from repro.streams.element import make_stream

STREAM = make_stream(range(3_000))


def test_e5_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E5", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    verdicts = {row["sampler"]: row["uniform?"] for row in table.as_dicts()}
    assert verdicts["boz-seq-wr"] == "yes"
    assert verdicts["boz-ts-wor"] == "yes"
    assert verdicts["whole-stream (naive)"].startswith("NO")


def test_e5_kernel_seq_wr_draw(benchmark):
    sampler = feed_all(SequenceSamplerWR(n=500, k=256, rng=1), STREAM)
    benchmark(sampler.sample)


def test_e5_kernel_ts_wr_draw(benchmark):
    sampler = feed_all(TimestampSamplerWR(t0=500.0, k=256, rng=1), STREAM, advance_time=True)
    benchmark(sampler.sample)
