"""Helpers shared by the benchmark modules (not collected by pytest)."""

from __future__ import annotations

from typing import Optional


def run_and_report(experiment_id: str, scale: str, benchmark=None, seed: int = 0):
    """Run one experiment, print its table and attach headline numbers to the benchmark."""
    from repro.harness import run_experiment

    table = run_experiment(experiment_id, scale=scale, seed=seed)
    print()
    print(table.to_text())
    if benchmark is not None:
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["rows"] = len(table.rows)
    return table


def feed_all(sampler, elements, advance_time: bool = False):
    """Feed a pre-built stream into a sampler (the timed kernel of several benches)."""
    for element in elements:
        if advance_time and hasattr(sampler, "advance_time"):
            sampler.advance_time(element.timestamp)
        sampler.append(element.value, element.timestamp)
    return sampler
