"""Experiment E9 — independence of samples from disjoint windows (§1.3.4).

Regenerates the E9 contingency-test table and times the paired-sampling kernel
(one full run of a stream spanning two disjoint windows, with a sample taken
in each).
"""

import pytest

from _helpers import run_and_report
from repro.core import SequenceSamplerWR
from repro.streams.element import make_stream

WINDOW = 64
STREAM = make_stream(range(3 * WINDOW))


def test_e9_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E9", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in table.as_dicts():
        assert row["independent?"] == "yes"
        assert abs(row["correlation"]) < 0.2


def _paired_samples(seed):
    sampler = SequenceSamplerWR(n=WINDOW, k=1, rng=seed)
    first = None
    for position, element in enumerate(STREAM):
        sampler.append(element.value, element.timestamp)
        if position == 2 * WINDOW - 1:
            first = sampler.sample()[0].index
    second = sampler.sample()[0].index
    return first, second


def test_e9_kernel_paired_sampling(benchmark):
    counter = iter(range(10_000_000))
    benchmark(lambda: _paired_samples(next(counter)))
