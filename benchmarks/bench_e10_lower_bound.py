"""Experiment E10 — the Ω(log n) lower-bound stream of Lemma 3.10.

Regenerates the E10 table (memory words on the doubling-burst arrival pattern
as the window size grows) and times ingest of the burst stream.
Paper claim: Lemma 3.10 (lower bound) together with Theorem 3.9 (matching
upper bound) — memory on this pattern must and does grow as log n.
"""

import pytest

from _helpers import feed_all, run_and_report
from repro.core import TimestampSamplerWR
from repro.streams import arrivals
from repro.streams.element import make_stream


def _burst_stream(t0):
    timestamps = arrivals.lower_bound_burst(t0, tail_length=2 * t0, scale=2**t0)
    return make_stream(range(len(timestamps)), timestamps)


STREAM_SMALL = _burst_stream(6)


def test_e10_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E10", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    optimal_rows = sorted(
        (row for row in table.as_dicts() if row["algorithm"] == "boz-ts-wr"),
        key=lambda row: row["log2(window)"],
    )
    assert optimal_rows[0]["peak_words"] < optimal_rows[-1]["peak_words"]


def test_e10_kernel_burst_ingest(benchmark):
    benchmark(lambda: feed_all(TimestampSamplerWR(t0=6.0, k=1, rng=1), STREAM_SMALL, advance_time=True))
