"""Experiment E8 — Section-5 applications over sliding windows.

Regenerates the E8 table (frequency-moment F2, entropy and triangle-count
estimation against the exact window statistics, including the biased naive
baseline) and times the estimator update path.
Paper claims: Theorem 5.1 and Corollaries 5.2, 5.3, 5.4.
"""

import pytest

from _helpers import run_and_report
from repro.applications import SlidingEntropyEstimator, SlidingFrequencyMoment, SlidingTriangleCounter
from repro.streams import generators, graph

VALUES = generators.take(generators.zipfian_integers(64, skew=1.3, rng=5), 8_000)
EDGES = graph.erdos_renyi_edges(40, 0.5, rng=6)


def test_e8_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E8", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = table.as_dicts()
    optimal_f2 = next(
        row for row in rows if row["application"].startswith("F2") and row["sampler"] == "boz-seq-wr"
    )
    naive_f2 = next(row for row in rows if "naive" in row["sampler"])
    assert optimal_f2["relative_error"] < naive_f2["relative_error"]


def _run_f2():
    estimator = SlidingFrequencyMoment(2.0, window="sequence", n=2_000, estimators=128, rng=1)
    for value in VALUES:
        estimator.append(value)
    return estimator.estimate()


def _run_entropy():
    estimator = SlidingEntropyEstimator(window="sequence", n=2_000, estimators=128, rng=2)
    for value in VALUES:
        estimator.append(value)
    return estimator.estimate_entropy()


def _run_triangles():
    counter = SlidingTriangleCounter(num_vertices=40, window="sequence", n=len(EDGES), estimators=256, rng=3)
    counter.extend(EDGES)
    return counter.estimate()


def test_e8_kernel_frequency_moment(benchmark):
    assert benchmark(_run_f2) > 0


def test_e8_kernel_entropy(benchmark):
    assert benchmark(_run_entropy) > 0


def test_e8_kernel_triangles(benchmark):
    assert benchmark(_run_triangles) >= 0
