"""Experiment E2 — sequence-window sampling WITHOUT replacement, memory words.

Regenerates the E2 table (optimal vs Bernoulli over-sampling vs window buffer)
and times ingest plus query for the optimal k-WoR sampler.
Paper claim: Theorem 2.2 — O(k) words, deterministic, no failure probability.
"""

import pytest

from _helpers import feed_all, run_and_report
from repro.baselines import OversamplingSamplerSeqWOR
from repro.core import SequenceSamplerWOR
from repro.streams.element import make_stream

WINDOW = 2_000
STREAM = make_stream(range(4 * WINDOW))


def test_e2_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E2", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in table.as_dicts():
        if row["algorithm"] == "boz-optimal":
            assert row["failure_rate"] == 0


@pytest.mark.parametrize("k", [8, 64])
def test_e2_kernel_optimal_ingest(benchmark, k):
    benchmark(lambda: feed_all(SequenceSamplerWOR(n=WINDOW, k=k, rng=2), STREAM))


def test_e2_kernel_optimal_query(benchmark):
    sampler = feed_all(SequenceSamplerWOR(n=WINDOW, k=64, rng=3), STREAM)
    benchmark(sampler.sample)


def test_e2_kernel_oversampling_ingest(benchmark):
    benchmark(lambda: feed_all(OversamplingSamplerSeqWOR(n=WINDOW, k=64, rng=4), STREAM))
