"""Experiment E4 — timestamp-window sampling WITHOUT replacement, memory words.

Regenerates the E4 table (optimal delayed-coverage + black-box reduction vs
Gemulla-Lehner k-highest-priority vs over-sampling) and times ingest/query.
Paper claim: Theorem 4.4 — O(k log n) words, deterministic, matching the
Gemulla-Lehner lower bound.
"""

import random

import pytest

from _helpers import feed_all, run_and_report
from repro.baselines import PrioritySamplerWOR
from repro.core import TimestampSamplerWOR
from repro.streams.element import make_stream


def _poisson_stream(length, seed=0):
    source = random.Random(seed)
    current, timestamps = 0.0, []
    for _ in range(length):
        current += source.expovariate(1.0)
        timestamps.append(current)
    return make_stream(range(length), timestamps)


SPAN = 1_000.0
STREAM = _poisson_stream(3_000)


def test_e4_table(benchmark, scale):
    table = benchmark.pedantic(
        lambda: run_and_report("E4", scale), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in table.as_dicts():
        if row["algorithm"] == "boz-optimal":
            assert row["failure_rate"] == 0
            assert row["peak_var"] == 0


@pytest.mark.parametrize("k", [4, 8])
def test_e4_kernel_optimal_ingest(benchmark, k):
    benchmark(lambda: feed_all(TimestampSamplerWOR(t0=SPAN, k=k, rng=1), STREAM, advance_time=True))


def test_e4_kernel_optimal_query(benchmark):
    sampler = feed_all(TimestampSamplerWOR(t0=SPAN, k=8, rng=2), STREAM, advance_time=True)
    benchmark(sampler.sample)


@pytest.mark.parametrize("k", [4, 16])
def test_e4_kernel_gemulla_lehner_ingest(benchmark, k):
    benchmark(lambda: feed_all(PrioritySamplerWOR(t0=SPAN, k=k, rng=1), STREAM, advance_time=True))
