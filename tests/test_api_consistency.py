"""Cross-cutting API contract tests.

Every sampler in the library — the paper's four optimal variants and every
baseline — must satisfy the same behavioural contract: the `WindowSampler`
interface, sane metadata, sensible reactions to edge cases, and docstrings on
all public entry points.  Running the same assertions over the whole catalog
keeps the backends genuinely interchangeable (which is what Theorem 5.1 needs).
"""

import inspect

import pytest

import repro
from repro.core import base as core_base
from repro.core.facade import sliding_window_sampler
from repro.exceptions import EmptyWindowError
from repro.streams.element import StreamElement

# (label, factory kwargs) for every constructible sampler configuration.
CONFIGURATIONS = [
    ("seq-wr-optimal", dict(window="sequence", n=40, replacement=True, algorithm="optimal")),
    ("seq-wor-optimal", dict(window="sequence", n=40, replacement=False, algorithm="optimal")),
    ("ts-wr-optimal", dict(window="timestamp", t0=40.0, replacement=True, algorithm="optimal")),
    ("ts-wor-optimal", dict(window="timestamp", t0=40.0, replacement=False, algorithm="optimal")),
    ("seq-wr-chain", dict(window="sequence", n=40, replacement=True, algorithm="chain")),
    ("ts-wr-priority", dict(window="timestamp", t0=40.0, replacement=True, algorithm="priority")),
    ("ts-wor-priority", dict(window="timestamp", t0=40.0, replacement=False, algorithm="priority-wor")),
    ("seq-wor-oversampling", dict(window="sequence", n=40, replacement=False, algorithm="oversampling")),
    ("seq-wr-buffer", dict(window="sequence", n=40, replacement=True, algorithm="buffer")),
    ("ts-wor-buffer", dict(window="timestamp", t0=40.0, replacement=False, algorithm="buffer")),
    ("seq-wr-naive", dict(window="sequence", n=40, replacement=True, algorithm="whole-stream")),
]


def build(kwargs, k=3, seed=7):
    return sliding_window_sampler(k=k, rng=seed, **kwargs)


@pytest.mark.parametrize("label,kwargs", CONFIGURATIONS, ids=[c[0] for c in CONFIGURATIONS])
class TestCommonContract:
    def test_empty_window_raises_empty_window_error(self, label, kwargs):
        sampler = build(kwargs)
        with pytest.raises(EmptyWindowError):
            sampler.sample()

    def test_sample_returns_stream_elements(self, label, kwargs):
        sampler = build(kwargs)
        for value in range(200):
            sampler.append(value, float(value))
        drawn = sampler.sample()
        assert 1 <= len(drawn) <= 3
        assert all(isinstance(element, StreamElement) for element in drawn)
        assert sampler.sample_values() is not None
        assert isinstance(sampler.sample_one(), StreamElement)

    def test_metadata_and_counters(self, label, kwargs):
        sampler = build(kwargs)
        assert sampler.k == 3
        assert sampler.algorithm and sampler.algorithm != "abstract"
        assert isinstance(sampler.with_replacement, bool)
        assert isinstance(sampler.deterministic_memory, bool)
        for value in range(50):
            sampler.append(value, float(value))
        assert sampler.total_arrivals == 50

    def test_memory_words_positive_and_integer(self, label, kwargs):
        sampler = build(kwargs)
        for value in range(120):
            sampler.append(value, float(value))
            words = sampler.memory_words()
            assert isinstance(words, int)
            assert words > 0

    def test_candidates_match_memory_scale(self, label, kwargs):
        sampler = build(kwargs)
        for value in range(120):
            sampler.append(value, float(value))
        candidates = list(sampler.iter_candidates())
        # Every retained candidate costs at least one word.
        assert sampler.memory_words() >= len(candidates)

    def test_determinism_flag_is_honest(self, label, kwargs):
        """Samplers advertising deterministic memory must have seed-independent footprints."""
        def final_words(seed):
            sampler = sliding_window_sampler(k=3, rng=seed, **kwargs)
            for value in range(300):
                sampler.append(value, float(value))
            return sampler.memory_words()

        baseline = build(kwargs)
        if baseline.deterministic_memory:
            assert len({final_words(seed) for seed in range(5)}) == 1


class TestDocumentation:
    """Every public class/function carries a docstring."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core",
            "repro.core.sequence",
            "repro.core.timestamp",
            "repro.core.timestamp_wor",
            "repro.core.covering",
            "repro.core.implicit_events",
            "repro.core.reduction",
            "repro.baselines",
            "repro.applications",
            "repro.analysis",
            "repro.streams",
            "repro.windows",
            "repro.harness",
            "repro.sketches",
            "repro.engine",
        ],
    )
    def test_modules_and_public_members_have_docstrings(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()
        for name in getattr(module, "__all__", []):
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__ and member.__doc__.strip(), f"{module_name}.{name} lacks a docstring"

    def test_package_version_is_exposed(self):
        assert repro.__version__

    def test_base_sampler_public_methods_documented(self):
        for name, member in inspect.getmembers(core_base.WindowSampler):
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"WindowSampler.{name} lacks a docstring"


class TestExtendPairs:
    """extend(..., time_value_pairs=True) batch-feeds (timestamp, value) records."""

    @pytest.mark.parametrize("label,kwargs", CONFIGURATIONS, ids=[c[0] for c in CONFIGURATIONS])
    def test_pairs_mode_equals_manual_appends(self, label, kwargs):
        feed = [(float(index), index * 11) for index in range(80)]
        batched = build(kwargs)
        batched.extend(feed, time_value_pairs=True)
        manual = build(kwargs)
        for timestamp, value in feed:
            manual.append(value, timestamp)
        assert batched.total_arrivals == manual.total_arrivals == 80
        assert batched.sample() == manual.sample()

    def test_pairs_mode_honours_timestamps(self):
        sampler = build(dict(window="timestamp", t0=5.0, replacement=True, algorithm="optimal"))
        sampler.extend([(0.0, "a"), (3.0, "b"), (100.0, "c")], time_value_pairs=True)
        assert sampler.now == 100.0
        # Only the last element is still active in the 5-unit window.
        assert sampler.sample_values() == ["c", "c", "c"]

    def test_default_mode_still_treats_tuples_as_values(self):
        sampler = build(dict(window="sequence", n=40, replacement=True, algorithm="optimal"))
        edges = [(1, 2), (2, 3), (3, 1)]
        sampler.extend(edges)
        assert sampler.total_arrivals == 3
        assert sampler.sample_values()[0] in edges


class TestVersionSync:
    def test_pyproject_version_matches_package(self):
        import os
        import re

        pyproject = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "pyproject.toml")
        with open(pyproject, "r", encoding="utf-8") as handle:
            match = re.search(r'^version\s*=\s*"([^"]+)"', handle.read(), re.MULTILINE)
        assert match, "pyproject.toml lacks a project version"
        assert match.group(1) == repro.__version__
