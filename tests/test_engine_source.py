"""Streaming ingest sources: JSONL parsing, batching, engine wiring."""

import json

import pytest

from repro.engine import (
    ParallelEngine,
    SamplerSpec,
    ShardedEngine,
    batched,
    ingest_jsonl,
    jsonl_records,
)
from repro.exceptions import ConfigurationError


class TestJsonlRecords:
    def test_object_and_array_forms(self):
        lines = [
            '{"key": "alice", "value": 1}',
            '{"key": "bob", "value": 2, "timestamp": 3.5}',
            '["carol", 7]',
            '["dave", 8, 9.0]',
        ]
        assert list(jsonl_records(lines)) == [
            ("alice", 1),
            ("bob", 2, 3.5),
            ("carol", 7),
            ("dave", 8, 9.0),
        ]

    def test_blank_lines_skipped(self):
        assert list(jsonl_records(["", "  \n", '["a", 1]', "\n"])) == [("a", 1)]

    def test_array_keys_become_tuples(self):
        records = list(jsonl_records(['{"key": ["tenant", 4], "value": 1}', '[["t", 5], 2]']))
        assert records == [(("tenant", 4), 1), (("t", 5), 2)]
        # ... so they are routable stream keys.
        engine = ShardedEngine(SamplerSpec(window="sequence", n=8, k=1))
        engine.ingest(records)
        assert engine.key_count == 2

    def test_invalid_json_reports_line_number(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            list(jsonl_records(['["a", 1]', "{nope"]))

    def test_wrong_shapes_rejected(self):
        with pytest.raises(ConfigurationError, match="'key' and 'value'"):
            list(jsonl_records(['{"value": 1}']))
        with pytest.raises(ConfigurationError, match="2 or 3 items"):
            list(jsonl_records(['["only-key"]']))
        with pytest.raises(ConfigurationError, match="object or an array"):
            list(jsonl_records(["42"]))

    def test_prefix_yields_before_the_failure(self):
        produced = []
        with pytest.raises(ConfigurationError):
            for record in jsonl_records(['["a", 1]', "broken"]):
                produced.append(record)
        assert produced == [("a", 1)]


class TestBatched:
    def test_slices_evenly_and_keeps_remainder(self):
        assert list(batched(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
        assert list(batched([], 3)) == []

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            list(batched([1], 0))


class TestIngestJsonl:
    def lines(self, count):
        return [json.dumps({"key": f"u{i % 9}", "value": i}) for i in range(count)]

    def test_streams_into_serial_engine(self):
        engine = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2)
        assert ingest_jsonl(engine, self.lines(1_000), batch_size=64) == 1_000
        assert engine.total_arrivals == 1_000
        assert engine.key_count == 9

    def test_streams_into_parallel_engine(self):
        with ParallelEngine(
            SamplerSpec(window="sequence", n=16, k=2), shards=4, workers=2
        ) as engine:
            assert ingest_jsonl(engine, self.lines(1_000), batch_size=64) == 1_000
            assert engine.total_arrivals == 1_000

    def test_limit_caps_the_stream(self):
        engine = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2)
        assert ingest_jsonl(engine, self.lines(1_000), batch_size=64, limit=100) == 100
        assert engine.total_arrivals == 100

    def test_matches_direct_ingest(self):
        lines = self.lines(500)
        streamed = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2, seed=4)
        ingest_jsonl(streamed, lines, batch_size=37)
        direct = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2, seed=4)
        direct.ingest([(f"u{i % 9}", i) for i in range(500)])
        assert streamed.state_dict() == direct.state_dict()
