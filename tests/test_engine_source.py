"""Streaming ingest sources: JSONL parsing, batching, engine wiring."""

import json

import pytest

from repro.engine import (
    ParallelEngine,
    SamplerSpec,
    ShardedEngine,
    batched,
    freeze_key,
    ingest_jsonl,
    jsonl_records,
)
from repro.exceptions import ConfigurationError


class TestFreezeKey:
    def test_scalars_pass_through(self):
        for key in ("a", b"a", 7, 7.5, True, None):
            assert freeze_key(key) is key

    def test_nested_lists_become_nested_tuples(self):
        assert freeze_key([["a", ["b"]], 4]) == (("a", ("b",)), 4)
        assert freeze_key([]) == ()

    def test_rejects_unhashable_leaves_with_line_number(self):
        with pytest.raises(ConfigurationError, match="line 12.*dict"):
            freeze_key(["a", {"b": 1}], line_number=12)
        with pytest.raises(ConfigurationError, match="dict"):
            freeze_key({"b": 1})


class TestJsonlRecords:
    def test_object_and_array_forms(self):
        lines = [
            '{"key": "alice", "value": 1}',
            '{"key": "bob", "value": 2, "timestamp": 3.5}',
            '["carol", 7]',
            '["dave", 8, 9.0]',
        ]
        assert list(jsonl_records(lines)) == [
            ("alice", 1),
            ("bob", 2, 3.5),
            ("carol", 7),
            ("dave", 8, 9.0),
        ]

    def test_blank_lines_skipped(self):
        assert list(jsonl_records(["", "  \n", '["a", 1]', "\n"])) == [("a", 1)]

    def test_array_keys_become_tuples(self):
        records = list(jsonl_records(['{"key": ["tenant", 4], "value": 1}', '[["t", 5], 2]']))
        assert records == [(("tenant", 4), 1), (("t", 5), 2)]
        # ... so they are routable stream keys.
        engine = ShardedEngine(SamplerSpec(window="sequence", n=8, k=1))
        engine.ingest(records)
        assert engine.key_count == 2

    def test_nested_array_keys_become_nested_tuples(self):
        # Regression: the conversion used to be shallow (`tuple(key)`), so a
        # nested key smuggled an inner list past parsing and blew up with an
        # opaque TypeError inside ingest.
        records = list(
            jsonl_records(['{"key": [["a", ["b"]], 4], "value": 1}', '[[["x"], 2], 9]'])
        )
        assert records == [((("a", ("b",)), 4), 1), ((("x",), 2), 9)]
        engine = ShardedEngine(SamplerSpec(window="sequence", n=8, k=1))
        engine.ingest(records)
        assert engine.key_count == 2
        assert engine.sample_values((("a", ("b",)), 4)) == [1]

    def test_unhashable_keys_fail_loudly_with_line_number(self):
        for bad in ('{"key": {"a": 1}, "value": 1}', '[["ok", {"a": 1}], 2]'):
            with pytest.raises(ConfigurationError, match="line 2.*dict"):
                list(jsonl_records(['["fine", 0]', bad]))

    def test_invalid_json_reports_line_number(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            list(jsonl_records(['["a", 1]', "{nope"]))

    def test_wrong_shapes_rejected(self):
        with pytest.raises(ConfigurationError, match="'key' and 'value'"):
            list(jsonl_records(['{"value": 1}']))
        with pytest.raises(ConfigurationError, match="2 or 3 items"):
            list(jsonl_records(['["only-key"]']))
        with pytest.raises(ConfigurationError, match="object or an array"):
            list(jsonl_records(["42"]))

    def test_prefix_yields_before_the_failure(self):
        produced = []
        with pytest.raises(ConfigurationError):
            for record in jsonl_records(['["a", 1]', "broken"]):
                produced.append(record)
        assert produced == [("a", 1)]


class TestBatched:
    def test_slices_evenly_and_keeps_remainder(self):
        assert list(batched(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
        assert list(batched([], 3)) == []

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            list(batched([1], 0))

    def test_rejects_nonpositive_size_eagerly(self):
        # Regression: batched() was a plain generator, so the size check was
        # deferred until first iteration — an unconsumed batched(records, 0)
        # failed silently.  The wrapper must raise at the call site.
        with pytest.raises(ConfigurationError):
            batched([1], 0)
        with pytest.raises(ConfigurationError):
            batched([1], -3)

    def test_stays_lazy_after_eager_validation(self):
        def exploding():
            raise AssertionError("source must not be consumed at call time")
            yield  # pragma: no cover

        batches = batched(exploding(), 2)  # no error: source untouched
        with pytest.raises(AssertionError):
            next(iter(batches))


class TestIngestJsonl:
    def lines(self, count):
        return [json.dumps({"key": f"u{i % 9}", "value": i}) for i in range(count)]

    def test_streams_into_serial_engine(self):
        engine = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2)
        assert ingest_jsonl(engine, self.lines(1_000), batch_size=64) == 1_000
        assert engine.total_arrivals == 1_000
        assert engine.key_count == 9

    def test_streams_into_parallel_engine(self):
        with ParallelEngine(
            SamplerSpec(window="sequence", n=16, k=2), shards=4, workers=2
        ) as engine:
            assert ingest_jsonl(engine, self.lines(1_000), batch_size=64) == 1_000
            assert engine.total_arrivals == 1_000

    def test_limit_caps_the_stream(self):
        engine = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2)
        assert ingest_jsonl(engine, self.lines(1_000), batch_size=64, limit=100) == 100
        assert engine.total_arrivals == 100

    def test_matches_direct_ingest(self):
        lines = self.lines(500)
        streamed = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2, seed=4)
        ingest_jsonl(streamed, lines, batch_size=37)
        direct = ShardedEngine(SamplerSpec(window="sequence", n=16, k=2), shards=2, seed=4)
        direct.ingest([(f"u{i % 9}", i) for i in range(500)])
        assert streamed.state_dict() == direct.state_dict()
