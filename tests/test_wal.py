"""The per-shard write-ahead log: framing, torn tails, corruption classes.

The WAL's one job is to make worker death lossless without ever replaying
garbage.  That splits into three distinct on-disk damage classes the module
must keep apart: a *torn tail* (crash mid-append — structurally detectable,
silently truncated with a warning), a *mid-journal* checksum mismatch (not
explainable as a torn append — fail loudly), and a checksum-valid frame the
columnar codec rejects (a forged or misdirected record — fail loudly with
byte-offset context, never "helpfully" truncate).  These tests pin each
class, plus the append/replay round trip, the fsync knob and the metrics.
"""

import os
import struct

import pytest

from repro.engine.transport import decode_batch, encode_batch
from repro.engine.wal import (
    FSYNC_MODES,
    RECORD_HEADER,
    WriteAheadLog,
    frame_record,
    shard_wal_name,
)
from repro.exceptions import ConfigurationError, TransportError
from repro.obs import MetricsRegistry


def batch_payload(start, count, shardkey="k"):
    return encode_batch(
        [(f"{shardkey}-{i % 3}", start + i, None) for i in range(count)]
    )


class TestRoundTrip:
    def test_append_tail_replay(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        first = batch_payload(0, 5)
        second = batch_payload(5, 7)
        other = batch_payload(100, 2)
        wal.append(3, first)
        wal.append(3, second)
        wal.append(1, other)
        assert wal.tail(3) == [first, second]
        assert wal.tail(1) == [other]
        assert wal.tail(2) == []  # never written
        assert dict(wal.replay()) == {1: [other], 3: [first, second]}
        assert wal.shards_on_disk() == [1, 3]
        wal.close()

    def test_payloads_decode_to_original_batches(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        batch = [("alpha", 1, None), ("beta", 2, None)]
        wal.append(0, encode_batch(batch))
        (payload,) = wal.tail(0)
        assert decode_batch(payload) == batch
        wal.close()

    def test_append_survives_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        payload = batch_payload(0, 4)
        wal.append(2, payload)
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.tail(2) == [payload]
        reopened.append(2, payload)
        assert reopened.tail(2) == [payload, payload]
        reopened.close()

    def test_truncate_resets_all_shards(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(0, batch_payload(0, 3))
        wal.append(4, batch_payload(3, 3))
        assert wal.bytes_on_disk() > 0
        wal.truncate()
        assert wal.bytes_on_disk() == 0
        assert wal.shards_on_disk() == []
        # Handles stay usable after a truncation (checkpoint mid-life).
        wal.append(0, batch_payload(6, 3))
        assert len(wal.tail(0)) == 1
        wal.close()

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(ConfigurationError):
            wal.append(0, batch_payload(0, 1))


class TestDurabilityKnob:
    @pytest.mark.parametrize("mode", FSYNC_MODES)
    def test_modes_round_trip(self, tmp_path, mode):
        wal = WriteAheadLog(str(tmp_path), fsync=mode)
        payload = batch_payload(0, 3)
        wal.append(0, payload)
        wal.sync()
        assert wal.tail(0) == [payload]
        wal.close()

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(str(tmp_path), fsync="eventually")


class TestTornTail:
    """Crash mid-append: structurally incomplete tails truncate, quietly
    keeping every record before them — and only genuinely *tail* damage
    qualifies."""

    @pytest.mark.parametrize("drop", [1, 3, RECORD_HEADER.size + 1])
    def test_torn_final_record_is_truncated_with_warning(self, tmp_path, drop, caplog):
        wal = WriteAheadLog(str(tmp_path))
        keep = batch_payload(0, 4)
        torn = batch_payload(4, 4)
        wal.append(7, keep)
        wal.append(7, torn)
        wal.close()
        path = os.path.join(str(tmp_path), shard_wal_name(7))
        os.truncate(path, os.path.getsize(path) - drop)
        reopened = WriteAheadLog(str(tmp_path))
        with caplog.at_level("WARNING", logger="repro.engine.wal"):
            assert reopened.tail(7) == [keep]
        assert any("torn WAL tail" in record.message for record in caplog.records)
        # The truncation is physical: a second read is clean, no re-warning.
        frame = frame_record(keep)
        assert os.path.getsize(path) == len(frame)
        assert reopened.tail(7) == [keep]
        reopened.close()

    def test_torn_header_only_file(self, tmp_path):
        path = os.path.join(str(tmp_path), shard_wal_name(0))
        with open(path, "wb") as handle:
            handle.write(b"\x01\x02\x03")  # shorter than one header
        wal = WriteAheadLog(str(tmp_path))
        assert wal.tail(0) == []
        assert os.path.getsize(path) == 0
        wal.close()

    def test_checksum_damage_on_final_frame_counts_as_torn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        keep = batch_payload(0, 4)
        wal.append(2, keep)
        wal.append(2, batch_payload(4, 4))
        wal.close()
        path = os.path.join(str(tmp_path), shard_wal_name(2))
        # Flip the last payload byte: checksum mismatch confined to the tail.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.tail(2) == [keep]
        reopened.close()


class TestCorruption:
    """Damage that cannot be a torn append must fail loudly with context —
    truncating it would silently lose acknowledged records."""

    def test_mid_journal_checksum_mismatch_raises_with_offset(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        first = batch_payload(0, 4)
        wal.append(5, first)
        wal.append(5, batch_payload(4, 4))
        wal.close()
        # Corrupt the FIRST record: bytes follow it, so this is not a tear.
        path = os.path.join(str(tmp_path), shard_wal_name(5))
        with open(path, "r+b") as handle:
            handle.seek(RECORD_HEADER.size + 2)
            handle.write(b"\xff")
        reopened = WriteAheadLog(str(tmp_path))
        with pytest.raises(TransportError, match="offset 0"):
            reopened.tail(5)
        with pytest.raises(TransportError, match="not a torn tail"):
            reopened.tail(5)
        reopened.close()

    def test_checksum_valid_but_undecodable_record_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        good = batch_payload(0, 4)
        wal.append(1, good)
        wal.close()
        path = os.path.join(str(tmp_path), shard_wal_name(1))
        offset = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(frame_record(b"definitely not SWT1"))
        reopened = WriteAheadLog(str(tmp_path))
        with pytest.raises(TransportError, match=f"offset {offset}"):
            reopened.tail(1)
        with pytest.raises(TransportError, match="checksum valid"):
            reopened.tail(1)
        reopened.close()


class TestMetrics:
    def test_counters(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), registry=registry)
        wal.append(0, batch_payload(0, 5))
        wal.append(0, batch_payload(5, 2), records=2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["wal.records"] == 7
        assert snapshot["counters"]["wal.bytes"] == wal.bytes_on_disk()
        wal.close()
        path = os.path.join(str(tmp_path), shard_wal_name(0))
        os.truncate(path, os.path.getsize(path) - 1)
        reopened = WriteAheadLog(str(tmp_path), registry=registry)
        reopened.tail(0)
        assert registry.snapshot()["counters"]["wal.truncations"] == 1
        reopened.close()

    def test_record_count_read_from_payload_header(self, tmp_path):
        # append() with records=None must parse the SWT1 record count.
        registry = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), registry=registry)
        payload = batch_payload(0, 9)
        (expected,) = struct.unpack_from("<I", payload, 4)
        wal.append(0, payload)
        assert registry.snapshot()["counters"]["wal.records"] == expected == 9
        wal.close()
