"""Property-based tests for the black-box reduction and the statistics helpers."""

import math
import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import chi_square_sf, quantile, regularized_gamma_p, regularized_gamma_q
from repro.core.reduction import build_k_sample, extend_without_replacement


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),   # b  (current domain size)
    st.integers(min_value=1, max_value=10),   # a  (current subset size)
    st.integers(min_value=0, max_value=2**31),
)
def test_extend_without_replacement_properties(b, a, seed):
    assume(a <= b)
    rng = random.Random(seed)
    current = rng.sample(range(1, b + 1), a)
    single = rng.randint(1, b + 1)
    result = extend_without_replacement(current, single, b + 1)
    assert len(result) == a + 1
    assert len(set(result)) == a + 1
    assert set(current) <= set(result)
    assert all(1 <= element <= b + 1 for element in result)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),   # k
    st.integers(min_value=1, max_value=40),   # extra domain beyond k
    st.integers(min_value=0, max_value=2**31),
)
def test_build_k_sample_properties(k, extra, seed):
    n = k + extra
    rng = random.Random(seed)
    singles = [rng.randint(1, n - k + 1 + j) for j in range(k)]
    newest = [n - k + 1 + j for j in range(1, k)]
    result = build_k_sample(singles, newest)
    assert len(result) == k
    assert len(set(result)) == k
    assert all(1 <= element <= n for element in result)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=80.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)
def test_regularized_gamma_complement_and_range(shape, x):
    p = regularized_gamma_p(shape, x)
    q = regularized_gamma_q(shape, x)
    assert 0.0 <= p <= 1.0
    assert 0.0 <= q <= 1.0
    assert math.isclose(p + q, 1.0, abs_tol=1e-8)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    st.integers(min_value=1, max_value=200),
)
def test_chi_square_sf_is_monotone_decreasing(x1, x2, dof):
    lo, hi = min(x1, x2), max(x1, x2)
    assert chi_square_sf(lo, dof) >= chi_square_sf(hi, dof) - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_quantile_is_bounded_and_monotone(values, q):
    result = quantile(values, q)
    assert min(values) <= result <= max(values)
    assert quantile(values, 0.0) == min(values)
    assert quantile(values, 1.0) == max(values)
