"""Memory-trace recording and summarisation."""

import pytest

from repro.analysis.memory_profile import MemoryTrace, profile_sampler, summarize_traces
from repro.core import SequenceSamplerWR
from repro.streams.element import make_stream


class TestMemoryTrace:
    def test_basic_statistics(self):
        trace = MemoryTrace()
        for value in [5, 7, 6, 9, 9]:
            trace.record(value)
        assert trace.peak == 9
        assert trace.final == 9
        assert trace.average == pytest.approx(7.2)
        assert trace.quantile(0.5) == 7
        assert len(trace) == 5

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace().peak
        with pytest.raises(ValueError):
            MemoryTrace().final


class TestProfileSampler:
    def test_profile_records_one_reading_per_arrival(self):
        sampler = SequenceSamplerWR(n=10, k=2, rng=1)
        trace = profile_sampler(sampler, range(50))
        assert len(trace) == 50
        assert trace.peak >= trace.readings[0]

    def test_profile_accepts_stream_elements(self):
        sampler = SequenceSamplerWR(n=10, k=2, rng=1)
        trace = profile_sampler(sampler, make_stream(range(30)))
        assert len(trace) == 30


class TestSummarize:
    def test_summary_across_runs(self):
        traces = []
        for seed in range(3):
            sampler = SequenceSamplerWR(n=20, k=2, rng=seed)
            traces.append(profile_sampler(sampler, range(100)))
        summary = summarize_traces(traces)
        assert summary.runs == 3
        assert summary.arrivals == 100
        assert summary.peak >= summary.p99 >= summary.p50
        assert summary.peak_variance_across_runs == 0.0  # deterministic sampler
        as_dict = summary.as_dict()
        assert set(as_dict) == {"runs", "arrivals", "peak", "mean", "p50", "p99", "peak_var"}

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize_traces([])

    def test_single_run_variance_is_zero(self):
        sampler = SequenceSamplerWR(n=20, k=2, rng=0)
        summary = summarize_traces([profile_sampler(sampler, range(50))])
        assert summary.peak_variance_across_runs == 0.0
