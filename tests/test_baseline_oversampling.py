"""Bernoulli over-sampling baseline (the paper's motivating strawman)."""

import pytest

from repro.baselines import OversamplingSamplerSeqWOR, OversamplingSamplerTsWOR
from repro.exceptions import EmptyWindowError, SamplingFailureError


class TestSequenceVariant:
    def test_metadata(self):
        sampler = OversamplingSamplerSeqWOR(n=100, k=4, rng=1)
        assert sampler.with_replacement is False
        assert sampler.deterministic_memory is False
        assert 0 < sampler.retention_probability <= 1

    def test_empty_window_raises(self):
        with pytest.raises(EmptyWindowError):
            OversamplingSamplerSeqWOR(n=10, k=1, rng=1).sample()

    def test_samples_are_distinct_and_active(self):
        sampler = OversamplingSamplerSeqWOR(n=200, k=5, rng=2, oversample_factor=3.0)
        for value in range(3_000):
            sampler.append(value)
        drawn = sampler.sample()
        indexes = [element.index for element in drawn]
        assert len(set(indexes)) == 5
        assert all(index >= 3_000 - 200 for index in indexes)

    def test_retained_candidates_are_pruned(self):
        sampler = OversamplingSamplerSeqWOR(n=50, k=2, rng=3)
        for value in range(2_000):
            sampler.append(value)
        assert all(candidate.index >= 1_950 for candidate in sampler.iter_candidates())

    def test_failure_when_retention_too_low(self):
        """With a tiny over-sampling factor the scheme cannot always deliver k
        samples — the paper's disadvantage (b)."""
        failures = 0
        for seed in range(40):
            sampler = OversamplingSamplerSeqWOR(n=500, k=8, rng=seed, oversample_factor=0.2)
            for value in range(1_500):
                sampler.append(value)
            try:
                sampler.sample()
            except SamplingFailureError:
                failures += 1
        assert failures > 0

    def test_memory_is_a_random_variable(self):
        def peak(seed):
            sampler = OversamplingSamplerSeqWOR(n=300, k=4, rng=seed)
            best = 0
            for value in range(1_200):
                sampler.append(value)
                best = max(best, sampler.memory_words())
            return best

        assert len({peak(seed) for seed in range(6)}) > 1

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            OversamplingSamplerSeqWOR(n=10, k=1, oversample_factor=0)

    def test_retained_count_diagnostic(self):
        sampler = OversamplingSamplerSeqWOR(n=100, k=4, rng=5)
        for value in range(500):
            sampler.append(value)
        assert sampler.retained_count() == sum(1 for _ in sampler.iter_candidates())


class TestTimestampVariant:
    def test_requires_positive_factor(self):
        with pytest.raises(ValueError):
            OversamplingSamplerTsWOR(t0=10.0, k=1, oversample_factor=-1)

    def test_samples_are_active(self):
        t0 = 100.0
        sampler = OversamplingSamplerTsWOR(t0=t0, k=3, rng=6, oversample_factor=4.0, expected_window=100)
        for index in range(2_000):
            sampler.advance_time(float(index))
            sampler.append(index, float(index))
        drawn = sampler.sample()
        assert len({element.index for element in drawn}) == 3
        for element in drawn:
            assert sampler.now - element.timestamp < t0

    def test_expired_candidates_are_pruned(self):
        sampler = OversamplingSamplerTsWOR(t0=10.0, k=1, rng=7, oversample_factor=5.0, expected_window=10)
        for index in range(500):
            sampler.append(index, float(index))
        assert all(sampler.now - candidate.timestamp < 10.0 for candidate in sampler.iter_candidates())

    def test_window_size_guess_matters(self):
        """Guessing the window far too large lowers retention and induces failures."""
        failures = 0
        for seed in range(30):
            sampler = OversamplingSamplerTsWOR(
                t0=50.0, k=6, rng=seed, oversample_factor=1.0, expected_window=50_000
            )
            for index in range(500):
                sampler.append(index, float(index))
            try:
                sampler.sample()
            except SamplingFailureError:
                failures += 1
        assert failures > 0

    def test_empty_window_raises(self):
        with pytest.raises(EmptyWindowError):
            OversamplingSamplerTsWOR(t0=5.0, k=1, rng=1).sample()
