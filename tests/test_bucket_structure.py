"""Bucket structures BS(x, y) — §3.1."""

import random

import pytest

from repro.core.bucket_structure import BucketStructure
from repro.core.tracking import CandidateObserver, SampleCandidate


class RecordingObserver(CandidateObserver):
    def __init__(self):
        self.selected = 0
        self.discarded = 0

    def on_select(self, candidate):
        self.selected += 1

    def on_discard(self, candidate):
        self.discarded += 1


def singleton(index, value=None, timestamp=None, observer=None):
    return BucketStructure.singleton(
        value if value is not None else f"v{index}",
        index,
        float(timestamp if timestamp is not None else index),
        observer,
    )


class TestSingleton:
    def test_geometry(self):
        bucket = singleton(7)
        assert bucket.start == 7
        assert bucket.end == 8
        assert bucket.width == 1
        assert bucket.covers(7)
        assert not bucket.covers(8)

    def test_samples_equal_the_only_element(self):
        bucket = singleton(3, value="x", timestamp=9.0)
        assert bucket.r_sample.value == "x"
        assert bucket.q_sample.value == "x"
        assert bucket.r_sample.index == 3
        assert bucket.first_timestamp == 9.0

    def test_r_and_q_are_distinct_candidate_objects(self):
        bucket = singleton(3)
        assert bucket.r_sample is not bucket.q_sample

    def test_observer_sees_two_selections(self):
        observer = RecordingObserver()
        singleton(0, observer=observer)
        assert observer.selected == 2

    def test_invalid_boundaries_rejected(self):
        candidate = SampleCandidate(value=1, index=0, timestamp=0.0)
        with pytest.raises(ValueError):
            BucketStructure(start=5, end=5, first_value=1, first_timestamp=0.0,
                            r_sample=candidate, q_sample=candidate)


class TestMerge:
    def test_merge_geometry(self):
        left = BucketStructure.singleton("a", 0, 0.0)
        right = BucketStructure.singleton("b", 1, 1.0)
        merged = BucketStructure.merge(left, right, random.Random(1))
        assert merged.start == 0
        assert merged.end == 2
        assert merged.width == 2
        assert merged.first_value == "a"
        assert merged.first_timestamp == 0.0

    def test_merged_sample_comes_from_either_side(self):
        seen = set()
        for seed in range(50):
            left = BucketStructure.singleton("a", 0, 0.0)
            right = BucketStructure.singleton("b", 1, 1.0)
            merged = BucketStructure.merge(left, right, random.Random(seed))
            seen.add(merged.r_sample.value)
        assert seen == {"a", "b"}

    def test_merge_probability_is_one_half(self):
        kept_left = 0
        runs = 4000
        for seed in range(runs):
            left = BucketStructure.singleton("a", 0, 0.0)
            right = BucketStructure.singleton("b", 1, 1.0)
            merged = BucketStructure.merge(left, right, random.Random(seed))
            if merged.r_sample.value == "a":
                kept_left += 1
        assert abs(kept_left / runs - 0.5) < 0.03

    def test_non_adjacent_merge_rejected(self):
        left = BucketStructure.singleton("a", 0, 0.0)
        right = BucketStructure.singleton("b", 5, 5.0)
        with pytest.raises(ValueError):
            BucketStructure.merge(left, right, random.Random(1))

    def test_unequal_width_merge_rejected(self):
        left = BucketStructure.singleton("a", 0, 0.0)
        mid = BucketStructure.singleton("b", 1, 1.0)
        wide = BucketStructure.merge(left, mid, random.Random(1))
        tail = BucketStructure.singleton("c", 2, 2.0)
        with pytest.raises(ValueError):
            BucketStructure.merge(wide, tail, random.Random(1))

    def test_merge_notifies_discard_of_losing_samples(self):
        observer = RecordingObserver()
        left = BucketStructure.singleton("a", 0, 0.0, observer)
        right = BucketStructure.singleton("b", 1, 1.0, observer)
        BucketStructure.merge(left, right, random.Random(2), observer)
        # Exactly one R and one Q sample lose and are discarded.
        assert observer.discarded == 2


class TestExpiryAndBookkeeping:
    def test_first_expired(self):
        bucket = singleton(0, timestamp=10.0)
        assert not bucket.first_expired(now=14.9, t0=5.0)
        assert bucket.first_expired(now=15.0, t0=5.0)

    def test_first_candidate_matches_first_element(self):
        bucket = singleton(4, value="first", timestamp=2.0)
        candidate = bucket.first_candidate()
        assert candidate.value == "first"
        assert candidate.index == 4
        assert candidate.timestamp == 2.0

    def test_iter_candidates_yields_r_and_q(self):
        bucket = singleton(0)
        assert len(list(bucket.iter_candidates())) == 2

    def test_memory_words_constant(self):
        assert singleton(0).memory_words() == 10

    def test_discard_notifies_observer(self):
        observer = RecordingObserver()
        bucket = singleton(0, observer=observer)
        bucket.discard(observer)
        assert observer.discarded == 2
