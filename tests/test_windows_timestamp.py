"""Exact timestamp-window tracker (ground truth substrate)."""

import pytest

from repro.exceptions import ConfigurationError, StreamOrderError
from repro.windows import TimestampWindow


class TestConstruction:
    def test_invalid_span_rejected(self):
        with pytest.raises(ConfigurationError):
            TimestampWindow(0)
        with pytest.raises(ConfigurationError):
            TimestampWindow(-1.0)

    def test_initial_state(self):
        window = TimestampWindow(10.0)
        assert window.size == 0
        assert window.total_arrivals == 0
        assert window.oldest_active_index() is None


class TestExpiry:
    def test_elements_expire_after_span(self):
        window = TimestampWindow(5.0)
        window.append("a", timestamp=0.0)
        window.append("b", timestamp=3.0)
        window.append("c", timestamp=4.0)
        assert window.active_values() == ["a", "b", "c"]
        window.advance_time(5.0)  # "a" is now exactly t0 old -> expired
        assert window.active_values() == ["b", "c"]
        window.advance_time(8.5)
        assert window.active_values() == ["c"]
        window.advance_time(9.0)
        assert window.active_values() == []

    def test_append_implicitly_advances_clock(self):
        window = TimestampWindow(2.0)
        window.append(1, timestamp=0.0)
        window.append(2, timestamp=10.0)
        assert window.active_values() == [2]
        assert window.now == 10.0

    def test_burst_of_equal_timestamps(self):
        window = TimestampWindow(1.0)
        for value in range(5):
            window.append(value, timestamp=3.0)
        assert window.size == 5
        window.advance_time(4.0)
        assert window.size == 0

    def test_window_can_empty_and_refill(self):
        window = TimestampWindow(1.0)
        window.append("old", timestamp=0.0)
        window.advance_time(100.0)
        assert window.size == 0
        window.append("new", timestamp=100.0)
        assert window.active_values() == ["new"]


class TestOrderEnforcement:
    def test_clock_cannot_go_backwards(self):
        window = TimestampWindow(5.0)
        window.advance_time(10.0)
        with pytest.raises(StreamOrderError):
            window.advance_time(9.0)

    def test_timestamps_must_be_non_decreasing(self):
        window = TimestampWindow(5.0)
        window.append(1, timestamp=4.0)
        with pytest.raises(StreamOrderError):
            window.append(2, timestamp=3.0)

    def test_equal_timestamps_are_fine(self):
        window = TimestampWindow(5.0)
        window.append(1, timestamp=4.0)
        window.append(2, timestamp=4.0)
        assert window.size == 2


class TestQueries:
    def test_contains_index(self):
        window = TimestampWindow(3.0)
        window.append("a", timestamp=0.0)
        window.append("b", timestamp=2.0)
        window.append("c", timestamp=4.0)
        assert not window.contains_index(0)  # expired at now=4
        assert window.contains_index(1)
        assert window.contains_index(2)
        assert not window.contains_index(99)

    def test_oldest_active_index(self):
        window = TimestampWindow(3.0)
        window.append("a", timestamp=0.0)
        window.append("b", timestamp=2.5)
        window.advance_time(3.1)
        assert window.oldest_active_index() == 1

    def test_extend_with_stream_elements(self, poisson_stream):
        window = TimestampWindow(7.0)
        window.extend(poisson_stream)
        final_time = poisson_stream[-1].timestamp
        expected = [e.value for e in poisson_stream if final_time - e.timestamp < 7.0]
        assert window.active_values() == expected

    def test_len_reflects_expiry(self):
        window = TimestampWindow(1.0)
        window.append(1, timestamp=0.0)
        assert len(window) == 1
        window.advance_time(2.0)
        assert len(window) == 0
