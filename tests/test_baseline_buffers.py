"""Window-buffer samplers and the whole-stream reservoir baseline."""

import pytest

from repro.baselines import BufferSamplerSeq, BufferSamplerTs, WholeStreamReservoir
from repro.exceptions import EmptyWindowError


class TestBufferSequence:
    def test_with_replacement_sample(self):
        sampler = BufferSamplerSeq(n=10, k=5, replacement=True, rng=1)
        for value in range(100):
            sampler.append(value)
        drawn = sampler.sample_values()
        assert len(drawn) == 5
        assert all(90 <= value < 100 for value in drawn)

    def test_without_replacement_sample(self):
        sampler = BufferSamplerSeq(n=10, k=5, replacement=False, rng=1)
        for value in range(100):
            sampler.append(value)
        drawn = sampler.sample_values()
        assert len(set(drawn)) == 5

    def test_memory_is_linear_in_window(self):
        small = BufferSamplerSeq(n=10, k=1, rng=1)
        large = BufferSamplerSeq(n=1_000, k=1, rng=1)
        for value in range(2_000):
            small.append(value)
            large.append(value)
        assert large.memory_words() > 50 * small.memory_words()

    def test_empty_raises(self):
        with pytest.raises(EmptyWindowError):
            BufferSamplerSeq(n=5, k=1, rng=1).sample()

    def test_partial_window_without_replacement(self):
        sampler = BufferSamplerSeq(n=100, k=10, replacement=False, rng=2)
        for value in range(3):
            sampler.append(value)
        assert sorted(sampler.sample_values()) == [0, 1, 2]


class TestBufferTimestamp:
    def test_expiry(self):
        sampler = BufferSamplerTs(t0=5.0, k=3, rng=1)
        for index in range(50):
            sampler.append(index, float(index))
        assert sampler.window_size() == 5
        for value in sampler.sample_values():
            assert value >= 45

    def test_empty_after_gap(self):
        sampler = BufferSamplerTs(t0=5.0, k=1, rng=1)
        sampler.append("a", 0.0)
        sampler.advance_time(50.0)
        with pytest.raises(EmptyWindowError):
            sampler.sample()

    def test_without_replacement_distinct(self):
        sampler = BufferSamplerTs(t0=100.0, k=8, replacement=False, rng=2)
        for index in range(60):
            sampler.append(index, float(index))
        drawn = sampler.sample_values()
        assert len(set(drawn)) == 8


class TestWholeStreamReservoir:
    def test_it_is_intentionally_window_oblivious(self):
        """Most of its samples fall outside the window on a long stream."""
        sampler = WholeStreamReservoir(n=100, k=200, replacement=True, rng=3)
        for value in range(10_000):
            sampler.append(value)
        in_window = sum(1 for drawn in sampler.sample() if drawn.index >= 9_900)
        assert in_window < 50  # the window holds only 1% of the stream

    def test_without_replacement_mode(self):
        sampler = WholeStreamReservoir(n=100, k=10, replacement=False, rng=4)
        for value in range(1_000):
            sampler.append(value)
        drawn = sampler.sample_values()
        assert len(set(drawn)) == 10

    def test_memory_is_constant(self):
        sampler = WholeStreamReservoir(n=100, k=4, rng=5)
        readings = set()
        for value in range(5_000):
            sampler.append(value)
            readings.add(sampler.memory_words())
        assert max(readings) <= 5 * 4 + 5

    def test_empty_raises(self):
        with pytest.raises(EmptyWindowError):
            WholeStreamReservoir(n=5, k=1, rng=1).sample()
