"""End-to-end distributional tests — the empirical counterpart of the theorems.

These are heavier than the unit tests (they repeat runs or use thousands of
independent lanes) and are marked ``slow``.  They are the library's strongest
correctness evidence: the output distribution of every sampler is compared
against the uniform law over the *exact* window contents.
"""

import random

import pytest

from repro.analysis import assess_uniformity
from repro.baselines import ChainSamplerWR, PrioritySamplerWOR, PrioritySamplerWR
from repro.core import (
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
)
from repro.harness.runner import collect_position_samples, collect_wor_inclusions
from repro.streams.element import make_stream
from repro.windows import TimestampWindow

pytestmark = pytest.mark.slow


def poisson_stream(count, rate=1.0, seed=0):
    source = random.Random(seed)
    current = 0.0
    timestamps = []
    for _ in range(count):
        current += source.expovariate(rate)
        timestamps.append(current)
    return make_stream(range(count), timestamps)


SEQ_N = 48
SEQ_LENGTH = 310          # not a multiple of n, so the window straddles buckets
TS_SPAN = 37.0
TS_LENGTH = 260


class TestSequenceWindowUniformity:
    def test_wr_uniform_over_positions(self):
        stream = make_stream(range(SEQ_LENGTH))
        indexes, _ = collect_position_samples(
            lambda seed: SequenceSamplerWR(n=SEQ_N, k=8_000, rng=seed), stream, seed=11
        )
        window = list(range(SEQ_LENGTH - SEQ_N, SEQ_LENGTH))
        report = assess_uniformity(indexes, window)
        assert report.passes, report

    def test_wor_uniform_inclusion(self):
        stream = make_stream(range(SEQ_LENGTH))
        pooled = collect_wor_inclusions(
            lambda seed: SequenceSamplerWOR(n=SEQ_N, k=6, rng=seed), stream, runs=1_500, base_seed=50
        )
        window = list(range(SEQ_LENGTH - SEQ_N, SEQ_LENGTH))
        report = assess_uniformity(pooled, window)
        assert report.passes, report

    def test_chain_baseline_is_also_uniform(self):
        stream = make_stream(range(SEQ_LENGTH))
        indexes, _ = collect_position_samples(
            lambda seed: ChainSamplerWR(n=SEQ_N, k=8_000, rng=seed), stream, seed=13
        )
        window = list(range(SEQ_LENGTH - SEQ_N, SEQ_LENGTH))
        assert assess_uniformity(indexes, window).passes

    def test_wr_uniform_at_bucket_boundary(self):
        """The degenerate case where the window coincides with one bucket."""
        length = SEQ_N * 5  # arrivals a multiple of n
        stream = make_stream(range(length))
        indexes, _ = collect_position_samples(
            lambda seed: SequenceSamplerWR(n=SEQ_N, k=8_000, rng=seed), stream, seed=17
        )
        window = list(range(length - SEQ_N, length))
        assert assess_uniformity(indexes, window).passes


class TestTimestampWindowUniformity:
    def _active_window(self, stream, span):
        tracker = TimestampWindow(span)
        tracker.extend(stream)
        return tracker.active_indexes()

    def test_wr_uniform_over_positions_poisson(self):
        stream = poisson_stream(TS_LENGTH, seed=21)
        window = self._active_window(stream, TS_SPAN)
        indexes, _ = collect_position_samples(
            lambda seed: TimestampSamplerWR(t0=TS_SPAN, k=8_000, rng=seed),
            stream,
            seed=22,
            advance_time=True,
        )
        assert assess_uniformity(indexes, window).passes

    def test_wr_uniform_under_bursty_arrivals(self):
        source = random.Random(31)
        timestamps = []
        current = 0.0
        for _ in range(TS_LENGTH):
            if source.random() < 0.1:
                current += source.expovariate(0.2)
            timestamps.append(current)
        stream = make_stream(range(TS_LENGTH), timestamps)
        window = self._active_window(stream, TS_SPAN)
        indexes, _ = collect_position_samples(
            lambda seed: TimestampSamplerWR(t0=TS_SPAN, k=8_000, rng=seed),
            stream,
            seed=32,
            advance_time=True,
        )
        assert assess_uniformity(indexes, window).passes

    def test_wor_uniform_inclusion(self):
        stream = poisson_stream(150, seed=41)
        window = self._active_window(stream, 23.0)
        pooled = collect_wor_inclusions(
            lambda seed: TimestampSamplerWOR(t0=23.0, k=4, rng=seed),
            stream,
            runs=1_500,
            base_seed=1000,
            advance_time=True,
        )
        assert assess_uniformity(pooled, window).passes

    def test_priority_baselines_are_also_uniform(self):
        stream = poisson_stream(TS_LENGTH, seed=51)
        window = self._active_window(stream, TS_SPAN)
        indexes, _ = collect_position_samples(
            lambda seed: PrioritySamplerWR(t0=TS_SPAN, k=8_000, rng=seed),
            stream,
            seed=52,
            advance_time=True,
        )
        assert assess_uniformity(indexes, window).passes
        pooled = collect_wor_inclusions(
            lambda seed: PrioritySamplerWOR(t0=TS_SPAN, k=4, rng=seed),
            stream,
            runs=1_000,
            base_seed=2_000,
            advance_time=True,
        )
        assert assess_uniformity(pooled, window).passes


class TestIndependenceOfDisjointWindows:
    def test_sequence_wr_samples_of_disjoint_windows_are_uncorrelated(self):
        """§1.3.4: positions sampled in two non-overlapping windows are independent."""
        from repro.analysis import assess_independence

        n, runs, bins = 32, 1_200, 4
        stream = make_stream(range(3 * n))
        pairs = []
        for run in range(runs):
            sampler = SequenceSamplerWR(n=n, k=1, rng=10_000 + run)
            first_bin = None
            for position, element in enumerate(stream):
                sampler.append(element.value, element.timestamp)
                if position == 2 * n - 1:
                    first_bin = (sampler.sample()[0].index - n) * bins // n
            second_bin = (sampler.sample()[0].index - 2 * n) * bins // n
            pairs.append((first_bin, second_bin))
        report = assess_independence(pairs, list(range(bins)), list(range(bins)))
        assert report.passes, report
