"""state_dict / load_state_dict round trips for the paper's four samplers.

The contract: a snapshot taken mid-stream and loaded into a freshly
constructed sampler of the same shape yields (1) byte-identical current
samples and (2) identical behaviour for any identical suffix of the stream —
because candidates, counters *and* every generator position are captured.
"""

import pickle
import random

import pytest

from repro.core import (
    SequenceSamplerWOR,
    SequenceSamplerWR,
    TimestampSamplerWOR,
    TimestampSamplerWR,
    OccurrenceCounter,
    sliding_window_sampler,
)
from repro.exceptions import ConfigurationError


def poisson_stream(length, seed, rate=1.0):
    source = random.Random(seed)
    clock = 0.0
    stream = []
    for value in range(length):
        clock += source.expovariate(rate)
        stream.append((value, clock))
    return stream


SEQUENCE_FACTORIES = [
    ("seq-wr", lambda: SequenceSamplerWR(n=60, k=5, rng=13)),
    ("seq-wor", lambda: SequenceSamplerWOR(n=60, k=5, rng=13)),
]
TIMESTAMP_FACTORIES = [
    ("ts-wr", lambda: TimestampSamplerWR(t0=25.0, k=4, rng=13)),
    ("ts-wor", lambda: TimestampSamplerWOR(t0=25.0, k=4, rng=13)),
]


@pytest.mark.parametrize("label,factory", SEQUENCE_FACTORIES, ids=[f[0] for f in SEQUENCE_FACTORIES])
class TestSequenceRoundTrip:
    @pytest.mark.parametrize("cut", [1, 59, 60, 61, 137, 240])
    def test_restore_is_byte_identical_and_future_proof(self, label, factory, cut):
        original = factory()
        for value in range(cut):
            original.append(value)
        snapshot = original.state_dict()

        restored = factory()
        restored.load_state_dict(snapshot)
        assert restored.total_arrivals == original.total_arrivals
        assert pickle.dumps(restored.sample()) == pickle.dumps(original.sample())
        assert restored.memory_words() == original.memory_words()

        # Identical suffix => identical samples forever after.
        for value in range(cut, cut + 150):
            original.append(value)
            restored.append(value)
        assert restored.sample() == original.sample()
        assert restored.sample() == original.sample()  # repeated draws stay in lockstep

    def test_snapshot_survives_pickling(self, label, factory):
        original = factory()
        for value in range(100):
            original.append(value)
        snapshot = pickle.loads(pickle.dumps(original.state_dict()))
        restored = factory()
        restored.load_state_dict(snapshot)
        assert restored.sample() == original.sample()


@pytest.mark.parametrize("label,factory", TIMESTAMP_FACTORIES, ids=[f[0] for f in TIMESTAMP_FACTORIES])
class TestTimestampRoundTrip:
    @pytest.mark.parametrize("cut", [1, 5, 120, 300])
    def test_restore_is_byte_identical_and_future_proof(self, label, factory, cut):
        stream = poisson_stream(cut + 200, seed=5)
        original = factory()
        for value, timestamp in stream[:cut]:
            original.advance_time(timestamp)
            original.append(value, timestamp)
        snapshot = original.state_dict()

        restored = factory()
        restored.load_state_dict(snapshot)
        assert restored.now == original.now
        assert pickle.dumps(restored.sample()) == pickle.dumps(original.sample())
        assert restored.memory_words() == original.memory_words()

        for value, timestamp in stream[cut:]:
            for sampler in (original, restored):
                sampler.advance_time(timestamp)
                sampler.append(value, timestamp)
        assert restored.sample() == original.sample()

    def test_restore_before_any_arrival(self, label, factory):
        original = factory()
        restored = factory()
        restored.load_state_dict(original.state_dict())
        assert restored.total_arrivals == 0


class TestObserverStateSurvives:
    def test_occurrence_counters_resume_after_restore(self):
        values = [7, 7, 7, 7, 7, 7, 7, 7]  # constant stream: every candidate counts the rest

        def build():
            return SequenceSamplerWR(n=100, k=3, rng=3, observer=OccurrenceCounter())

        original = build()
        for value in values:
            original.append(value)
        restored = build()
        restored.load_state_dict(original.state_dict())

        def counts(sampler):
            return [OccurrenceCounter.count_of(c) for c in sampler.sample_candidates()]

        assert counts(restored) == counts(original)
        for sampler in (original, restored):
            sampler.append(7)
        assert counts(restored) == counts(original)


class TestSnapshotValidation:
    def test_type_mismatch_rejected(self):
        wr = SequenceSamplerWR(n=10, k=2, rng=1)
        wr.append(1)
        wor = SequenceSamplerWOR(n=10, k=2, rng=1)
        with pytest.raises(ConfigurationError):
            wor.load_state_dict(wr.state_dict())

    def test_k_mismatch_rejected(self):
        source = SequenceSamplerWR(n=10, k=2, rng=1)
        target = SequenceSamplerWR(n=10, k=3, rng=1)
        with pytest.raises(ConfigurationError):
            target.load_state_dict(source.state_dict())

    def test_window_parameter_mismatch_rejected(self):
        source = SequenceSamplerWR(n=10, k=2, rng=1)
        target = SequenceSamplerWR(n=20, k=2, rng=1)
        with pytest.raises(ConfigurationError):
            target.load_state_dict(source.state_dict())
        ts_source = TimestampSamplerWR(t0=5.0, k=2, rng=1)
        ts_target = TimestampSamplerWR(t0=9.0, k=2, rng=1)
        with pytest.raises(ConfigurationError):
            ts_target.load_state_dict(ts_source.state_dict())

    def test_format_and_missing_fields_rejected(self):
        sampler = SequenceSamplerWR(n=10, k=2, rng=1)
        state = sampler.state_dict()
        state["format"] = 999
        with pytest.raises(ConfigurationError):
            sampler.load_state_dict(state)
        with pytest.raises(ConfigurationError):
            sampler.load_state_dict({"format": 1})

    def test_baselines_do_not_pretend_to_checkpoint(self):
        baseline = sliding_window_sampler("sequence", n=10, k=2, algorithm="chain", rng=1)
        with pytest.raises(NotImplementedError):
            baseline.state_dict()
