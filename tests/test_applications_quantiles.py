"""Quantile / rank estimation over sliding windows."""

import random

import pytest

from repro.applications import SlidingQuantileEstimator
from repro.exceptions import ConfigurationError, EmptyWindowError


class TestConfiguration:
    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingQuantileEstimator(window="sequence", n=10, sample_size=0)

    def test_empty_window_raises(self):
        estimator = SlidingQuantileEstimator(window="sequence", n=10, sample_size=4, rng=1)
        with pytest.raises(EmptyWindowError):
            estimator.median()


class TestEstimates:
    def test_median_of_uniform_window(self):
        estimator = SlidingQuantileEstimator(window="sequence", n=2_000, sample_size=400, rng=2)
        source = random.Random(3)
        for _ in range(6_000):
            estimator.append(source.uniform(0.0, 100.0))
        assert abs(estimator.median() - 50.0) < 8.0

    def test_quantiles_are_monotone(self):
        estimator = SlidingQuantileEstimator(window="sequence", n=1_000, sample_size=300, rng=4)
        source = random.Random(5)
        for _ in range(3_000):
            estimator.append(source.gauss(0.0, 1.0))
        assert estimator.quantile(0.1) <= estimator.quantile(0.5) <= estimator.quantile(0.9)

    def test_quantile_follows_the_window_after_a_shift(self):
        estimator = SlidingQuantileEstimator(window="sequence", n=500, sample_size=200, rng=6)
        for _ in range(2_000):
            estimator.append(0.0)
        for _ in range(600):  # window now holds only the new regime
            estimator.append(100.0)
        assert estimator.median() == 100.0

    def test_rank_fraction(self):
        estimator = SlidingQuantileEstimator(window="sequence", n=1_000, sample_size=500, rng=7)
        for value in range(5_000):
            estimator.append(value % 100)
        fraction = estimator.rank_fraction(49)
        assert abs(fraction - 0.5) < 0.1

    def test_timestamp_window_variant(self):
        estimator = SlidingQuantileEstimator(window="timestamp", t0=100.0, sample_size=64, rng=8)
        for index in range(1_000):
            estimator.append(float(index % 10), timestamp=float(index))
        assert 0.0 <= estimator.median() <= 9.0

    def test_memory_is_reported(self):
        estimator = SlidingQuantileEstimator(window="sequence", n=100, sample_size=16, rng=9)
        estimator.append(1.0)
        assert estimator.memory_words() > 0
