"""The swsample command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.window == "sequence"
        assert args.k == 8
        assert args.algorithm == "optimal"

    def test_experiment_arguments(self):
        args = build_parser().parse_args(["experiment", "E3", "--scale", "smoke", "--markdown"])
        assert args.experiment == "E3"
        assert args.scale == "smoke"
        assert args.markdown is True


class TestListCommand:
    def test_lists_algorithms_workloads_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "optimal" in output
        assert "uniform-sequence" in output
        assert "keyed-zipf" in output
        assert "E10" in output


class TestRunCommand:
    def test_sequence_run(self, capsys):
        exit_code = main(
            ["run", "--window", "sequence", "--n", "100", "-k", "3", "--length", "1000", "--seed", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "memory (words)" in output
        assert "sample (3 elements)" in output

    def test_timestamp_run_with_baseline(self, capsys):
        exit_code = main(
            [
                "run", "--window", "timestamp", "--t0", "50", "-k", "2",
                "--workload", "sensor-poisson", "--length", "500", "--algorithm", "priority",
            ]
        )
        assert exit_code == 0
        assert "bdm-priority-wr" in capsys.readouterr().out

    def test_without_replacement_run(self, capsys):
        exit_code = main(
            ["run", "--without-replacement", "--n", "50", "-k", "5", "--length", "300"]
        )
        assert exit_code == 0
        assert "sample (5 elements)" in capsys.readouterr().out


class TestEngineCommand:
    def test_engine_run_reports_fleet_statistics(self, capsys):
        exit_code = main(
            ["engine", "--records", "5000", "--keys", "50", "--shards", "2", "-k", "3", "--seed", "9"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "live keys       : 50" in output
        assert "memory (words)" in output
        assert "hottest 5 keys" in output
        assert "merged frequent values" in output

    def test_engine_checkpoint_then_resume(self, capsys, tmp_path):
        path = str(tmp_path / "engine.ckpt")
        assert main(["engine", "--records", "2000", "--keys", "20", "--checkpoint", path]) == 0
        assert "checkpoint      : " in capsys.readouterr().out
        assert main(["engine", "--resume", path, "--records", "1000", "--keys", "20"]) == 0
        output = capsys.readouterr().out
        assert "resumed" in output
        assert "(20 keys, 2000 records)" in output

    def test_engine_checkpoint_with_baseline_algorithm_is_refused(self, capsys, tmp_path):
        exit_code = main(
            ["engine", "--algorithm", "chain", "--records", "100", "--keys", "5",
             "--checkpoint", str(tmp_path / "nope.ckpt")]
        )
        assert exit_code == 2
        assert "baseline samplers do not support state snapshots" in capsys.readouterr().err
        assert not (tmp_path / "nope.ckpt").exists()

    def test_engine_eviction_budget(self, capsys):
        exit_code = main(
            ["engine", "--records", "3000", "--keys", "100", "--shards", "2",
             "--max-keys-per-shard", "10", "--workload", "keyed-uniform"]
        )
        assert exit_code == 0
        assert "evicted" in capsys.readouterr().out

    def test_engine_timestamp_window(self, capsys):
        exit_code = main(
            ["engine", "--window", "timestamp", "--t0", "100", "--records", "2000",
             "--keys", "20", "--without-replacement"]
        )
        assert exit_code == 0
        assert "t0=100" in capsys.readouterr().out

    def test_engine_timestamp_resume_continues_the_clock(self, capsys, tmp_path):
        path = str(tmp_path / "ts.ckpt")
        args = ["engine", "--window", "timestamp", "--t0", "200", "--records", "2000", "--keys", "20"]
        assert main(args + ["--checkpoint", path]) == 0
        capsys.readouterr()
        # The resumed batch's timestamps must be shifted past the restored
        # clock, not restart at zero (which would raise StreamOrderError).
        assert main(["engine", "--resume", path, "--records", "1000", "--keys", "20"]) == 0
        assert "resumed" in capsys.readouterr().out


@pytest.mark.slow
class TestExperimentCommand:
    def test_experiment_text_output(self, capsys):
        assert main(["experiment", "E10", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "[E10]" in output

    def test_experiment_markdown_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "table.csv"
        assert main(["experiment", "E10", "--scale", "smoke", "--markdown", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "**E10" in output
        assert csv_path.exists()
